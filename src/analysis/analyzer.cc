#include "analysis/analyzer.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/strings.h"
#include "datalog/unify.h"
#include "odl/schema.h"
#include "solver/constraint_set.h"

namespace sqo::analysis {

using datalog::Atom;
using datalog::Clause;
using datalog::CmpOp;
using datalog::Literal;
using datalog::Matcher;
using datalog::Query;
using datalog::RelationKind;
using datalog::RelationSignature;
using datalog::Substitution;
using datalog::Term;

namespace {

/// Subject string for an IC: its label when present, else its rendering.
std::string IcSubject(const Clause& ic) {
  return ic.label.empty() ? ic.ToString() : ic.label;
}

/// Textual method-fact declarations (`monotone(...)`, `point(...)`) ride
/// along in the user IC stream and are extracted before compilation; the
/// analyzer skips them entirely.
bool IsMethodFact(const Clause& ic) {
  if (!ic.head.has_value() || !ic.body.empty()) return false;
  const Literal& head = *ic.head;
  if (!head.positive || !head.atom.is_predicate()) return false;
  return head.atom.predicate() == "monotone" || head.atom.predicate() == "point";
}

/// Names of variables occurring in positive predicate body literals — the
/// range-restricted (safe) set.
std::set<std::string> PositivelyBoundVars(const std::vector<Literal>& body) {
  std::vector<std::string> vars;
  for (const Literal& lit : body) {
    if (lit.positive && lit.atom.is_predicate()) {
      lit.atom.CollectVariables(&vars);
    }
  }
  return std::set<std::string>(vars.begin(), vars.end());
}

/// Appends a diagnostic (`code`) for every variable of `lit` outside
/// `bound`. Variables local to a negative predicate literal (occurring in
/// no other literal) are existentially quantified under the negation —
/// "no tuple with any values here" — and are exempt; scope reduction and
/// OQL `not in` translation generate exactly that shape. `occurrences`
/// counts, per variable, the literals of the clause/query containing it.
void CheckLiteralSafety(const Literal& lit, const std::set<std::string>& bound,
                        const std::map<std::string, size_t>& occurrences,
                        std::string_view code, const std::string& subject,
                        std::string_view where, AnalysisReport* report) {
  const bool negated_predicate = !lit.positive && lit.atom.is_predicate();
  std::vector<std::string> vars;
  lit.atom.CollectVariables(&vars);
  for (const std::string& v : vars) {
    if (bound.count(v) > 0) continue;
    if (negated_predicate) {
      auto it = occurrences.find(v);
      if (it == occurrences.end() || it->second <= 1) continue;  // local
    }
    report->Add(Severity::kError, code, subject,
                "variable '" + v + "' in " + std::string(where) + " literal " +
                    lit.ToString() +
                    " is not bound by any positive body atom",
                "bind '" + v + "' in a positive predicate atom of the body");
  }
}

/// Per-variable count of the literals (plus the head / projection, counted
/// as one) in which the variable occurs.
std::map<std::string, size_t> VariableOccurrences(
    const std::optional<Literal>& head, const std::vector<Term>& head_args,
    const std::vector<Literal>& body) {
  std::map<std::string, size_t> out;
  auto add_group = [&out](const std::vector<std::string>& vars) {
    for (const std::string& v : vars) ++out[v];
  };
  if (head.has_value()) {
    std::vector<std::string> vars;
    head->atom.CollectVariables(&vars);
    add_group(vars);
  }
  {
    std::vector<std::string> vars;
    for (const Term& t : head_args) {
      if (t.is_variable() &&
          std::find(vars.begin(), vars.end(), t.var_name()) == vars.end()) {
        vars.push_back(t.var_name());
      }
    }
    add_group(vars);
  }
  for (const Literal& lit : body) {
    std::vector<std::string> vars;
    lit.atom.CollectVariables(&vars);
    add_group(vars);
  }
  return out;
}

/// Map from an ODL base type to the constant kind the engine stores.
std::optional<sqo::ValueKind> KindOfBase(odl::BaseType base) {
  switch (base) {
    case odl::BaseType::kLong:
      return sqo::ValueKind::kInt;
    case odl::BaseType::kFloat:
      return sqo::ValueKind::kDouble;
    case odl::BaseType::kString:
      return sqo::ValueKind::kString;
    case odl::BaseType::kBoolean:
      return sqo::ValueKind::kBool;
    case odl::BaseType::kNamed:
      return sqo::ValueKind::kOid;  // struct values are stored by OID
    case odl::BaseType::kVoid:
      return std::nullopt;
  }
  return std::nullopt;
}

/// True when a constant of kind `actual` may legally fill a position of
/// kind `expected` — the numeric kinds are interchangeable (Value::Equals
/// treats 3 and 3.0 as equal), everything else must match exactly.
bool KindCompatible(sqo::ValueKind expected, sqo::ValueKind actual) {
  auto numeric = [](sqo::ValueKind k) {
    return k == sqo::ValueKind::kInt || k == sqo::ValueKind::kDouble;
  };
  if (numeric(expected) && numeric(actual)) return true;
  return expected == actual;
}

/// Pass 2 for one predicate atom: unknown relation, arity, constant types.
void CheckAtomSignature(const translate::TranslatedSchema& schema,
                        const Atom& atom, const std::string& subject,
                        AnalysisReport* report) {
  const RelationSignature* sig = schema.catalog.Find(atom.predicate());
  if (sig == nullptr) {
    report->Add(Severity::kError, kCodeUnknownRelation, subject,
                "atom " + atom.ToString() + " references unknown relation '" +
                    atom.predicate() + "'",
                "check the spelling against the translated schema catalog");
    return;
  }
  if (atom.arity() != sig->arity()) {
    report->Add(Severity::kError, kCodeArityMismatch, subject,
                "atom " + atom.ToString() + " has arity " +
                    std::to_string(atom.arity()) + " but relation '" +
                    sig->name + "' has arity " + std::to_string(sig->arity()),
                "expected " + sig->ToString());
    return;
  }
  for (size_t i = 0; i < atom.arity(); ++i) {
    const Term& arg = atom.args()[i];
    if (!arg.is_constant()) continue;
    std::optional<sqo::ValueKind> expected =
        ExpectedArgumentKind(schema, *sig, i);
    if (!expected.has_value()) continue;
    const sqo::ValueKind actual = arg.constant().kind();
    if (!KindCompatible(*expected, actual)) {
      report->Add(
          Severity::kError, kCodeTypeMismatch, subject,
          "argument " + std::to_string(i) + " ('" + sig->attributes[i] +
              "') of " + atom.ToString() + " is " +
              std::string(sqo::ValueKindName(actual)) + " but relation '" +
              sig->name + "' declares " +
              std::string(sqo::ValueKindName(*expected)),
          "use a " + std::string(sqo::ValueKindName(*expected)) + " constant");
    }
  }
}

/// True when `attr` (already lowercase, as catalog attributes are) carries
/// a `key` hint on the owning class or any of its ancestors — exactly the
/// set Database::CreateKeyIndexes turns into explicit hash indexes.
bool AttributeHasIndexHint(const translate::TranslatedSchema& schema,
                           const RelationSignature& sig,
                           const std::string& attr) {
  const odl::ClassInfo* cur = schema.schema.FindClass(sig.owner);
  while (cur != nullptr) {
    for (const std::string& key : cur->keys) {
      if (sqo::ToLower(key) == attr) return true;
    }
    cur = cur->super.empty() ? nullptr
                             : schema.schema.FindClass(cur->super);
  }
  return false;
}

/// Pass 8 (SQO-A012) for one IC: every class attribute the IC pins by
/// equality — a constant in the atom itself, or a `Var = const` comparison
/// over a variable bound at an attribute position — should carry a key
/// hint, otherwise the equality selections its residues inject into
/// queries have no explicit index behind them.
void CheckEqualityIndexHints(const translate::TranslatedSchema& schema,
                             const Clause& ic, const std::string& subject,
                             AnalysisReport* report) {
  // attribute positions bound to variables: var -> (signature, attribute)
  std::map<std::string, std::pair<const RelationSignature*, std::string>>
      attr_vars;
  std::set<std::pair<std::string, std::string>> flagged;
  auto flag = [&](const RelationSignature& sig, const std::string& attr) {
    if (AttributeHasIndexHint(schema, sig, attr)) return;
    if (!flagged.insert({sig.name, attr}).second) return;
    report->Add(
        Severity::kWarning, kCodeUnindexedEqualityIc, subject,
        "equality constraint over '" + sig.name + "." + attr +
            "' but the attribute has no key/index hint; residues of this "
            "constraint add equality selections that fall back to lazily "
            "built indexes or extent scans",
        "declare `key " + attr + "` on class " + sig.owner +
            " (or rely on auto-indexing for small extents)");
  };
  for (const Literal& lit : ic.body) {
    if (!lit.positive || !lit.atom.is_predicate()) continue;
    const RelationSignature* sig = schema.catalog.Find(lit.atom.predicate());
    if (sig == nullptr || sig->kind != RelationKind::kClass) continue;
    if (lit.atom.arity() != sig->arity()) continue;
    for (size_t i = 1; i < lit.atom.arity(); ++i) {
      const Term& arg = lit.atom.args()[i];
      if (arg.is_constant()) {
        flag(*sig, sig->attributes[i]);
      } else if (arg.is_variable()) {
        attr_vars.emplace(arg.var_name(),
                          std::make_pair(sig, sig->attributes[i]));
      }
    }
  }
  auto check_comparison = [&](const Atom& atom) {
    if (!atom.is_comparison() || atom.op() != CmpOp::kEq) return;
    const Term* var = nullptr;
    if (atom.lhs().is_variable() && atom.rhs().is_constant()) {
      var = &atom.lhs();
    } else if (atom.rhs().is_variable() && atom.lhs().is_constant()) {
      var = &atom.rhs();
    }
    if (var == nullptr) return;
    auto it = attr_vars.find(var->var_name());
    if (it == attr_vars.end()) return;
    flag(*it->second.first, it->second.second);
  };
  for (const Literal& lit : ic.body) {
    if (lit.positive) check_comparison(lit.atom);
  }
  if (ic.head.has_value() && ic.head->positive) {
    check_comparison(ic.head->atom);
  }
}

/// A candidate for the pairwise contradiction pass: a comparison-headed IC
/// whose body is one positive predicate atom plus comparisons, canonicalized
/// so that argument position i of the anchor atom is variable `_C<i>`.
struct ContradictionCandidate {
  std::string relation;
  size_t arity = 0;
  std::string subject;
  bool is_user = false;
  /// Guard: canonicalized body comparisons plus template-constant and
  /// repeated-variable equalities. Over `_C<i>` variables and constants.
  std::vector<Atom> guard;
  /// Canonicalized comparison head.
  Atom head = Atom::Comparison(CmpOp::kEq, Term::Int(0), Term::Int(0));
};

std::optional<ContradictionCandidate> MakeCandidate(const Clause& ic,
                                                    bool is_user) {
  if (!ic.head.has_value()) return std::nullopt;
  if (!ic.head->atom.is_comparison()) return std::nullopt;
  const Atom* anchor = nullptr;
  std::vector<const Literal*> comparisons;
  for (const Literal& lit : ic.body) {
    if (!lit.positive) return std::nullopt;
    if (lit.atom.is_predicate()) {
      if (anchor != nullptr) return std::nullopt;  // single-atom bodies only
      anchor = &lit.atom;
    } else {
      comparisons.push_back(&lit);
    }
  }
  if (anchor == nullptr) return std::nullopt;

  ContradictionCandidate out;
  out.relation = anchor->predicate();
  out.arity = anchor->arity();
  out.subject = IcSubject(ic);
  out.is_user = is_user;

  Substitution canon;
  for (size_t i = 0; i < anchor->arity(); ++i) {
    const Term& arg = anchor->args()[i];
    const Term pos_var = Term::Var("_C" + std::to_string(i));
    if (arg.is_constant()) {
      out.guard.push_back(Atom::Comparison(CmpOp::kEq, pos_var, arg));
    } else if (const Term mapped = canon.Apply(arg); mapped != arg) {
      // Repeated variable: positions i and its first occurrence are equal.
      out.guard.push_back(Atom::Comparison(CmpOp::kEq, pos_var, mapped));
    } else {
      canon.Bind(arg.var_name(), pos_var);
    }
  }
  // Comparison variables not covered by the anchor atom make the IC unsafe
  // (pass 1 reports it); exclude it from this pass.
  auto fully_canonical = [&](const Atom& atom) {
    std::vector<std::string> vars;
    Atom mapped = canon.ApplyToAtom(atom);
    mapped.CollectVariables(&vars);
    for (const std::string& v : vars) {
      if (v.rfind("_C", 0) != 0) return false;
    }
    return true;
  };
  for (const Literal* lit : comparisons) {
    if (!fully_canonical(lit->atom)) return std::nullopt;
    out.guard.push_back(canon.ApplyToAtom(lit->atom));
  }
  if (!fully_canonical(ic.head->atom)) return std::nullopt;
  out.head = canon.ApplyToAtom(ic.head->atom);
  return out;
}

/// θ-subsumption with comparison flipping: every body literal of `source`
/// (under an accumulated one-way substitution) must match some body literal
/// of `target`. Returns every complete substitution via `on_match` until it
/// returns false.
bool MatchBodies(const std::vector<Literal>& source, size_t k, Matcher* matcher,
                 const std::vector<Literal>& target,
                 const std::function<bool()>& on_match) {
  if (k == source.size()) return on_match();
  const Literal& lit = source[k];
  for (const Literal& tl : target) {
    if (tl.positive != lit.positive) continue;
    if (tl.atom.is_predicate() != lit.atom.is_predicate()) continue;
    size_t mark = matcher->Mark();
    if (matcher->MatchLiteral(lit, tl)) {
      if (!MatchBodies(source, k + 1, matcher, target, on_match)) return false;
    }
    matcher->RollbackTo(mark);
    if (lit.atom.is_comparison()) {
      Atom flipped = Atom::Comparison(datalog::FlipOp(lit.atom.op()),
                                      lit.atom.rhs(), lit.atom.lhs());
      if (flipped.op() == lit.atom.op() && flipped.lhs() == lit.atom.lhs()) {
        continue;  // symmetric operator, flip adds nothing
      }
      mark = matcher->Mark();
      if (matcher->MatchAtom(flipped, tl.atom)) {
        if (!MatchBodies(source, k + 1, matcher, target, on_match)) return false;
      }
      matcher->RollbackTo(mark);
    }
  }
  return true;
}

/// True when `source` θ-subsumes `target`: a substitution maps source's
/// body into target's body and source's head onto (or, for comparison
/// heads, into an implicant of) target's head.
bool Subsumes(const Clause& source, const Clause& target) {
  Matcher matcher(source.VariableSet());
  bool found = false;
  MatchBodies(source.body, 0, &matcher, target.body, [&]() {
    if (!source.head.has_value()) {
      // A denial subsumes any clause with a weaker (or no) head.
      found = true;
      return false;
    }
    if (!target.head.has_value()) return true;  // headed can't subsume denial
    const Literal src_head = matcher.subst().ApplyToLiteral(*source.head);
    if (src_head == *target.head) {
      found = true;
      return false;
    }
    if (src_head.atom.is_comparison() && target.head->atom.is_comparison() &&
        src_head.positive && target.head->positive) {
      solver::ConstraintSet cs;
      cs.Add(src_head.atom);
      if (cs.Satisfiable() && cs.Implies(target.head->atom)) {
        found = true;
        return false;
      }
    }
    return true;  // keep searching other substitutions
  });
  return found;
}

}  // namespace

std::optional<sqo::ValueKind> ExpectedArgumentKind(
    const translate::TranslatedSchema& schema, const RelationSignature& sig,
    size_t position) {
  if (position >= sig.arity()) return std::nullopt;
  const std::string& attr = sig.attributes[position];
  switch (sig.kind) {
    case RelationKind::kRelationship:
    case RelationKind::kAsr:
      return sqo::ValueKind::kOid;
    case RelationKind::kClass: {
      if (position == 0) return sqo::ValueKind::kOid;
      const odl::ResolvedAttribute* resolved =
          schema.schema.FindAttribute(sig.owner, attr);
      if (resolved == nullptr) return std::nullopt;
      return KindOfBase(resolved->base);
    }
    case RelationKind::kStructure: {
      if (position == 0) return sqo::ValueKind::kOid;
      const odl::ResolvedAttribute* field =
          schema.schema.FindStructField(sig.owner, attr);
      if (field == nullptr) return std::nullopt;
      return KindOfBase(field->base);
    }
    case RelationKind::kMethod: {
      if (position == 0) return sqo::ValueKind::kOid;
      const odl::ResolvedMethod* method =
          schema.schema.FindMethod(sig.owner, sig.display_name);
      if (method == nullptr) return std::nullopt;
      if (position == sig.arity() - 1) {
        if (!method->return_struct.empty()) return sqo::ValueKind::kOid;
        return KindOfBase(method->return_base);
      }
      const size_t param = position - 1;
      if (param >= method->params.size()) return std::nullopt;
      return KindOfBase(method->params[param].type.base);
    }
  }
  return std::nullopt;
}

AnalysisReport AnalyzeIcs(const translate::TranslatedSchema& schema,
                          const std::vector<Clause>& user_ics,
                          const AnalyzerOptions& options) {
  AnalysisReport report;

  // Passes 1 + 2, per user IC.
  for (const Clause& ic : user_ics) {
    if (IsMethodFact(ic)) continue;
    const std::string subject = IcSubject(ic);

    if (options.check_safety) {
      const std::set<std::string> bound = PositivelyBoundVars(ic.body);
      const std::map<std::string, size_t> occurrences =
          VariableOccurrences(ic.head, {}, ic.body);
      if (ic.head.has_value() &&
          (ic.head->atom.is_comparison() || !ic.head->positive)) {
        // Comparison and negated-predicate heads must be range-restricted;
        // positive predicate heads may quantify existentially (§4.2 fn. 1).
        CheckLiteralSafety(*ic.head, bound, occurrences, kCodeUnsafeVariable,
                           subject, "head", &report);
      }
      for (const Literal& lit : ic.body) {
        if (lit.atom.is_comparison() || !lit.positive) {
          CheckLiteralSafety(lit, bound, occurrences, kCodeUnsafeVariable,
                             subject, "body", &report);
        }
      }
    }

    if (options.check_signatures) {
      if (ic.head.has_value() && ic.head->atom.is_predicate()) {
        CheckAtomSignature(schema, ic.head->atom, subject, &report);
      }
      for (const Literal& lit : ic.body) {
        if (lit.atom.is_predicate()) {
          CheckAtomSignature(schema, lit.atom, subject, &report);
        }
      }
    }

    if (options.check_index_hints) {
      CheckEqualityIndexHints(schema, ic, subject, &report);
    }
  }

  // Pass 3: contradictions among comparison-headed single-atom ICs. Schema
  // constraints participate so a user IC conflicting with generated
  // semantics is caught, but a finding must involve at least one user IC.
  if (options.check_contradictions) {
    std::vector<ContradictionCandidate> candidates;
    for (const Clause& ic : schema.constraints) {
      if (auto c = MakeCandidate(ic, /*is_user=*/false)) {
        candidates.push_back(std::move(*c));
      }
    }
    for (const Clause& ic : user_ics) {
      if (IsMethodFact(ic)) continue;
      if (auto c = MakeCandidate(ic, /*is_user=*/true)) {
        candidates.push_back(std::move(*c));
      }
    }

    // Singletons: a user IC whose own guard is satisfiable but whose head
    // contradicts it forces every matching instance out of existence.
    for (const ContradictionCandidate& c : candidates) {
      if (!c.is_user) continue;
      solver::ConstraintSet guard;
      for (const Atom& a : c.guard) guard.Add(a);
      if (!guard.Satisfiable()) continue;  // dead guard; pass 5 reports it
      solver::ConstraintSet with_head = guard;
      with_head.Add(c.head);
      if (!with_head.Satisfiable()) {
        report.Add(Severity::kError, kCodeContradictoryIcs, c.subject,
                   "head " + c.head.ToString() +
                       " contradicts the constraint's own body over relation '" +
                       c.relation + "'; matching instances are forced empty",
                   "restate the constraint as a denial if emptiness is "
                   "intended");
      }
    }

    // Pairs whose guards can co-fire but whose heads cannot jointly hold.
    size_t pairs = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      for (size_t j = i + 1; j < candidates.size(); ++j) {
        const ContradictionCandidate& a = candidates[i];
        const ContradictionCandidate& b = candidates[j];
        if (!a.is_user && !b.is_user) continue;
        if (a.relation != b.relation || a.arity != b.arity) continue;
        if (++pairs > options.max_pairs) break;
        solver::ConstraintSet guards;
        for (const Atom& atom : a.guard) guards.Add(atom);
        for (const Atom& atom : b.guard) guards.Add(atom);
        if (!guards.Satisfiable()) continue;  // never co-fire
        solver::ConstraintSet with_heads = guards;
        with_heads.Add(a.head);
        with_heads.Add(b.head);
        if (with_heads.Satisfiable()) continue;
        // Point the finding at a user IC (prefer the later declaration).
        const ContradictionCandidate& flagged = b.is_user ? b : a;
        const ContradictionCandidate& other = b.is_user ? a : b;
        report.Add(
            Severity::kError, kCodeContradictoryIcs, flagged.subject,
            "head " + flagged.head.ToString() + " cannot hold together with " +
                other.head.ToString() + " [" + other.subject +
                "] although both constraints apply to the same instances of "
                "relation '" +
                a.relation + "'",
            "reconcile the two constraints; as declared, '" + a.relation +
                "' can hold no instance satisfying both bodies");
      }
    }
  }

  // Pass 4: user ICs fully subsumed by another constraint carry no new
  // semantic knowledge; their residues only slow down residue application.
  if (options.check_redundancy) {
    size_t pairs = 0;
    for (size_t j = 0; j < user_ics.size(); ++j) {
      const Clause& target = user_ics[j];
      if (IsMethodFact(target)) continue;
      for (const Clause& source : schema.constraints) {
        if (++pairs > options.max_pairs) break;
        if (Subsumes(source, target)) {
          report.Add(Severity::kWarning, kCodeSubsumedIc, IcSubject(target),
                     "constraint is subsumed by schema-generated constraint [" +
                         IcSubject(source) + "] and adds no semantic knowledge",
                     "remove the redundant declaration");
          break;
        }
      }
      for (size_t i = 0; i < user_ics.size(); ++i) {
        if (i == j || IsMethodFact(user_ics[i])) continue;
        if (++pairs > options.max_pairs) break;
        const Clause& source = user_ics[i];
        if (!Subsumes(source, target)) continue;
        // For mutually subsuming (duplicate) ICs, flag only the later one.
        if (i > j && Subsumes(target, source)) continue;
        report.Add(Severity::kWarning, kCodeSubsumedIc, IcSubject(target),
                   "constraint is subsumed by [" + IcSubject(source) +
                       "] and adds no semantic knowledge",
                   "remove the redundant declaration");
        break;
      }
    }
  }

  return report;
}

AnalysisReport AnalyzeResidues(
    const std::map<std::string, std::vector<core::Residue>>& residues) {
  AnalysisReport report;
  for (const auto& [relation, attached] : residues) {
    for (const core::Residue& residue : attached) {
      solver::ConstraintSet guard;
      for (const Literal& lit : residue.remainder) {
        if (lit.positive && lit.atom.is_comparison()) guard.Add(lit.atom);
      }
      if (guard.size() == 0 || guard.Satisfiable()) continue;
      report.Add(
          Severity::kWarning, kCodeDeadResidue, relation,
          "residue of [" + residue.source + "] on template " +
              residue.template_atom.ToString() +
              " has an unsatisfiable guard and can never fire: " +
              guard.ToString(),
          "the originating constraint is vacuous for this relation; check "
          "its body comparisons");
    }
  }
  return report;
}

AnalysisReport AnalyzeQuery(const translate::TranslatedSchema& schema,
                            const Query& query,
                            const AnalyzerOptions& options) {
  AnalysisReport report;
  const std::string subject = query.name;
  const std::set<std::string> bound = PositivelyBoundVars(query.body);

  // Unbound head / comparison / negated-literal variables (SQO-A008).
  for (const Term& arg : query.head_args) {
    if (arg.is_variable() && bound.count(arg.var_name()) == 0) {
      report.Add(Severity::kError, kCodeUnboundQueryVariable, subject,
                 "projected variable '" + arg.var_name() +
                     "' is not bound by any positive body atom",
                 "bind '" + arg.var_name() + "' in a positive predicate atom");
    }
  }
  const std::map<std::string, size_t> occurrences =
      VariableOccurrences(std::nullopt, query.head_args, query.body);
  for (const Literal& lit : query.body) {
    if (!lit.atom.is_comparison() && lit.positive) continue;
    CheckLiteralSafety(lit, bound, occurrences, kCodeUnboundQueryVariable,
                       subject, "body", &report);
  }

  // Signature checks over the query's predicate atoms (SQO-A002..A004).
  if (options.check_signatures) {
    for (const Literal& lit : query.body) {
      if (lit.atom.is_predicate()) {
        CheckAtomSignature(schema, lit.atom, subject, &report);
      }
    }
  }

  // Per-literal constant folding (SQO-A009 / SQO-A010).
  for (const Literal& lit : query.body) {
    if (!lit.positive || !lit.atom.is_comparison()) continue;
    const Atom& atom = lit.atom;
    if (atom.lhs().is_constant() && atom.rhs().is_constant()) {
      const sqo::Value& l = atom.lhs().constant();
      const sqo::Value& r = atom.rhs().constant();
      bool truth;
      if (atom.op() == CmpOp::kEq || atom.op() == CmpOp::kNe) {
        truth = (atom.op() == CmpOp::kEq) == l.Equals(r);
      } else {
        std::optional<int> cmp = l.Compare(r);
        truth = cmp.has_value() && datalog::EvalCmp(atom.op(), *cmp);
      }
      if (truth) {
        report.Add(Severity::kWarning, kCodeConstantFoldable, subject,
                   "comparison " + atom.ToString() +
                       " is always true and can be removed",
                   "drop the literal");
      } else {
        report.Add(Severity::kWarning, kCodeTriviallyFalse, subject,
                   "comparison " + atom.ToString() +
                       " is always false; the query returns no rows",
                   "remove the contradictory literal or fix its constants");
      }
      continue;
    }
    if (atom.lhs() == atom.rhs()) {
      const bool always_true = atom.op() == CmpOp::kEq ||
                               atom.op() == CmpOp::kLe ||
                               atom.op() == CmpOp::kGe;
      report.Add(Severity::kWarning,
                 always_true ? kCodeConstantFoldable : kCodeTriviallyFalse,
                 subject,
                 "comparison " + atom.ToString() +
                     (always_true ? " is reflexively true and can be removed"
                                  : " is reflexively false; the query returns "
                                    "no rows"),
                 always_true ? "drop the literal"
                             : "remove or correct the literal");
    }
  }

  // Whole-restriction-set satisfiability (SQO-A009): catches conflicts
  // spread across several individually plausible comparisons.
  {
    solver::ConstraintSet cs;
    cs.AddComparisons(query.body);
    if (cs.size() > 0 && !cs.Satisfiable()) {
      report.Add(Severity::kWarning, kCodeTriviallyFalse, subject,
                 "the query's restriction set " + cs.ToString() +
                     " is unsatisfiable; the query is provably empty",
                 "no data can match; re-check the comparison constants");
    }
  }

  return report;
}

AnalysisReport AnalyzeGovernance(bool deadline_set, bool fail_open) {
  AnalysisReport report;
  if (deadline_set && !fail_open) {
    report.Add(Severity::kWarning, kCodeDeadlineFailClosed, "governance",
               "a deadline is configured but fail-open degradation is "
               "disabled; deadline expiry will fail queries outright with "
               "kResourceExhausted instead of degrading to the original "
               "translated query",
               "enable governance.fail_open (or drop the deadline) unless "
               "hard failures are intended");
  }
  return report;
}

AnalysisReport AnalyzeCatalogFreshness(const std::string& disk_schema_hash,
                                       const std::string& live_schema_hash,
                                       size_t disk_residues,
                                       size_t live_residues) {
  AnalysisReport report;
  if (disk_schema_hash == live_schema_hash) return report;
  std::string message =
      "the persisted semantic catalog was compiled from schema " +
      disk_schema_hash + " but the live schema is " + live_schema_hash +
      "; the stored residues are stale and were discarded in favor of a "
      "fresh compilation";
  if (disk_residues != live_residues) {
    message += " (stored " + std::to_string(disk_residues) +
               " residues, live compilation produced " +
               std::to_string(live_residues) + ")";
  }
  report.Add(Severity::kWarning, kCodeStaleCatalog, "catalog",
             std::move(message),
             "checkpoint the database to refresh the on-disk catalog");
  return report;
}

AnalysisReport AnalyzeStorageOptions(bool sync_each_append,
                                     int64_t flush_interval_us,
                                     int64_t deadline_budget_ms,
                                     size_t keep_snapshots) {
  AnalysisReport report;
  if (!sync_each_append) {
    report.Add(Severity::kWarning, kCodeWeakDurability, "storage",
               "sync_each_append is disabled: appends are acknowledged "
               "before their bytes are fsynced, so a crash can lose "
               "operations the caller was told were durable",
               "enable sync_each_append unless the last few operations are "
               "explicitly expendable");
  }
  if (deadline_budget_ms > 0 && flush_interval_us > deadline_budget_ms * 1000) {
    report.Add(
        Severity::kWarning, kCodeWeakDurability, "storage",
        "group_commit_flush_interval (" + std::to_string(flush_interval_us) +
            "us) exceeds the session's remaining deadline budget (" +
            std::to_string(deadline_budget_ms) +
            "ms): every governed append will expire unacknowledged before "
            "its batch flushes",
        "shrink the flush interval below the deadline budget (or rely on "
        "natural batching with interval 0)");
  }
  if (keep_snapshots < 2) {
    report.Add(Severity::kWarning, kCodeWeakDurability, "storage",
               "keep_snapshots < 2: checkpoint pruning drops the only "
               "fallback snapshot, so fail-open recovery from a corrupt "
               "newest snapshot can only degrade to an empty store",
               "keep at least 2 snapshots so recovery has an older one to "
               "fall back to");
  }
  return report;
}

AnalysisReport AnalyzeServerConfig(size_t workers,
                                   size_t hardware_concurrency,
                                   size_t max_queue_depth,
                                   size_t degrade_queue_depth,
                                   uint64_t shed_wait_ms,
                                   uint64_t default_deadline_ms) {
  AnalysisReport report;
  if (max_queue_depth < 1) {
    report.Add(Severity::kWarning, kCodeServerConfig, "server",
               "max_queue_depth is zero: admission control sheds every "
               "request before any degradation path can engage",
               "set a positive queue bound (degradation and shedding only "
               "work with room to queue)");
  }
  if (shed_wait_ms > 0 && default_deadline_ms > 0 &&
      shed_wait_ms < default_deadline_ms) {
    report.Add(Severity::kWarning, kCodeServerConfig, "server",
               "shed_wait_ms (" + std::to_string(shed_wait_ms) +
                   "ms) is below the default deadline budget (" +
                   std::to_string(default_deadline_ms) +
                   "ms): requests that could still meet their deadline are "
                   "shed by the wait estimate",
               "raise shed_wait_ms to at least the deadline budget, so only "
               "requests predicted to miss it are refused");
  }
  if (max_queue_depth >= 1 && degrade_queue_depth >= max_queue_depth) {
    report.Add(Severity::kWarning, kCodeServerConfig, "server",
               "degrade_queue_depth (" + std::to_string(degrade_queue_depth) +
                   ") is at or above max_queue_depth (" +
                   std::to_string(max_queue_depth) +
                   "): requests are refused before fail-open degradation "
                   "ever engages, inverting the overload posture",
               "keep the degrade threshold well below the admission bound "
               "so reads degrade before they are shed");
  }
  if (hardware_concurrency > 0 && workers > hardware_concurrency * 4) {
    report.Add(Severity::kWarning, kCodeServerConfig, "server",
               "workers (" + std::to_string(workers) +
                   ") exceeds 4x hardware concurrency (" +
                   std::to_string(hardware_concurrency) +
                   "): oversubscribed workers add context-switch overhead "
                   "and deepen queues without adding throughput",
               "cap workers near the hardware concurrency");
  }
  return report;
}

AnalysisReport AnalyzeProfile(const translate::TranslatedSchema& schema,
                              const obs::QueryProfile& profile) {
  AnalysisReport report;
  std::set<std::string> flagged;
  for (const obs::ProfileNode& node : profile.nodes) {
    if (node.op != "extent-scan") continue;
    const RelationSignature* sig = schema.catalog.Find(node.relation);
    if (sig == nullptr || sig->kind != RelationKind::kClass) continue;
    // Any key on the class (or inherited from a superclass) means an
    // explicit hash index exists for this relation.
    std::vector<std::string> keys;
    const odl::ClassInfo* cur = schema.schema.FindClass(sig->owner);
    while (cur != nullptr) {
      keys.insert(keys.end(), cur->keys.begin(), cur->keys.end());
      cur = cur->super.empty() ? nullptr : schema.schema.FindClass(cur->super);
    }
    if (keys.empty()) continue;
    if (!flagged.insert(sig->name).second) continue;
    std::string key_list;
    for (const std::string& key : keys) {
      if (!key_list.empty()) key_list += ", ";
      key_list += key;
    }
    report.Add(
        Severity::kWarning, kCodeExtentScanWithIndexHint, sig->name,
        "the executed plan scanned the full extent of '" + sig->name +
            "' (" + std::to_string(node.rows_in) +
            " probe(s)) although the class registers an index hint on key " +
            key_list +
            "; the query binds no key attribute, so the index could not "
            "serve the selection",
        "restrict the query on a key attribute (" + key_list +
            "), or add an integrity constraint whose residue implies such a "
            "restriction so the optimizer can introduce it");
  }
  return report;
}

AnalysisReport AnalyzeAsrStaleness(const obs::QueryProfile& profile,
                                   const std::vector<AsrFreshness>& asrs) {
  AnalysisReport report;
  std::set<std::pair<std::string, std::string>> flagged;  // (relation, asr)
  for (const obs::ProfileNode& node : profile.nodes) {
    if (node.op != "extent-scan" && node.op != "pair-scan") continue;
    for (const AsrFreshness& asr : asrs) {
      if (!asr.stale) continue;
      bool covers = asr.name == node.relation;
      for (const std::string& hop : asr.path) {
        if (hop == node.relation) covers = true;
      }
      if (!covers) continue;
      if (!flagged.insert({node.relation, asr.name}).second) continue;
      std::string path_text;
      for (const std::string& hop : asr.path) {
        if (!path_text.empty()) path_text += " . ";
        path_text += hop;
      }
      report.Add(
          Severity::kWarning, kCodeStaleAsr, node.relation,
          "the executed plan fell back to a full " + node.op + " over '" +
              node.relation + "' (" + std::to_string(node.rows_in) +
              " probe(s)) although the persisted access-support relation '" +
              asr.name + "' (path " + path_text +
              ") covers it; the ASR has gone stale after a deletion, so the "
              "materialized join index cannot serve the traversal",
          "re-materialize '" + asr.name +
              "' (ObjectStore::Materialize) so path queries traverse the "
              "refreshed join index instead of rescanning");
      break;  // one diagnostic per scanned relation is enough
    }
  }
  return report;
}

}  // namespace sqo::analysis
