#ifndef SQO_ANALYSIS_ANALYZER_H_
#define SQO_ANALYSIS_ANALYZER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "common/value.h"
#include "datalog/clause.h"
#include "datalog/signature.h"
#include "obs/profile.h"
#include "sqo/residue.h"
#include "translate/schema_translator.h"

namespace sqo::analysis {

/// Stable diagnostic codes, one family per analysis pass. The residue
/// method (paper §2, Chakravarthy–Grant–Minker) is only sound when the ICs
/// handed to the semantic compiler are safe, well-typed and mutually
/// consistent; each code guards one of those preconditions (see DESIGN.md).
///
///   code      pass            severity  finding
///   SQO-A001  safety          error     comparison/negative-literal variable
///                                       not bound in a positive body atom
///   SQO-A002  signature       error     unknown relation
///   SQO-A003  signature       error     atom arity mismatch
///   SQO-A004  signature       error     constant argument type incompatible
///                                       with the attribute's declared type
///   SQO-A005  contradiction   error     IC subset unsatisfiable: some legal
///                                       instance pattern is forced empty
///   SQO-A006  redundancy      warning   IC fully subsumed by another IC
///   SQO-A007  dead residue    warning   residue guard can never hold
///   SQO-A008  query lint      error     unbound head/comparison variable in
///                                       a DATALOG query
///   SQO-A009  query lint      warning   trivially false literal /
///                                       unsatisfiable restriction set
///   SQO-A010  query lint      warning   constant-foldable (always-true)
///                                       comparison literal
///   SQO-A011  governance      warning   deadline configured with fail-open
///                                       degradation disabled (fail-closed)
///   SQO-A012  index lint      warning   attribute-equality IC over an
///                                       attribute with no key/index hint
///   SQO-A013  catalog lint    warning   on-disk semantic catalog compiled
///                                       from a different schema than the
///                                       live one (stale catalog)
///   SQO-A014  profile lint    warning   executed profile shows an extent
///                                       scan over a class that declares a
///                                       key (index hint registered but the
///                                       plan did not use it)
///   SQO-A015  verifier        error     unjustified rewrite: a derivation
///                                       step could not be proven from
///                                       original ∧ ICs, or replaying the
///                                       recorded steps does not reproduce
///                                       the alternative (see verifier.h)
///   SQO-A016  verifier        warning   unproven elimination: a removed
///                                       conjunct could not be re-derived
///                                       from the rewritten query ∧ ICs
///                                       within the bounded chase
///   SQO-A017  verifier        note      catalog dependency report: the IC
///                                       labels an alternative's proof
///                                       depends on (plan-cache
///                                       invalidation key)
///   SQO-A018  storage lint    warning   durability-weakening storage knob:
///                                       acknowledgments without fsync, a
///                                       group-commit accumulation window
///                                       longer than the session's deadline
///                                       budget, or snapshot pruning that
///                                       drops the only fallback snapshot
///   SQO-A019  profile lint    warning   executed profile falls back to a
///                                       full extent/pair scan over a
///                                       relation covered by a persisted
///                                       ASR that has gone stale — the
///                                       materialized join index exists but
///                                       cannot be trusted until
///                                       re-materialized
///   SQO-A020  server lint     warning   serving config that defeats the
///                                       overload posture: a zero admission
///                                       queue bound (every request shed), a
///                                       load-shed wait threshold below the
///                                       default deadline budget (requests
///                                       that could still meet their
///                                       deadline are shed), a degrade
///                                       threshold at/above the queue bound
///                                       (refusal before degradation), or
///                                       workers oversubscribed beyond 4x
///                                       hardware concurrency
inline constexpr std::string_view kCodeUnsafeVariable = "SQO-A001";
inline constexpr std::string_view kCodeUnknownRelation = "SQO-A002";
inline constexpr std::string_view kCodeArityMismatch = "SQO-A003";
inline constexpr std::string_view kCodeTypeMismatch = "SQO-A004";
inline constexpr std::string_view kCodeContradictoryIcs = "SQO-A005";
inline constexpr std::string_view kCodeSubsumedIc = "SQO-A006";
inline constexpr std::string_view kCodeDeadResidue = "SQO-A007";
inline constexpr std::string_view kCodeUnboundQueryVariable = "SQO-A008";
inline constexpr std::string_view kCodeTriviallyFalse = "SQO-A009";
inline constexpr std::string_view kCodeConstantFoldable = "SQO-A010";
inline constexpr std::string_view kCodeDeadlineFailClosed = "SQO-A011";
inline constexpr std::string_view kCodeUnindexedEqualityIc = "SQO-A012";
inline constexpr std::string_view kCodeStaleCatalog = "SQO-A013";
inline constexpr std::string_view kCodeExtentScanWithIndexHint = "SQO-A014";
inline constexpr std::string_view kCodeUnjustifiedRewrite = "SQO-A015";
inline constexpr std::string_view kCodeUnprovenElimination = "SQO-A016";
inline constexpr std::string_view kCodeCatalogDependency = "SQO-A017";
inline constexpr std::string_view kCodeWeakDurability = "SQO-A018";
inline constexpr std::string_view kCodeStaleAsr = "SQO-A019";
inline constexpr std::string_view kCodeServerConfig = "SQO-A020";

struct AnalyzerOptions {
  bool check_safety = true;          // pass 1 (SQO-A001)
  bool check_signatures = true;      // pass 2 (SQO-A002..A004)
  bool check_contradictions = true;  // pass 3 (SQO-A005)
  bool check_redundancy = true;      // pass 4 (SQO-A006)
  bool check_index_hints = true;     // pass 8 (SQO-A012)

  /// Contradiction / redundancy are pairwise (singletons plus pairs); this
  /// caps the number of pairs examined so pathological IC sets stay linear
  /// in practice.
  size_t max_pairs = 65536;
};

/// The expected constant kind of argument `position` of `sig`, resolved
/// through the ODL schema (class/struct attribute types, method parameter
/// and return types; OID positions map to ValueKind::kOid). Returns
/// nullopt when the position's type cannot be resolved — the signature
/// checker treats unresolvable positions as unchecked rather than wrong.
std::optional<sqo::ValueKind> ExpectedArgumentKind(
    const translate::TranslatedSchema& schema,
    const datalog::RelationSignature& sig, size_t position);

/// Passes 1–4, plus the index-hint lint (SQO-A012), over user-declared
/// integrity constraints, validated against the translated schema.
/// SQO-A012 flags an IC that pins a class attribute by equality — a
/// constant in the attribute position or a `Var = const` comparison —
/// when the attribute carries no ODL `key` hint: residues of such an IC
/// enrich queries with equality selections that have no explicit index
/// and fall back to lazily built hash indexes or extent scans. Schema-generated constraints participate as
/// context (a user IC duplicating a generated one is flagged redundant;
/// a user IC contradicting another user IC is an error) but are themselves
/// trusted and never reported as subjects. Textual `monotone`/`point`
/// method-fact declarations are recognized and skipped (they are extracted
/// before residue compilation, not compiled as ICs).
AnalysisReport AnalyzeIcs(const translate::TranslatedSchema& schema,
                          const std::vector<datalog::Clause>& user_ics,
                          const AnalyzerOptions& options = {});

/// Pass 5 over compiled residues: flags residues whose remainder
/// comparisons are unsatisfiable — the residue can never fire for any legal
/// instance, so the semantic knowledge it carries is dead weight at query
/// time (SQO-A007, warning).
AnalysisReport AnalyzeResidues(
    const std::map<std::string, std::vector<core::Residue>>& residues);

/// Pass 6 over a translated DATALOG query: unbound head/comparison
/// variables (SQO-A008), trivially false literals or an unsatisfiable
/// restriction set (SQO-A009), constant-foldable comparisons (SQO-A010),
/// plus the pass-2 signature checks applied to the query's atoms.
AnalysisReport AnalyzeQuery(const translate::TranslatedSchema& schema,
                            const datalog::Query& query,
                            const AnalyzerOptions& options = {});

/// Pass 7 over the pipeline's resource-governance configuration: a deadline
/// combined with disabled fail-open degradation means every deadline expiry
/// fails the query outright with kResourceExhausted instead of falling back
/// to the original translated query (SQO-A011, warning). Takes plain bools
/// so the analysis layer stays independent of the pipeline's option types.
AnalysisReport AnalyzeGovernance(bool deadline_set, bool fail_open);

/// Pass 9 over a recovered persistent catalog: when the on-disk semantic
/// catalog was compiled from a schema whose fingerprint differs from the
/// live schema's, its residues describe constraints of a different world —
/// the engine recompiles from the live schema and the stored copy is stale
/// (SQO-A013, warning). Residue counts sharpen the message when they also
/// diverge. Takes plain hex-string hashes and counts so the analysis layer
/// stays independent of the storage layer's types.
AnalysisReport AnalyzeCatalogFreshness(const std::string& disk_schema_hash,
                                       const std::string& live_schema_hash,
                                       size_t disk_residues,
                                       size_t live_residues);

/// Pass 10 over an executed query profile (EXPLAIN ANALYZE tree): flags
/// extent-scan operators over class relations whose ODL declaration (or a
/// superclass's) registers a key — an index hint exists, so the scan means
/// the query binds no key attribute, or planning missed the probe
/// (SQO-A014, warning). Scans of keyless classes are expected and not
/// flagged; neither are index/lazy-index probes.
AnalysisReport AnalyzeProfile(const translate::TranslatedSchema& schema,
                              const obs::QueryProfile& profile);

/// Pass 11 over the storage layer's durability configuration (SQO-A018,
/// warning). Flags knob combinations that silently weaken the "OK means
/// durable" acknowledgment contract: `sync_each_append` off (acks without
/// fsync), a group-commit accumulation window longer than the session's
/// remaining deadline budget (every governed append would expire before its
/// batch flushes), and `keep_snapshots < 2` (pruning drops the only fallback
/// snapshot fail-open recovery could degrade to). `deadline_budget_ms == 0`
/// means no deadline is configured. Takes plain integers/bools so the
/// analysis layer stays independent of the storage layer's option types.
AnalysisReport AnalyzeStorageOptions(bool sync_each_append,
                                     int64_t flush_interval_us,
                                     int64_t deadline_budget_ms,
                                     size_t keep_snapshots);

/// Freshness of one materialized access-support relation, as plain data so
/// the analysis layer stays independent of the engine (mirror of the
/// store's `AsrState`): the ASR's relation name, the path of relationship
/// hops it materializes, and whether a deletion has marked it stale.
struct AsrFreshness {
  std::string name;
  std::vector<std::string> path;
  bool stale = false;
};

/// Pass 12 over an executed query profile: flags full extent-scan or
/// pair-scan operators over a relation that a *stale* persisted ASR covers
/// (the scanned relation is the ASR itself or one of its path hops) —
/// the materialized join index exists on disk but deletions invalidated
/// it, so the plan pays the scan the ASR was built to avoid until the ASR
/// is re-materialized (SQO-A019, warning). Fresh ASRs and probe/traverse
/// operators are not flagged.
AnalysisReport AnalyzeAsrStaleness(const obs::QueryProfile& profile,
                                   const std::vector<AsrFreshness>& asrs);

/// Pass 13 over a serving layer's configuration (SQO-A020, warning). Flags
/// combinations that defeat the degrade-before-refuse overload posture:
/// `max_queue_depth < 1` (admission control sheds every request), a
/// load-shed wait threshold below the default deadline budget (requests
/// that could still meet their deadline are shed), a degrade threshold
/// at/above the queue bound (requests are refused before degradation ever
/// engages), and a worker count above 4x hardware concurrency (pure
/// context-switch overhead under load). Zero `shed_wait_ms` /
/// `default_deadline_ms` mean the corresponding policy is off. Takes plain
/// integers so the analysis layer stays independent of the server's
/// option types.
AnalysisReport AnalyzeServerConfig(size_t workers,
                                   size_t hardware_concurrency,
                                   size_t max_queue_depth,
                                   size_t degrade_queue_depth,
                                   uint64_t shed_wait_ms,
                                   uint64_t default_deadline_ms);

}  // namespace sqo::analysis

#endif  // SQO_ANALYSIS_ANALYZER_H_
