#include "analysis/verifier.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/interner.h"
#include "datalog/unify.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/constraint_set.h"

namespace sqo::analysis {

using datalog::Atom;
using datalog::Clause;
using datalog::CmpOp;
using datalog::FreshVarGen;
using datalog::Literal;
using datalog::Matcher;
using datalog::Query;
using datalog::RelationKind;
using datalog::RelationSignature;
using datalog::Term;

namespace {

/// Backtracking budget per proof obligation / IC application sweep. The
/// matcher prunes by predicate name, so real queries stay far below this;
/// the cap only shields against adversarial self-joins.
constexpr size_t kMatchFuel = 20000;

/// Cap on head instantiations one clause may queue per chase round.
constexpr size_t kMaxApplicationsPerClause = 32;

/// Per-verification precomputed state: IC clauses renamed apart from every
/// query variable (the `_IC` prefix is reserved for the verifier), each
/// with its bindable-variable symbol set, plus the ASR definitions by
/// relation name.
struct VerifierContext {
  const VerifierCatalog* catalog;
  struct PreparedIc {
    Clause clause;
    std::string label;
    sqo::SymbolSet bindable;
  };
  std::vector<PreparedIc> ics;
  std::map<std::string, const core::AsrDefinition*> asr_by_name;

  explicit VerifierContext(const VerifierCatalog& cat) : catalog(&cat) {
    FreshVarGen rename("_IC");
    if (cat.ics != nullptr) {
      ics.reserve(cat.ics->size());
      for (const Clause& ic : *cat.ics) {
        PreparedIc prepared;
        prepared.clause = ic.RenamedApart(&rename);
        prepared.label = ic.label.empty() ? ic.ToString() : ic.label;
        for (const std::string& v : prepared.clause.Variables()) {
          prepared.bindable.insert(sqo::Intern(v));
        }
        ics.push_back(std::move(prepared));
      }
    }
    if (cat.asrs != nullptr) {
      for (const core::AsrDefinition& asr : *cat.asrs) {
        asr_by_name[asr.name] = &asr;
      }
    }
  }
};

/// One chase-derived (or query-given) predicate literal with the labels of
/// every IC its derivation used (empty for literals of the query itself).
struct ChaseFact {
  Literal literal;
  std::set<std::string> labels;
};

/// The saturated proof state for one query: predicate facts, the solver
/// closure over every known comparison, and provenance labels. `unsat`
/// marks a derived denial or an unsatisfiable comparison set — a query
/// with no answers on any legal store entails everything.
struct ChaseState {
  std::vector<ChaseFact> facts;
  std::vector<Literal> comparisons;  // positive comparison literals
  solver::ConstraintSet cs;
  std::set<std::string> cs_labels;  // ICs that contributed comparisons
  bool unsat = false;
  std::set<std::string> unsat_labels;
  bool capped = false;
};

/// Recursive backtracking match of `body` against the chase facts and
/// comparison closure (the chase-side analogue of the optimizer's residue
/// remainder matching). `used` records the facts each solution consumed;
/// `semantic_cmp` is set while a comparison is discharged by the solver
/// closure rather than a syntactic comparison literal. Never mutates the
/// state — callers queue derived heads and apply them after enumeration.
void MatchBody(const std::vector<Literal>& body, size_t k, Matcher* matcher,
               const ChaseState& st,
               const solver::ConstraintSet::EqualityView& eq,
               const sqo::SymbolSet& bindable, size_t* fuel,
               std::vector<const ChaseFact*>* used, bool* semantic_cmp,
               const std::function<void()>& on_match) {
  if (*fuel == 0) return;
  if (k == body.size()) {
    on_match();
    return;
  }
  const Literal& lit = body[k];
  if (lit.atom.is_comparison()) {
    for (const Literal& cl : st.comparisons) {
      if (*fuel == 0) return;
      --*fuel;
      size_t mark = matcher->Mark();
      if (matcher->MatchAtom(lit.atom, cl.atom)) {
        MatchBody(body, k + 1, matcher, st, eq, bindable, fuel, used,
                  semantic_cmp, on_match);
      }
      matcher->RollbackTo(mark);
      Atom flipped = Atom::Comparison(datalog::FlipOp(lit.atom.op()),
                                      lit.atom.rhs(), lit.atom.lhs());
      if (flipped.op() != lit.atom.op() || flipped.lhs() != lit.atom.lhs()) {
        mark = matcher->Mark();
        if (matcher->MatchAtom(flipped, cl.atom)) {
          MatchBody(body, k + 1, matcher, st, eq, bindable, fuel, used,
                    semantic_cmp, on_match);
        }
        matcher->RollbackTo(mark);
      }
    }
    // Semantic candidate: fully instantiated and entailed by the closure.
    Atom inst = matcher->subst().ApplyToAtom(lit.atom);
    std::vector<sqo::Symbol> vars;
    inst.CollectVariables(&vars);
    bool fully_bound = true;
    for (sqo::Symbol v : vars) {
      if (bindable.count(v) > 0) fully_bound = false;
    }
    if (fully_bound && eq.Implies(inst)) {
      bool was = *semantic_cmp;
      *semantic_cmp = true;
      MatchBody(body, k + 1, matcher, st, eq, bindable, fuel, used,
                semantic_cmp, on_match);
      *semantic_cmp = was;
    }
    return;
  }
  for (const ChaseFact& fact : st.facts) {
    if (*fuel == 0) return;
    if (fact.literal.positive != lit.positive ||
        !fact.literal.atom.is_predicate()) {
      continue;
    }
    --*fuel;
    size_t mark = matcher->Mark();
    if (matcher->MatchLiteral(lit, fact.literal)) {
      used->push_back(&fact);
      MatchBody(body, k + 1, matcher, st, eq, bindable, fuel, used,
                semantic_cmp, on_match);
      used->pop_back();
    }
    matcher->RollbackTo(mark);
  }
}

/// Obligation-side rule for §5.2 scope-reduction literals: a negative
/// class/structure literal whose every attribute position is a local
/// (existentially wiped) variable — `x not in Faculty` — is entailed by
/// any negative fact on the same relation with an equal OID argument. The
/// attribute FDs justify this: a class tuple with this OID would have to
/// agree with the fact's already-refuted attribute values (the same axiom
/// the optimizer's wipe applies; see DESIGN.md). Any pattern that binds an
/// attribute position to something non-local must full-match instead.
bool MatchNegativeByOid(const VerifierContext& ctx, const Literal& lit,
                        const ChaseFact& fact, const sqo::SymbolSet& bindable,
                        Matcher* matcher) {
  if (lit.positive || !lit.atom.is_predicate() || lit.atom.args().empty() ||
      fact.literal.atom.args().empty()) {
    return false;
  }
  if (lit.atom.predicate() != fact.literal.atom.predicate()) return false;
  const RelationSignature* sig =
      ctx.catalog->schema->catalog.Find(lit.atom.predicate());
  if (sig == nullptr || (sig->kind != RelationKind::kClass &&
                         sig->kind != RelationKind::kStructure)) {
    return false;
  }
  for (size_t i = 1; i < lit.atom.args().size(); ++i) {
    const Term& t = lit.atom.args()[i];
    if (!t.is_variable() || bindable.count(t.var_symbol()) == 0) return false;
  }
  return matcher->MatchTerm(lit.atom.args()[0], fact.literal.atom.args()[0]);
}

/// Adds `fact` unless an existing fact subsumes it (same literal modulo
/// this fact's existential `_C`/`_E` variables). Returns true when added.
bool AddFact(ChaseState* st, Literal literal, std::set<std::string> labels,
             size_t max_facts) {
  sqo::SymbolSet fresh;
  {
    std::vector<std::string> vars;
    literal.atom.CollectVariables(&vars);
    for (const std::string& v : vars) {
      if (v.rfind("_C", 0) == 0 || v.rfind("_E", 0) == 0) {
        fresh.insert(sqo::Intern(v));
      }
    }
  }
  for (const ChaseFact& existing : st->facts) {
    if (existing.literal == literal) return false;
    if (!fresh.empty() && existing.literal.positive == literal.positive &&
        existing.literal.atom.is_predicate()) {
      Matcher m = Matcher::Borrowing(&fresh);
      if (m.MatchLiteral(literal, existing.literal)) return false;
    }
  }
  if (st->facts.size() >= max_facts) {
    st->capped = true;
    return false;
  }
  st->facts.push_back(ChaseFact{std::move(literal), std::move(labels)});
  return true;
}

/// Merges the labels of the facts a match consumed (plus the closure's
/// labels when the solver discharged a comparison semantically — a
/// conservative over-approximation: the dependency set may name more ICs
/// than the minimal proof needs, which only makes a plan cache invalidate
/// more eagerly).
std::set<std::string> UsedLabels(const std::vector<const ChaseFact*>& used,
                                 bool semantic_cmp, const ChaseState& st) {
  std::set<std::string> labels;
  for (const ChaseFact* fact : used) {
    labels.insert(fact->labels.begin(), fact->labels.end());
  }
  if (semantic_cmp) {
    labels.insert(st.cs_labels.begin(), st.cs_labels.end());
  }
  return labels;
}

/// Saturates the proof state of `query`: rounds of (a) ASR expansion —
/// an asr(a, b) fact expands to its defining path with fresh correlated
/// interior variables (the materialized-view equivalence, the reverse
/// direction of the `asr_def` clause), (b) IC application — every clause
/// whose body matches the state derives its instantiated head, and (c)
/// functional-dependency equality propagation — two facts on a relation
/// functional in some argument position with equal determining arguments
/// force their determined arguments equal. Bounded by rounds and fact
/// count; the bounds only ever lose completeness, never soundness.
ChaseState ChaseQuery(const VerifierContext& ctx, const Query& query,
                      const VerifierOptions& options) {
  ChaseState st;
  for (const Literal& lit : query.body) {
    if (lit.atom.is_predicate()) {
      st.facts.push_back(ChaseFact{lit, {}});
    } else if (lit.positive && lit.atom.is_comparison()) {
      st.comparisons.push_back(lit);
    }
  }
  st.cs.AddComparisons(query.body);

  FreshVarGen existential("_C");
  FreshVarGen expansion("_E");
  std::set<std::string> expanded;  // asr fact keys already expanded

  for (size_t round = 0; round < options.max_chase_rounds; ++round) {
    obs::Count("verify.chase_rounds");
    if (!st.cs.Satisfiable()) {
      st.unsat = true;
      if (st.unsat_labels.empty()) st.unsat_labels = st.cs_labels;
    }
    if (st.unsat || st.capped) break;
    bool changed = false;

    // (a) ASR expansion.
    const size_t fact_count = st.facts.size();
    for (size_t fi = 0; fi < fact_count; ++fi) {
      const ChaseFact fact = st.facts[fi];  // copy: st.facts may reallocate
      if (!fact.literal.positive || !fact.literal.atom.is_predicate() ||
          fact.literal.atom.arity() != 2) {
        continue;
      }
      auto it = ctx.asr_by_name.find(fact.literal.atom.predicate());
      if (it == ctx.asr_by_name.end()) continue;
      if (!expanded.insert(fact.literal.atom.ToString()).second) continue;
      const core::AsrDefinition& asr = *it->second;
      std::set<std::string> labels = fact.labels;
      labels.insert(asr.view.label.empty() ? "asr_def:" + asr.name
                                           : asr.view.label);
      std::vector<Term> joints;
      joints.push_back(fact.literal.atom.args()[0]);
      for (size_t p = 1; p < asr.path.size(); ++p) {
        joints.push_back(expansion.NextVar());
      }
      joints.push_back(fact.literal.atom.args()[1]);
      for (size_t p = 0; p < asr.path.size(); ++p) {
        if (AddFact(&st,
                    Literal::Pos(
                        Atom::Pred(asr.path[p], {joints[p], joints[p + 1]})),
                    labels, options.max_chase_literals)) {
          changed = true;
        }
      }
    }

    // (b) IC application. Derived heads are queued during enumeration (the
    // matcher iterates the state, which must not reallocate under it) and
    // applied once the clause's sweep completes.
    for (const VerifierContext::PreparedIc& ic : ctx.ics) {
      if (st.unsat || st.capped) break;
      const solver::ConstraintSet::EqualityView eq(st.cs);
      struct PendingHead {
        Literal literal;
        std::set<std::string> labels;
        bool denial = false;
      };
      std::vector<PendingHead> pending;
      Matcher matcher = Matcher::Borrowing(&ic.bindable);
      matcher.set_frozen_equiv(
          [&eq](const Term& a, const Term& b) { return eq.Equal(a, b); });
      std::vector<const ChaseFact*> used;
      bool semantic_cmp = false;
      size_t fuel = kMatchFuel;
      MatchBody(ic.clause.body, 0, &matcher, st, eq, ic.bindable, &fuel, &used,
                &semantic_cmp, [&]() {
        if (pending.size() >= kMaxApplicationsPerClause) return;
        PendingHead head;
        head.labels = UsedLabels(used, semantic_cmp, st);
        head.labels.insert(ic.label);
        if (!ic.clause.head.has_value()) {
          head.denial = true;
        } else {
          head.literal = matcher.subst().ApplyToLiteral(*ic.clause.head);
        }
        pending.push_back(std::move(head));
      });
      for (PendingHead& head : pending) {
        if (head.denial) {
          // Denial: the state is contradictory on every legal store.
          st.unsat = true;
          st.unsat_labels = std::move(head.labels);
          changed = true;
          break;
        }
        if (head.literal.atom.is_comparison()) {
          Atom atom = head.literal.positive ? head.literal.atom
                                            : head.literal.Complement().atom;
          std::vector<sqo::Symbol> vars;
          atom.CollectVariables(&vars);
          bool fully_bound = true;
          for (sqo::Symbol v : vars) {
            if (ic.bindable.count(v) > 0) fully_bound = false;
          }
          if (!fully_bound) continue;  // existential comparison: no info
          // `eq` is stale once the set mutates; ask the set directly here.
          if (!st.cs.Implies(atom)) {
            st.cs.Add(atom);
            st.comparisons.push_back(Literal::Pos(atom));
            st.cs_labels.insert(head.labels.begin(), head.labels.end());
            changed = true;
          }
          continue;
        }
        // Predicate head: freshen head-only existential variables (§4.2
        // footnote 1) consistently within this application.
        datalog::Substitution freshen;
        std::vector<std::string> vars;
        head.literal.atom.CollectVariables(&vars);
        for (const std::string& v : vars) {
          if (ic.bindable.count(sqo::Intern(v)) > 0) {
            freshen.Bind(v, existential.NextVar());
          }
        }
        Literal derived = freshen.ApplyToLiteral(head.literal);
        if (AddFact(&st, std::move(derived), std::move(head.labels),
                    options.max_chase_literals)) {
          changed = true;
        }
      }
    }

    // (c) FD equality propagation over positive facts. Queries go through
    // the set itself, not an EqualityView: the loop mutates the set, which
    // would invalidate any view mid-iteration.
    if (!st.unsat && !st.capped) {
      auto force_equal = [&](const Term& a, const Term& b,
                             const std::string& pred,
                             const std::set<std::string>& labels) {
        if (st.cs.ImpliesEqual(a, b)) return;
        st.cs.AddConstraint(CmpOp::kEq, a, b);
        st.cs_labels.insert(labels.begin(), labels.end());
        st.cs_labels.insert("fd:" + pred);
        changed = true;
      };
      for (size_t i = 0; i < st.facts.size(); ++i) {
        const Literal& a = st.facts[i].literal;
        if (!a.positive || !a.atom.is_predicate()) continue;
        const RelationSignature* sig =
            ctx.catalog->schema->catalog.Find(a.atom.predicate());
        if (sig == nullptr) continue;
        for (size_t j = i + 1; j < st.facts.size(); ++j) {
          const Literal& b = st.facts[j].literal;
          if (!b.positive || !b.atom.is_predicate() ||
              b.atom.predicate() != a.atom.predicate() ||
              b.atom.arity() != a.atom.arity()) {
            continue;
          }
          std::set<std::string> labels = st.facts[i].labels;
          labels.insert(st.facts[j].labels.begin(), st.facts[j].labels.end());
          switch (sig->kind) {
            case RelationKind::kClass:
            case RelationKind::kStructure:
              if (a.atom.arity() >= 1 &&
                  st.cs.ImpliesEqual(a.atom.args()[0], b.atom.args()[0])) {
                for (size_t p = 1; p < a.atom.arity(); ++p) {
                  force_equal(a.atom.args()[p], b.atom.args()[p], sig->name,
                              labels);
                }
              }
              break;
            case RelationKind::kMethod: {
              if (a.atom.arity() < 1) break;
              bool inputs_equal = true;
              for (size_t p = 0; p + 1 < a.atom.arity(); ++p) {
                inputs_equal = inputs_equal &&
                               st.cs.ImpliesEqual(a.atom.args()[p], b.atom.args()[p]);
              }
              if (inputs_equal) {
                force_equal(a.atom.args()[a.atom.arity() - 1],
                            b.atom.args()[b.atom.arity() - 1], sig->name,
                            labels);
              }
              break;
            }
            case RelationKind::kRelationship:
            case RelationKind::kAsr:
              if (a.atom.arity() != 2) break;
              if (sig->functional_src_to_dst &&
                  st.cs.ImpliesEqual(a.atom.args()[0], b.atom.args()[0])) {
                force_equal(a.atom.args()[1], b.atom.args()[1], sig->name,
                            labels);
              }
              if (sig->functional_dst_to_src &&
                  st.cs.ImpliesEqual(a.atom.args()[1], b.atom.args()[1])) {
                force_equal(a.atom.args()[0], b.atom.args()[0], sig->name,
                            labels);
              }
              break;
          }
        }
      }
    }

    if (!changed) break;
  }
  if (!st.cs.Satisfiable()) {
    st.unsat = true;
    if (st.unsat_labels.empty()) st.unsat_labels = st.cs_labels;
  }
  obs::Count("verify.chase_facts", st.facts.size());
  if (st.capped) obs::Count("verify.chase_capped");
  return st;
}

/// Discharges `state ∧ ICs ⊨ ∃(bindable vars): conj`, with the bindable
/// (existential) variables correlated across the conjuncts. On success
/// merges the supporting labels into `deps`.
bool EntailsConjunction(const VerifierContext& ctx, const ChaseState& st,
                        const std::vector<Literal>& conj,
                        const std::set<std::string>& bindable_names,
                        std::set<std::string>* deps) {
  if (st.unsat) {
    deps->insert(st.unsat_labels.begin(), st.unsat_labels.end());
    return true;
  }
  sqo::SymbolSet bindable;
  for (const std::string& v : bindable_names) bindable.insert(sqo::Intern(v));
  const solver::ConstraintSet::EqualityView eq(st.cs);

  // Order predicates first so comparisons see maximal bindings; among
  // predicates keep the given order (backtracking explores the rest).
  std::vector<Literal> ordered;
  for (const Literal& l : conj) {
    if (l.atom.is_predicate()) ordered.push_back(l);
  }
  for (const Literal& l : conj) {
    if (l.atom.is_comparison()) ordered.push_back(l);
  }

  bool proven = false;
  size_t fuel = kMatchFuel;
  std::function<void(size_t, Matcher*, std::vector<const ChaseFact*>*, bool*)>
      search = [&](size_t k, Matcher* matcher,
                   std::vector<const ChaseFact*>* used, bool* semantic_cmp) {
        if (proven || fuel == 0) return;
        if (k == ordered.size()) {
          proven = true;
          std::set<std::string> labels = UsedLabels(*used, *semantic_cmp, st);
          deps->insert(labels.begin(), labels.end());
          return;
        }
        const Literal& lit = ordered[k];
        if (lit.atom.is_comparison()) {
          // Negative comparisons complement to positive ones.
          Atom atom = lit.positive ? lit.atom : lit.Complement().atom;
          Atom inst = matcher->subst().ApplyToAtom(atom);
          std::vector<sqo::Symbol> vars;
          inst.CollectVariables(&vars);
          bool fully_bound = true;
          for (sqo::Symbol v : vars) {
            if (bindable.count(v) > 0) fully_bound = false;
          }
          if (fully_bound && eq.Implies(inst)) {
            bool was = *semantic_cmp;
            *semantic_cmp = true;
            search(k + 1, matcher, used, semantic_cmp);
            *semantic_cmp = was;
          }
          return;
        }
        for (const ChaseFact& fact : st.facts) {
          if (proven || fuel == 0) return;
          if (fact.literal.positive != lit.positive ||
              !fact.literal.atom.is_predicate()) {
            continue;
          }
          --fuel;
          size_t mark = matcher->Mark();
          bool matched = matcher->MatchLiteral(lit, fact.literal);
          if (!matched) {
            matcher->RollbackTo(mark);
            matched = MatchNegativeByOid(ctx, lit, fact, bindable, matcher);
          }
          if (matched) {
            used->push_back(&fact);
            search(k + 1, matcher, used, semantic_cmp);
            used->pop_back();
          }
          matcher->RollbackTo(mark);
        }
      };

  Matcher matcher = Matcher::Borrowing(&bindable);
  matcher.set_frozen_equiv(
      [&eq](const Term& a, const Term& b) { return eq.Equal(a, b); });
  std::vector<const ChaseFact*> used;
  bool semantic_cmp = false;
  search(0, &matcher, &used, &semantic_cmp);
  return proven;
}

/// The existential variables of an obligation: those of `conj` that occur
/// neither in `anchor` (the query the obligation is checked against) nor
/// in its head.
std::set<std::string> LocalVars(const std::vector<Literal>& conj,
                                const Query& anchor) {
  const std::set<std::string> anchored = anchor.VariableSet();
  std::set<std::string> local;
  for (const Literal& lit : conj) {
    std::vector<std::string> vars;
    lit.atom.CollectVariables(&vars);
    for (const std::string& v : vars) {
      if (anchored.count(v) == 0) local.insert(v);
    }
  }
  return local;
}

std::string DescribeConj(const std::vector<Literal>& conj) {
  std::string out;
  for (const Literal& lit : conj) {
    if (!out.empty()) out += " & ";
    out += lit.ToString();
  }
  return out;
}

}  // namespace

AlternativeVerdict VerifyRewriting(const VerifierCatalog& catalog,
                                   const Query& original,
                                   const RewriteCandidate& candidate,
                                   size_t index,
                                   const VerifierOptions& options) {
  obs::Span span("verify.alternative");
  obs::Count("verify.alternatives");
  AlternativeVerdict verdict;
  verdict.index = index;
  if (candidate.query == nullptr || catalog.schema == nullptr ||
      catalog.ics == nullptr) {
    verdict.sound = false;
    verdict.replay_ok = false;
    return verdict;
  }
  static const std::vector<core::DerivationStep> kNoSteps;
  const std::vector<core::DerivationStep>& steps =
      candidate.steps != nullptr ? *candidate.steps : kNoSteps;

  VerifierContext ctx(catalog);
  std::set<std::string> deps;

  Query current = original;
  ChaseState pre = ChaseQuery(ctx, current, options);
  for (size_t si = 0; si < steps.size(); ++si) {
    const core::DerivationStep& step = steps[si];
    const Query after = core::ApplyDerivationStep(current, step);
    ChaseState post = ChaseQuery(ctx, after, options);

    auto obligation = [&](const std::vector<Literal>& conj, bool elimination,
                          const ChaseState& state, const Query& anchor,
                          const char* what) {
      if (conj.empty()) return;
      obs::Count("verify.obligations");
      ObligationOutcome outcome;
      outcome.step_index = si;
      outcome.elimination = elimination;
      outcome.description = "step " + std::to_string(si + 1) + " (" +
                            std::string(core::StepKindName(step.kind)) +
                            "): " + what + " " + DescribeConj(conj);
      outcome.proven =
          EntailsConjunction(ctx, state, conj, LocalVars(conj, anchor), &deps);
      if (!outcome.proven) {
        obs::Count("verify.obligations_unproven");
        if (elimination) {
          verdict.complete = false;
        } else {
          verdict.sound = false;
        }
      }
      verdict.obligations.push_back(std::move(outcome));
    };

    if (step.kind == core::StepKind::kMergeVariables) {
      obs::Count("verify.obligations");
      ObligationOutcome outcome;
      outcome.step_index = si;
      outcome.description =
          "step " + std::to_string(si + 1) + " (merge_variables): implied " +
          step.merge_keep + " = " + step.merge_drop;
      const solver::ConstraintSet::EqualityView eq(pre.cs);
      outcome.proven = pre.unsat || eq.Equal(Term::Var(step.merge_keep),
                                             Term::Var(step.merge_drop));
      if (outcome.proven) {
        deps.insert(pre.cs_labels.begin(), pre.cs_labels.end());
      } else {
        obs::Count("verify.obligations_unproven");
        verdict.sound = false;
      }
      verdict.obligations.push_back(std::move(outcome));
    }
    obligation(step.added, /*elimination=*/false, pre, current, "added");
    obligation(step.removed, /*elimination=*/true, post, after, "removed");

    current = after;
    pre = std::move(post);
  }

  // The replayed chain must reproduce the candidate (canonical form:
  // insensitive to variable naming and body order).
  verdict.replay_ok = current.CanonicalFingerprint() ==
                      candidate.query->CanonicalFingerprint();
  if (!verdict.replay_ok) verdict.sound = false;

  verdict.dependencies.assign(deps.begin(), deps.end());
  if (!verdict.sound) obs::Count("verify.unsound_alternatives");
  span.Tag("index", static_cast<uint64_t>(index));
  span.Tag("sound", verdict.sound ? "true" : "false");
  span.Tag("obligations", static_cast<uint64_t>(verdict.obligations.size()));
  return verdict;
}

void AppendVerdictDiagnostics(const AlternativeVerdict& verdict,
                              std::string_view subject,
                              const VerifierOptions& options,
                              AnalysisReport* report) {
  const std::string tag =
      std::string(subject) + "#" + std::to_string(verdict.index);
  if (!verdict.replay_ok) {
    report->Add(Severity::kError, kCodeUnjustifiedRewrite, tag,
                "replaying the recorded derivation steps does not reproduce "
                "this alternative (derivation incomplete or divergent)",
                "re-run the optimizer; a mismatch here means the recorded "
                "steps and the emitted query disagree");
  }
  for (const ObligationOutcome& o : verdict.obligations) {
    if (o.proven) continue;
    if (o.elimination) {
      report->Add(Severity::kWarning, kCodeUnprovenElimination, tag,
                  "elimination not re-derivable within the bounded chase: " +
                      o.description,
                  "raise max_chase_rounds/max_chase_literals, or treat the "
                  "alternative as unverified");
    } else {
      report->Add(Severity::kError, kCodeUnjustifiedRewrite, tag,
                  "unjustified rewrite: " + o.description +
                      " is not entailed by the query and the IC catalog");
    }
  }
  if (options.dependency_report && !verdict.obligations.empty()) {
    std::string deps;
    for (const std::string& d : verdict.dependencies) {
      if (!deps.empty()) deps += ", ";
      deps += d;
    }
    report->Add(Severity::kNote, kCodeCatalogDependency, tag,
                deps.empty() ? "proof uses no integrity constraints"
                             : "proof depends on: " + deps);
  }
}

VerificationResult VerifyRewritings(const VerifierCatalog& catalog,
                                    const Query& original,
                                    const std::vector<RewriteCandidate>& candidates,
                                    std::string_view subject,
                                    const VerifierOptions& options) {
  obs::Span span("verify.rewritings");
  VerificationResult result;
  result.verdicts.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    AlternativeVerdict verdict =
        VerifyRewriting(catalog, original, candidates[i], i, options);
    AppendVerdictDiagnostics(verdict, subject, options, &result.report);
    result.verdicts.push_back(std::move(verdict));
  }
  span.Tag("alternatives", static_cast<uint64_t>(result.verdicts.size()));
  span.Tag("sound", result.all_sound() ? "true" : "false");
  return result;
}

}  // namespace sqo::analysis
