#ifndef SQO_ANALYSIS_DIAGNOSTIC_H_
#define SQO_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sqo::analysis {

/// Severity of a static-analysis finding. Errors make the input unsafe to
/// hand to the semantic compiler (the residue method's soundness
/// preconditions are violated); warnings flag dead or redundant semantic
/// knowledge that is sound to compile but almost certainly a mistake;
/// notes carry informational reports (e.g. the verifier's SQO-A017
/// catalog-dependency sets) that indicate nothing wrong at all.
enum class Severity {
  kWarning = 0,
  kError = 1,
  kNote = 2,
};

std::string_view SeverityName(Severity severity);

/// One static-analysis finding with a stable machine-readable code
/// (SQO-Axxx; see analyzer.h for the full table). The same structure is
/// produced by the IC analyzer, the residue analyzer and the query linter,
/// and is exported through the obs JSON layer so lint reports and traces
/// share one format.
struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string code;     // stable, e.g. "SQO-A001"
  std::string subject;  // IC label, relation name, or query name
  std::string message;  // human-readable finding
  std::string fix_hint; // optional suggested fix; may be empty

  bool operator==(const Diagnostic& other) const {
    return severity == other.severity && code == other.code &&
           subject == other.subject && message == other.message &&
           fix_hint == other.fix_hint;
  }

  /// `error[SQO-A001] IC4: head variable 'Age' ... (hint: ...)`.
  std::string ToString() const;
};

/// The result of one analyzer run: an ordered list of findings (analysis
/// passes append in a deterministic order).
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;

  void Add(Severity severity, std::string_view code, std::string subject,
           std::string message, std::string fix_hint = "");

  /// Moves every finding of `other` onto the end of this report.
  void Append(AnalysisReport other);

  bool has_errors() const;
  size_t error_count() const;
  size_t warning_count() const;
  size_t note_count() const;
  bool empty() const { return diagnostics.empty(); }

  /// The first error finding, or nullptr when the report is error-free.
  const Diagnostic* FirstError() const;

  /// `"2 errors, 1 warning"` (`, 3 notes` appended only when present).
  std::string Summary() const;

  /// One line per diagnostic, in report order.
  std::string ToString() const;
};

/// The one rendering of a report every surface shares (shell `\check` and
/// `\verify`, sqo_lint, sqo_verify): as text, the per-diagnostic lines
/// followed by a `--` summary line; as JSON, DiagnosticsToJson verbatim.
std::string RenderReport(const AnalysisReport& report, bool as_json = false);

/// Serializes a report as a JSON document:
/// `{"diagnostics":[{"severity":...,"code":...,...}, ...]}`. Uses the
/// streaming writer of src/obs/json.h so lint reports and trace exports
/// share one escaping/format layer.
std::string DiagnosticsToJson(const AnalysisReport& report);

/// Parses a document produced by DiagnosticsToJson back into a report
/// (round-trip support for tooling that merges lint output with traces).
sqo::Result<AnalysisReport> DiagnosticsFromJson(std::string_view text);

}  // namespace sqo::analysis

#endif  // SQO_ANALYSIS_DIAGNOSTIC_H_
