#ifndef SQO_ANALYSIS_VERIFIER_H_
#define SQO_ANALYSIS_VERIFIER_H_

#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "datalog/clause.h"
#include "sqo/asr.h"
#include "sqo/derivation.h"
#include "translate/schema_translator.h"

namespace sqo::analysis {

/// The inputs an alternative's proof may draw from: the translated schema
/// (relation signatures and their functional dependencies), the full IC
/// catalog as compiled clauses (schema-generated + user + derived — the
/// CompiledSchema::all_ics order), and the registered ASR definitions
/// (their view clauses justify path folds in both directions). Non-owning;
/// `asrs` may be null when no ASRs are registered. Like sqo/residue.h,
/// only data-layout sqo headers are consumed here, so the analysis layer
/// stays independent of sqo_core.
struct VerifierCatalog {
  const translate::TranslatedSchema* schema = nullptr;
  const std::vector<datalog::Clause>* ics = nullptr;
  const std::vector<core::AsrDefinition>* asrs = nullptr;
};

/// One rewriting to certify: the final query and the derivation-step chain
/// the optimizer recorded for it. Non-owning views into the caller's
/// Rewriting / Alternative.
struct RewriteCandidate {
  const datalog::Query* query = nullptr;
  const std::vector<core::DerivationStep>* steps = nullptr;
};

struct VerifierOptions {
  /// Saturation bound for the chase: rounds of IC application, functional-
  /// dependency equality propagation and ASR expansion. Every single
  /// residue application is re-derivable in one round, so the default
  /// comfortably covers optimizer chains of depth ≤ max_depth.
  size_t max_chase_rounds = 4;

  /// Hard cap on chase-derived literals per proof state; reaching it stops
  /// saturation early (obligations may then go unproven, never unsound).
  size_t max_chase_literals = 256;

  /// Emit the SQO-A017 per-alternative catalog-dependency note.
  bool dependency_report = true;
};

/// One discharged (or failed) proof obligation of a derivation step.
struct ObligationOutcome {
  size_t step_index = 0;
  std::string description;  // e.g. "added salary > 40000 entailed by IC1"
  bool proven = false;
  bool elimination = false;  // true for removed-conjunct obligations (A016)
};

/// Verdict for one alternative. `sound` means every addition/merge/replay
/// obligation was discharged (no SQO-A015); `complete` additionally means
/// every elimination was re-derived (no SQO-A016). `dependencies` is the
/// sorted, deduplicated set of IC labels the proof used — the invalidation
/// key a plan cache must watch (SQO-A017).
struct AlternativeVerdict {
  size_t index = 0;
  bool sound = true;
  bool complete = true;
  bool replay_ok = true;
  std::vector<ObligationOutcome> obligations;
  std::vector<std::string> dependencies;
};

/// Result of verifying a full alternative set.
struct VerificationResult {
  std::vector<AlternativeVerdict> verdicts;
  AnalysisReport report;

  bool all_sound() const {
    for (const AlternativeVerdict& v : verdicts) {
      if (!v.sound) return false;
    }
    return true;
  }
};

/// Certifies one rewriting against the original query: replays the
/// recorded steps, emits the per-step obligations
/// ("pre-step query ∧ ICs ⊨ additions/merge", "post-step query ∧ ICs ⊨
/// removals") and discharges them with a bounded chase over the IC clauses
/// plus the solver's comparison closure. The final replayed query must
/// match the candidate's canonical fingerprint. See DESIGN.md ("Rewrite
/// soundness verifier") for the entailment semantics and its caveats.
AlternativeVerdict VerifyRewriting(const VerifierCatalog& catalog,
                                   const datalog::Query& original,
                                   const RewriteCandidate& candidate,
                                   size_t index,
                                   const VerifierOptions& options = {});

/// Renders a verdict as diagnostics: SQO-A015 errors for unjustified
/// steps/replay mismatches, SQO-A016 warnings for unproven eliminations,
/// and (when `dependency_report` is set) one SQO-A017 note listing the
/// proof's IC dependencies. `subject` names the query; the alternative
/// index is appended as `#<i>`.
void AppendVerdictDiagnostics(const AlternativeVerdict& verdict,
                              std::string_view subject,
                              const VerifierOptions& options,
                              AnalysisReport* report);

/// Convenience loop over a full alternative set (index 0 is the original).
VerificationResult VerifyRewritings(const VerifierCatalog& catalog,
                                    const datalog::Query& original,
                                    const std::vector<RewriteCandidate>& candidates,
                                    std::string_view subject,
                                    const VerifierOptions& options = {});

}  // namespace sqo::analysis

#endif  // SQO_ANALYSIS_VERIFIER_H_
