#include "analysis/diagnostic.h"

#include <algorithm>

#include "obs/json.h"

namespace sqo::analysis {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
    case Severity::kNote:
      return "note";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out(SeverityName(severity));
  out += "[" + code + "] " + subject + ": " + message;
  if (!fix_hint.empty()) out += " (hint: " + fix_hint + ")";
  return out;
}

void AnalysisReport::Add(Severity severity, std::string_view code,
                         std::string subject, std::string message,
                         std::string fix_hint) {
  Diagnostic d;
  d.severity = severity;
  d.code = std::string(code);
  d.subject = std::move(subject);
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  diagnostics.push_back(std::move(d));
}

void AnalysisReport::Append(AnalysisReport other) {
  diagnostics.insert(diagnostics.end(),
                     std::make_move_iterator(other.diagnostics.begin()),
                     std::make_move_iterator(other.diagnostics.end()));
}

bool AnalysisReport::has_errors() const { return error_count() > 0; }

size_t AnalysisReport::error_count() const {
  return static_cast<size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kError;
                    }));
}

size_t AnalysisReport::warning_count() const {
  return static_cast<size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kWarning;
                    }));
}

size_t AnalysisReport::note_count() const {
  return static_cast<size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kNote;
                    }));
}

const Diagnostic* AnalysisReport::FirstError() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return &d;
  }
  return nullptr;
}

std::string AnalysisReport::Summary() const {
  const size_t errors = error_count();
  const size_t warnings = warning_count();
  std::string out = std::to_string(errors) + (errors == 1 ? " error" : " errors");
  out += ", " + std::to_string(warnings) +
         (warnings == 1 ? " warning" : " warnings");
  // Notes are rare (dependency reports); keep legacy summaries byte-stable.
  if (const size_t notes = note_count(); notes > 0) {
    out += ", " + std::to_string(notes) + (notes == 1 ? " note" : " notes");
  }
  return out;
}

std::string AnalysisReport::ToString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString();
    out += "\n";
  }
  return out;
}

std::string RenderReport(const AnalysisReport& report, bool as_json) {
  if (as_json) return DiagnosticsToJson(report);
  std::string out = report.ToString();
  out += "-- " + report.Summary() + "\n";
  return out;
}

std::string DiagnosticsToJson(const AnalysisReport& report) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("diagnostics").BeginArray();
  for (const Diagnostic& d : report.diagnostics) {
    w.BeginObject();
    w.Key("severity").String(SeverityName(d.severity));
    w.Key("code").String(d.code);
    w.Key("subject").String(d.subject);
    w.Key("message").String(d.message);
    if (!d.fix_hint.empty()) w.Key("fix_hint").String(d.fix_hint);
    w.EndObject();
  }
  w.EndArray();
  w.Key("errors").UInt(report.error_count());
  w.Key("warnings").UInt(report.warning_count());
  w.Key("notes").UInt(report.note_count());
  w.EndObject();
  return w.TakeString();
}

sqo::Result<AnalysisReport> DiagnosticsFromJson(std::string_view text) {
  SQO_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::ParseJson(text));
  const obs::JsonValue* list = doc.Find("diagnostics");
  if (list == nullptr || !list->is_array()) {
    return sqo::InvalidArgumentError(
        "diagnostics document lacks a 'diagnostics' array");
  }
  AnalysisReport report;
  for (const obs::JsonValue& item : list->items) {
    const obs::JsonValue* severity = item.Find("severity");
    const obs::JsonValue* code = item.Find("code");
    const obs::JsonValue* subject = item.Find("subject");
    const obs::JsonValue* message = item.Find("message");
    if (severity == nullptr || !severity->is_string() || code == nullptr ||
        !code->is_string() || subject == nullptr || !subject->is_string() ||
        message == nullptr || !message->is_string()) {
      return sqo::InvalidArgumentError(
          "diagnostic entry missing severity/code/subject/message string");
    }
    Diagnostic d;
    if (severity->string_value == "error") {
      d.severity = Severity::kError;
    } else if (severity->string_value == "warning") {
      d.severity = Severity::kWarning;
    } else if (severity->string_value == "note") {
      d.severity = Severity::kNote;
    } else {
      return sqo::InvalidArgumentError("unknown diagnostic severity '" +
                                       severity->string_value + "'");
    }
    d.code = code->string_value;
    d.subject = subject->string_value;
    d.message = message->string_value;
    if (const obs::JsonValue* hint = item.Find("fix_hint");
        hint != nullptr && hint->is_string()) {
      d.fix_hint = hint->string_value;
    }
    report.diagnostics.push_back(std::move(d));
  }
  return report;
}

}  // namespace sqo::analysis
