#ifndef SQO_TRANSLATE_SCHEMA_TRANSLATOR_H_
#define SQO_TRANSLATE_SCHEMA_TRANSLATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/clause.h"
#include "datalog/signature.h"
#include "odl/schema.h"

namespace sqo::translate {

/// The product of Step 1 (paper §4.2): the DATALOG relational schema plus
/// the integrity constraints that encode the object semantics.
struct TranslatedSchema {
  /// The resolved ODL schema this was generated from.
  odl::Schema schema;

  /// Positional signatures for every generated relation.
  datalog::RelationCatalog catalog;

  /// Generated ICs, labeled by family:
  ///   "oid_rel:<r>"      — OID identification for relationship endpoints
  ///   "oid_struct:<c.a>" — OID identification for structure attributes
  ///   "oid_method:<m>"   — OID identification for method receivers/results
  ///   "subclass:<c2>"    — subclass hierarchy (c1 head, c2 body)
  ///   "inverse:<r1>"     — inverse relationship (two clauses per pair)
  ///   "fun:<r>"          — functionality of a to-one relationship
  ///   "fun_inv:<r>"      — inverse functionality (one-to-one case)
  ///   "key:<c.a>"        — key constraint (IC7 pattern)
  ///   "attr_fd:<c.a>"    — OID determines attribute value (IC8 pattern)
  std::vector<datalog::Clause> constraints;

  /// ODL class/struct name → relation name (lower-cased) and back.
  std::map<std::string, std::string> type_to_relation;
  std::map<std::string, std::string> relation_to_type;

  /// Relation name of a class/struct type; empty if unknown.
  std::string RelationFor(const std::string& type_name) const;
};

/// Translates a resolved ODL schema into its DATALOG representation
/// (Step 1 of Figure 2). Complexity is linear in the number of classes,
/// structures, relationships and methods (§4.1). Fails if lower-casing
/// produces duplicate relation names.
sqo::Result<TranslatedSchema> TranslateSchema(const odl::Schema& schema);

}  // namespace sqo::translate

#endif  // SQO_TRANSLATE_SCHEMA_TRANSLATOR_H_
