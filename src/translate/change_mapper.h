#ifndef SQO_TRANSLATE_CHANGE_MAPPER_H_
#define SQO_TRANSLATE_CHANGE_MAPPER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/clause.h"
#include "oql/ast.h"
#include "translate/query_translator.h"
#include "translate/schema_translator.h"

namespace sqo::translate {

/// The literal-level difference between the original DATALOG query and an
/// optimized equivalent ("the only changes that can be made in a DATALOG
/// query are the addition or removal of one or more literals", §4.3).
struct QueryDiff {
  std::vector<datalog::Literal> removed;
  std::vector<datalog::Literal> added;

  bool empty() const { return removed.empty() && added.empty(); }
};

/// Computes the multiset difference between two query bodies.
QueryDiff DiffQueries(const datalog::Query& original,
                      const datalog::Query& optimized);

/// Step 4 (ALGORITHM DATALOG_to_OQL): maps DATALOG query modifications back
/// onto the *original* OQL query, preserving extralogical features such as
/// constructors. The mapping rules:
///
///   evaluable atom  X θ Y / A θ k / A θ B  →  add/remove in `where`
///   c(X,...)                               →  add/remove `x in C` in `from`
///   ¬c(X,...)                              →  add/remove `x not in C`
///   r(X,Y)                                 →  add/remove `y in x.R` in `from`
///   ¬r(X,Y)                                →  add/remove `y not in x.R`
///
/// Attribute variables are rendered by locating them inside a class /
/// structure / method atom of the optimized query (as the paper's algorithm
/// prescribes); OID variables render through the translation map. Literals
/// whose class/relationship atoms never surfaced in the OQL text (they were
/// added implicitly by path flattening) require no surface edit when
/// removed. Access-support-relation atoms map to ranges over the ASR's
/// virtual relationship name (an OQL extension; see DESIGN.md).
class ChangeMapper {
 public:
  ChangeMapper(const TranslatedSchema* schema, const TranslationMap* map)
      : schema_(schema), map_(map) {}

  /// Applies the optimized query's changes to `original_oql`, returning the
  /// edited OQL query. `optimized` must share variable naming with the
  /// original DATALOG query (the optimizer guarantees this).
  sqo::Result<oql::SelectQuery> Apply(const oql::SelectQuery& original_oql,
                                      const datalog::Query& original_datalog,
                                      const datalog::Query& optimized) const;

 private:
  /// Renders a DATALOG term as an OQL expression, using `optimized` to
  /// locate attribute variables inside atoms.
  sqo::Result<oql::Expr> RenderTerm(const datalog::Term& term,
                                    const datalog::Query& optimized,
                                    std::map<std::string, std::string>* extra_idents) const;

  const TranslatedSchema* schema_;
  const TranslationMap* map_;
};

}  // namespace sqo::translate

#endif  // SQO_TRANSLATE_CHANGE_MAPPER_H_
