#include "translate/schema_translator.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/strings.h"
#include "datalog/unify.h"

namespace sqo::translate {

using datalog::Atom;
using datalog::Clause;
using datalog::CmpOp;
using datalog::Literal;
using datalog::RelationCatalog;
using datalog::RelationKind;
using datalog::RelationSignature;
using datalog::Term;

namespace {

/// Variable name for an attribute: first letter upper-cased, with an
/// optional numeric suffix to keep atoms of the same relation apart
/// ("name" → "Name", "Name_2").
std::string AttrVar(const std::string& attr, int copy = 0) {
  std::string v = attr;
  v[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(v[0])));
  if (copy > 0) v += "_" + std::to_string(copy + 1);
  return v;
}

/// Builds an atom `rel(vars...)` whose arguments are the attribute-derived
/// variables of `sig`, suffixed by `copy`.
Atom FullAtom(const RelationSignature& sig, int copy = 0) {
  std::vector<Term> args;
  args.reserve(sig.arity());
  for (const std::string& attr : sig.attributes) {
    args.push_back(Term::Var(AttrVar(attr, copy)));
  }
  return Atom::Pred(sig.name, std::move(args));
}

/// Builds an atom with fresh anonymous variables everywhere except the
/// pinned positions in `pinned` (position → term).
Atom SparseAtom(const RelationSignature& sig,
                const std::vector<std::pair<size_t, Term>>& pinned,
                datalog::FreshVarGen* gen) {
  std::vector<Term> args;
  args.reserve(sig.arity());
  for (size_t i = 0; i < sig.arity(); ++i) {
    const Term* pin = nullptr;
    for (const auto& [pos, term] : pinned) {
      if (pos == i) {
        pin = &term;
        break;
      }
    }
    args.push_back(pin != nullptr ? *pin : gen->NextVar());
  }
  return Atom::Pred(sig.name, std::move(args));
}

}  // namespace

std::string TranslatedSchema::RelationFor(const std::string& type_name) const {
  auto it = type_to_relation.find(type_name);
  return it == type_to_relation.end() ? "" : it->second;
}

sqo::Result<TranslatedSchema> TranslateSchema(const odl::Schema& schema) {
  TranslatedSchema out;
  out.schema = schema;
  datalog::FreshVarGen exists_gen("_E");

  auto register_type = [&](const std::string& type_name,
                           RelationSignature sig) -> sqo::Status {
    if (!out.relation_to_type.emplace(sig.name, type_name).second) {
      return sqo::SemanticError("relation name collision: '" + sig.name + "'");
    }
    out.type_to_relation[type_name] = sig.name;
    return out.catalog.Add(std::move(sig));
  };

  // Rule 2: one relation per structure. (Emitted before classes so class
  // translation can mention struct relations.)
  for (const odl::StructInfo& s : schema.structs()) {
    RelationSignature sig;
    sig.name = sqo::ToLower(s.name);
    sig.kind = RelationKind::kStructure;
    sig.display_name = s.name;
    sig.owner = s.name;
    sig.attributes.push_back("oid");
    for (const odl::ResolvedAttribute& f : s.fields) {
      sig.attributes.push_back(sqo::ToLower(f.name));
    }
    SQO_RETURN_IF_ERROR(register_type(s.name, std::move(sig)));
  }

  // Rule 1: one relation per class, attributes in inherited-prefix order.
  for (const odl::ClassInfo& c : schema.classes()) {
    RelationSignature sig;
    sig.name = sqo::ToLower(c.name);
    sig.kind = RelationKind::kClass;
    sig.display_name = c.name;
    sig.owner = c.name;
    sig.attributes.push_back("oid");
    for (const odl::ResolvedAttribute& a : c.all_attributes) {
      sig.attributes.push_back(sqo::ToLower(a.name));
    }
    SQO_RETURN_IF_ERROR(register_type(c.name, std::move(sig)));
  }

  // Rules 3 and 4: relationships and methods.
  for (const odl::ClassInfo& c : schema.classes()) {
    for (const odl::ResolvedRelationship& r : c.relationships) {
      RelationSignature sig;
      sig.name = sqo::ToLower(r.name);
      sig.kind = RelationKind::kRelationship;
      sig.display_name = r.name;
      sig.owner = c.name;
      sig.target = r.target;
      sig.attributes = {"src", "dst"};
      sig.functional_src_to_dst = !r.to_many;
      if (!r.inverse.empty()) {
        const odl::ResolvedRelationship* inv =
            schema.FindRelationship(r.target, r.inverse);
        sig.functional_dst_to_src = inv != nullptr && !inv->to_many;
      }
      if (out.catalog.Find(sig.name) != nullptr) {
        return sqo::SemanticError("relation name collision: relationship '" +
                                  r.name + "'");
      }
      SQO_RETURN_IF_ERROR(out.catalog.Add(std::move(sig)));
    }
    for (const odl::ResolvedMethod& m : c.methods) {
      RelationSignature sig;
      sig.name = sqo::ToLower(m.name);
      sig.kind = RelationKind::kMethod;
      sig.display_name = m.name;
      sig.owner = c.name;
      if (!m.return_struct.empty()) sig.target = m.return_struct;
      sig.attributes.push_back("oid");
      for (const odl::ParamDecl& p : m.params) {
        sig.attributes.push_back(sqo::ToLower(p.name));
      }
      sig.attributes.push_back("value");
      if (out.catalog.Find(sig.name) != nullptr) {
        return sqo::SemanticError("relation name collision: method '" + m.name +
                                  "'");
      }
      SQO_RETURN_IF_ERROR(out.catalog.Add(std::move(sig)));
    }
  }

  std::set<std::string> emitted;  // dedup (inverse pairs emit symmetrically)
  auto add_constraint = [&](Clause clause) {
    std::string key = clause.ToString();
    if (emitted.insert(key).second) {
      out.constraints.push_back(std::move(clause));
    }
  };

  // --- Integrity constraints (§4.2) ---
  for (const odl::ClassInfo& c : schema.classes()) {
    const RelationSignature* c_sig = out.catalog.Find(sqo::ToLower(c.name));

    // IC family 1a: relationship endpoints are members of their classes.
    for (const odl::ResolvedRelationship& r : c.relationships) {
      const std::string r_name = sqo::ToLower(r.name);
      const RelationSignature* src_sig = out.catalog.Find(sqo::ToLower(r.source));
      const RelationSignature* dst_sig = out.catalog.Find(sqo::ToLower(r.target));
      Atom r_atom = Atom::Pred(r_name, {Term::Var("Oid1"), Term::Var("Oid2")});
      {
        Clause cl;
        cl.label = "oid_rel:" + r_name + ":src";
        cl.head = Literal::Pos(
            SparseAtom(*src_sig, {{0, Term::Var("Oid1")}}, &exists_gen));
        cl.body = {Literal::Pos(r_atom)};
        add_constraint(std::move(cl));
      }
      {
        Clause cl;
        cl.label = "oid_rel:" + r_name + ":dst";
        cl.head = Literal::Pos(
            SparseAtom(*dst_sig, {{0, Term::Var("Oid2")}}, &exists_gen));
        cl.body = {Literal::Pos(r_atom)};
        add_constraint(std::move(cl));
      }

      // IC family 3: inverse relationships. Both classes declare the pair;
      // emit from the lexicographically smaller relation name only so each
      // pair yields exactly two clauses.
      if (!r.inverse.empty() && r_name <= sqo::ToLower(r.inverse)) {
        const std::string inv_name = sqo::ToLower(r.inverse);
        Clause fwd;
        fwd.label = "inverse:" + r_name;
        fwd.head = Literal::Pos(
            Atom::Pred(r_name, {Term::Var("Oid1"), Term::Var("Oid2")}));
        fwd.body = {Literal::Pos(
            Atom::Pred(inv_name, {Term::Var("Oid2"), Term::Var("Oid1")}))};
        add_constraint(std::move(fwd));
        Clause bwd;
        bwd.label = "inverse:" + inv_name;
        bwd.head = Literal::Pos(
            Atom::Pred(inv_name, {Term::Var("Oid2"), Term::Var("Oid1")}));
        bwd.body = {Literal::Pos(
            Atom::Pred(r_name, {Term::Var("Oid1"), Term::Var("Oid2")}))};
        add_constraint(std::move(bwd));
      }

      // IC family 4: functionality of to-one relationships; both directions
      // for the one-to-one case.
      if (!r.to_many) {
        Clause fun;
        fun.label = "fun:" + r_name;
        fun.head = Literal::Pos(
            Atom::Comparison(CmpOp::kEq, Term::Var("Oid2"), Term::Var("Oid3")));
        fun.body = {
            Literal::Pos(Atom::Pred(r_name, {Term::Var("Oid1"), Term::Var("Oid2")})),
            Literal::Pos(Atom::Pred(r_name, {Term::Var("Oid1"), Term::Var("Oid3")}))};
        add_constraint(std::move(fun));
      }
      if (r.one_to_one) {
        Clause fun_inv;
        fun_inv.label = "fun_inv:" + r_name;
        fun_inv.head = Literal::Pos(
            Atom::Comparison(CmpOp::kEq, Term::Var("Oid2"), Term::Var("Oid3")));
        fun_inv.body = {
            Literal::Pos(Atom::Pred(r_name, {Term::Var("Oid2"), Term::Var("Oid1")})),
            Literal::Pos(Atom::Pred(r_name, {Term::Var("Oid3"), Term::Var("Oid1")}))};
        add_constraint(std::move(fun_inv));
      }
    }

    // IC family 1b: structure attributes — the referenced structure exists.
    for (const odl::ResolvedAttribute& a : c.all_attributes) {
      if (!a.is_struct()) continue;
      auto pos = c_sig->AttributeIndex(sqo::ToLower(a.name));
      const RelationSignature* s_sig =
          out.catalog.Find(sqo::ToLower(a.struct_name));
      Clause cl;
      cl.label = "oid_struct:" + c_sig->name + "." + sqo::ToLower(a.name);
      cl.head = Literal::Pos(
          SparseAtom(*s_sig, {{0, Term::Var("Oid_s")}}, &exists_gen));
      cl.body = {Literal::Pos(
          SparseAtom(*c_sig, {{*pos, Term::Var("Oid_s")}}, &exists_gen))};
      add_constraint(std::move(cl));
    }

    // IC family 1c: method receivers are class members; struct results exist.
    for (const odl::ResolvedMethod& m : c.methods) {
      const std::string m_name = sqo::ToLower(m.name);
      const RelationSignature* m_sig = out.catalog.Find(m_name);
      Atom m_atom = FullAtom(*m_sig);
      {
        Clause cl;
        cl.label = "oid_method:" + m_name;
        cl.head = Literal::Pos(
            SparseAtom(*c_sig, {{0, Term::Var("Oid")}}, &exists_gen));
        cl.body = {Literal::Pos(m_atom)};
        add_constraint(std::move(cl));
      }
      if (!m.return_struct.empty()) {
        const RelationSignature* s_sig =
            out.catalog.Find(sqo::ToLower(m.return_struct));
        Clause cl;
        cl.label = "oid_method:" + m_name + ":result";
        cl.head = Literal::Pos(
            SparseAtom(*s_sig, {{0, Term::Var("Value")}}, &exists_gen));
        cl.body = {Literal::Pos(m_atom)};
        add_constraint(std::move(cl));
      }
    }

    // IC family 2: subclass hierarchy — the inherited attributes form a
    // positional prefix, so the super atom shares the sub atom's prefix.
    if (!c.super.empty()) {
      const RelationSignature* super_sig =
          out.catalog.Find(sqo::ToLower(c.super));
      std::vector<Term> sub_args;
      std::vector<Term> super_args;
      for (size_t i = 0; i < c_sig->arity(); ++i) {
        Term v = Term::Var(AttrVar(c_sig->attributes[i]));
        if (i < super_sig->arity()) super_args.push_back(v);
        sub_args.push_back(std::move(v));
      }
      Clause cl;
      cl.label = "subclass:" + c_sig->name;
      cl.head = Literal::Pos(Atom::Pred(super_sig->name, std::move(super_args)));
      cl.body = {Literal::Pos(Atom::Pred(c_sig->name, std::move(sub_args)))};
      add_constraint(std::move(cl));
    }

    // Key constraints (IC7 pattern), for the declaring class and every
    // subclass relation (keys are inherited): collect keys up the chain.
    {
      std::vector<std::string> effective_keys;
      const odl::ClassInfo* cur = &c;
      while (cur != nullptr) {
        for (const std::string& k : cur->keys) {
          if (std::find(effective_keys.begin(), effective_keys.end(), k) ==
              effective_keys.end()) {
            effective_keys.push_back(k);
          }
        }
        cur = cur->super.empty() ? nullptr : schema.FindClass(cur->super);
      }
      for (const std::string& key : effective_keys) {
        auto pos = c_sig->AttributeIndex(sqo::ToLower(key));
        if (!pos.has_value()) continue;
        Term shared_key = Term::Var(AttrVar(sqo::ToLower(key)));
        Clause cl;
        cl.label = "key:" + c_sig->name + "." + sqo::ToLower(key);
        cl.head = Literal::Pos(
            Atom::Comparison(CmpOp::kEq, Term::Var("Oid_a"), Term::Var("Oid_b")));
        cl.body = {
            Literal::Pos(SparseAtom(
                *c_sig, {{0, Term::Var("Oid_a")}, {*pos, shared_key}}, &exists_gen)),
            Literal::Pos(SparseAtom(
                *c_sig, {{0, Term::Var("Oid_b")}, {*pos, shared_key}}, &exists_gen))};
        add_constraint(std::move(cl));
      }
    }

    // Attribute functional dependencies (IC8 pattern): the OID determines
    // every attribute value.
    for (size_t i = 1; i < c_sig->arity(); ++i) {
      Clause cl;
      cl.label = "attr_fd:" + c_sig->name + "." + c_sig->attributes[i];
      Term shared_oid = Term::Var("Oid");
      Term a1 = Term::Var(AttrVar(c_sig->attributes[i], 0));
      Term a2 = Term::Var(AttrVar(c_sig->attributes[i], 1));
      cl.head = Literal::Pos(Atom::Comparison(CmpOp::kEq, a1, a2));
      cl.body = {
          Literal::Pos(SparseAtom(*c_sig, {{0, shared_oid}, {i, a1}}, &exists_gen)),
          Literal::Pos(SparseAtom(*c_sig, {{0, shared_oid}, {i, a2}}, &exists_gen))};
      add_constraint(std::move(cl));
    }
  }

  return out;
}

}  // namespace sqo::translate
