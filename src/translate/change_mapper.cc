#include "translate/change_mapper.h"

#include <algorithm>
#include <set>

#include "common/context.h"
#include "common/failpoint.h"
#include "common/strings.h"

namespace sqo::translate {

using datalog::Atom;
using datalog::Literal;
using datalog::RelationKind;
using datalog::RelationSignature;
using datalog::Term;

QueryDiff DiffQueries(const datalog::Query& original,
                      const datalog::Query& optimized) {
  QueryDiff diff;
  std::vector<bool> matched_opt(optimized.body.size(), false);
  for (const Literal& lit : original.body) {
    bool found = false;
    for (size_t j = 0; j < optimized.body.size(); ++j) {
      if (!matched_opt[j] && optimized.body[j] == lit) {
        matched_opt[j] = true;
        found = true;
        break;
      }
    }
    if (!found) diff.removed.push_back(lit);
  }
  for (size_t j = 0; j < optimized.body.size(); ++j) {
    if (!matched_opt[j]) diff.added.push_back(optimized.body[j]);
  }
  return diff;
}

namespace {

/// Finds the ODL-cased spelling of a lower-cased attribute for rendering.
std::string DisplayAttr(const TranslatedSchema& schema,
                        const RelationSignature& sig, size_t pos) {
  const std::string& lower = sig.attributes[pos];
  const odl::ClassInfo* cls = schema.schema.FindClass(sig.owner);
  if (cls != nullptr) {
    for (const odl::ResolvedAttribute& a : cls->all_attributes) {
      if (sqo::ToLower(a.name) == lower) return a.name;
    }
  }
  const odl::StructInfo* st = schema.schema.FindStruct(sig.owner);
  if (st != nullptr) {
    for (const odl::ResolvedAttribute& f : st->fields) {
      if (sqo::ToLower(f.name) == lower) return f.name;
    }
  }
  return lower;
}

/// Allocates a fresh OQL identifier not colliding with existing ones.
std::string FreshIdent(const TranslationMap& map,
                       const std::map<std::string, std::string>& extra) {
  std::set<std::string> taken;
  for (const auto& [ident, var] : map.ident_to_var) taken.insert(ident);
  for (const auto& [var, ident] : extra) taken.insert(ident);
  for (int i = 1;; ++i) {
    std::string cand = "w" + std::to_string(i);
    if (taken.count(cand) == 0) return cand;
  }
}

}  // namespace

sqo::Result<oql::Expr> ChangeMapper::RenderTerm(
    const Term& term, const datalog::Query& optimized,
    std::map<std::string, std::string>* extra_idents) const {
  if (term.is_constant()) return oql::Expr::Literal(term.constant());
  const std::string& var = term.var_name();
  auto it = map_->var_to_ident.find(var);
  if (it != map_->var_to_ident.end()) return oql::Expr::Ident(it->second);
  auto extra_it = extra_idents->find(var);
  if (extra_it != extra_idents->end()) return oql::Expr::Ident(extra_it->second);

  // Locate the variable inside a class / structure / method atom of the
  // query, as ALGORITHM DATALOG_to_OQL prescribes.
  for (const Literal& lit : optimized.body) {
    if (!lit.positive || !lit.atom.is_predicate()) continue;
    const RelationSignature* sig = schema_->catalog.Find(lit.atom.predicate());
    if (sig == nullptr) continue;
    for (size_t pos = 1; pos < lit.atom.arity(); ++pos) {
      const Term& arg = lit.atom.args()[pos];
      if (!arg.is_variable() || arg.var_name() != var) continue;
      // Owner identifier from the receiver / OID position.
      const Term& owner = lit.atom.args()[0];
      if (!owner.is_variable()) continue;
      std::string owner_ident;
      auto oit = map_->var_to_ident.find(owner.var_name());
      if (oit != map_->var_to_ident.end()) {
        owner_ident = oit->second;
      } else {
        auto eit = extra_idents->find(owner.var_name());
        if (eit == extra_idents->end()) continue;
        owner_ident = eit->second;
      }
      if (sig->kind == RelationKind::kClass ||
          sig->kind == RelationKind::kStructure) {
        oql::PathStep step;
        step.name = DisplayAttr(*schema_, *sig, pos);
        return oql::Expr::Path(owner_ident, {std::move(step)});
      }
      if (sig->kind == RelationKind::kMethod && pos == sig->arity() - 1) {
        // Render the method-call expression with its argument terms.
        oql::PathStep step;
        step.name = sig->display_name.empty() ? sig->name : sig->display_name;
        std::vector<oql::Expr> args;
        for (size_t ai = 1; ai + 1 < lit.atom.arity(); ++ai) {
          SQO_ASSIGN_OR_RETURN(
              oql::Expr arg,
              RenderTerm(lit.atom.args()[ai], optimized, extra_idents));
          args.push_back(std::move(arg));
        }
        step.call_args = std::move(args);
        return oql::Expr::Path(owner_ident, {std::move(step)});
      }
    }
  }
  return sqo::InternalError("cannot render DATALOG variable '" + var +
                            "' as an OQL expression");
}

sqo::Result<oql::SelectQuery> ChangeMapper::Apply(
    const oql::SelectQuery& original_oql, const datalog::Query& original_datalog,
    const datalog::Query& optimized) const {
  SQO_FAILPOINT("change_map.step4");
  SQO_RETURN_IF_ERROR(CheckGovernance("change_map.step4"));
  oql::SelectQuery out = original_oql;
  QueryDiff diff = DiffQueries(original_datalog, optimized);
  std::map<std::string, std::string> extra_idents;  // var -> new identifier

  // ---- Removals: resolve through provenance. ----
  std::vector<bool> consumed(original_datalog.body.size(), false);
  std::set<int> from_removals;
  std::set<int> where_removals;
  for (const Literal& lit : diff.removed) {
    int body_index = -1;
    for (size_t i = 0; i < original_datalog.body.size(); ++i) {
      if (!consumed[i] && original_datalog.body[i] == lit) {
        consumed[i] = true;
        body_index = static_cast<int>(i);
        break;
      }
    }
    if (body_index < 0) {
      return sqo::InternalError("removed literal not found in original query: " +
                                lit.ToString());
    }
    auto fit = map_->body_to_from.find(body_index);
    if (fit != map_->body_to_from.end()) {
      from_removals.insert(fit->second);
      continue;
    }
    auto wit = map_->body_to_where.find(body_index);
    if (wit != map_->body_to_where.end()) {
      where_removals.insert(wit->second);
      continue;
    }
    // Implicit literal (lazy class atom, flattening step, method atom):
    // nothing to edit on the OQL surface.
  }

  // ---- Additions. Class atoms first (they may introduce identifiers),
  // then relationships/ASRs, then evaluable atoms. ----
  auto rank = [&](const Literal& lit) {
    if (lit.atom.is_comparison()) return 2;
    const RelationSignature* sig = schema_->catalog.Find(lit.atom.predicate());
    if (sig != nullptr && (sig->kind == RelationKind::kClass ||
                           sig->kind == RelationKind::kStructure)) {
      return 0;
    }
    return 1;
  };
  std::stable_sort(diff.added.begin(), diff.added.end(),
                   [&](const Literal& a, const Literal& b) {
                     return rank(a) < rank(b);
                   });

  std::vector<oql::FromEntry> new_from;
  std::vector<oql::Predicate> new_where;

  for (const Literal& lit : diff.added) {
    if (lit.atom.is_comparison()) {
      SQO_ASSIGN_OR_RETURN(oql::Expr lhs,
                           RenderTerm(lit.atom.lhs(), optimized, &extra_idents));
      SQO_ASSIGN_OR_RETURN(oql::Expr rhs,
                           RenderTerm(lit.atom.rhs(), optimized, &extra_idents));
      new_where.push_back(
          oql::Predicate::Comparison(std::move(lhs), lit.atom.op(), std::move(rhs)));
      continue;
    }
    const RelationSignature* sig = schema_->catalog.Find(lit.atom.predicate());
    if (sig == nullptr) {
      return sqo::InternalError("added literal over unknown relation: " +
                                lit.ToString());
    }
    auto ident_of = [&](const Term& t) -> std::string {
      if (!t.is_variable()) return "";
      auto vit = map_->var_to_ident.find(t.var_name());
      if (vit != map_->var_to_ident.end()) return vit->second;
      auto eit = extra_idents.find(t.var_name());
      if (eit != extra_idents.end()) return eit->second;
      return "";
    };

    switch (sig->kind) {
      case RelationKind::kClass:
      case RelationKind::kStructure: {
        const Term& oid = lit.atom.args()[0];
        if (!oid.is_variable()) {
          return sqo::UnsupportedError("cannot map ground class atom: " +
                                       lit.ToString());
        }
        std::string ident = ident_of(oid);
        const std::string& type_name =
            sig->display_name.empty() ? sig->name : sig->display_name;
        if (ident.empty()) {
          if (!lit.positive) {
            return sqo::UnsupportedError(
                "negated class atom over an unbound variable: " + lit.ToString());
          }
          ident = FreshIdent(*map_, extra_idents);
          extra_idents[oid.var_name()] = ident;
        }
        new_from.push_back(oql::FromEntry::Range(
            ident, oql::Expr::Ident(type_name), lit.positive));
        break;
      }
      case RelationKind::kRelationship:
      case RelationKind::kAsr: {
        const Term& src = lit.atom.args()[0];
        const Term& dst = lit.atom.args()[1];
        std::string src_ident = src.is_variable() ? ident_of(src) : "";
        if (src_ident.empty()) {
          return sqo::UnsupportedError(
              "relationship addition needs a bound source: " + lit.ToString());
        }
        oql::PathStep step;
        step.name = sig->display_name.empty() ? sig->name : sig->display_name;
        oql::Expr domain = oql::Expr::Path(src_ident, {std::move(step)});
        std::string dst_ident = dst.is_variable() ? ident_of(dst) : "";
        if (dst_ident.empty() && dst.is_variable()) {
          // Fresh target: declare a new range (paper: "Add Y in X.R").
          dst_ident = FreshIdent(*map_, extra_idents);
          extra_idents[dst.var_name()] = dst_ident;
          new_from.push_back(oql::FromEntry::Range(dst_ident, std::move(domain),
                                                   lit.positive));
        } else {
          // Already-bound target: express membership in the where clause.
          SQO_ASSIGN_OR_RETURN(oql::Expr elem,
                               RenderTerm(dst, optimized, &extra_idents));
          new_where.push_back(oql::Predicate::Membership(
              std::move(elem), std::move(domain), lit.positive));
        }
        break;
      }
      case RelationKind::kMethod:
        return sqo::UnsupportedError("cannot map bare method atom addition: " +
                                     lit.ToString());
    }
  }

  // Apply removals (descending index so positions stay valid), then append
  // additions.
  for (auto it = from_removals.rbegin(); it != from_removals.rend(); ++it) {
    if (*it >= 0 && *it < static_cast<int>(out.from.size())) {
      out.from.erase(out.from.begin() + *it);
    }
  }
  for (auto it = where_removals.rbegin(); it != where_removals.rend(); ++it) {
    if (*it >= 0 && *it < static_cast<int>(out.where.size())) {
      out.where.erase(out.where.begin() + *it);
    }
  }
  for (oql::FromEntry& f : new_from) out.from.push_back(std::move(f));
  for (oql::Predicate& p : new_where) out.where.push_back(std::move(p));
  return out;
}

}  // namespace sqo::translate
