#include "translate/query_translator.h"

#include <cctype>

#include "common/context.h"
#include "common/failpoint.h"
#include "common/strings.h"

namespace sqo::translate {

using datalog::Atom;
using datalog::CmpOp;
using datalog::Literal;
using datalog::RelationKind;
using datalog::RelationSignature;
using datalog::Term;

namespace {

/// "name" → "Name"; already-capitalized input is preserved.
std::string Capitalize(const std::string& s) {
  std::string out = s;
  if (!out.empty()) {
    out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  }
  return out;
}

bool IsPlaceholder(const Term& t) {
  return t.is_variable() && sqo::StartsWith(t.var_name(), "_Q");
}

}  // namespace

sqo::Status QueryTranslator::DefineIdent(const std::string& ident,
                                         const std::string& type_name,
                                         bool synthetic) {
  if (idents_.count(ident) > 0) {
    return sqo::SemanticError("range variable '" + ident + "' defined twice");
  }
  IdentInfo info;
  info.type_name = type_name;
  info.oid_var = AllocVar(ident);
  var_names_[info.oid_var] = ident;
  if (synthetic) synthetic_.insert(ident);
  idents_.emplace(ident, std::move(info));
  return sqo::Status::Ok();
}

std::string QueryTranslator::AllocVar(const std::string& base) {
  std::string name = Capitalize(base);
  if (used_vars_.count(name) == 0) {
    used_vars_.insert(name);
    return name;
  }
  for (int i = 2;; ++i) {
    std::string cand = name + std::to_string(i);
    if (used_vars_.count(cand) == 0) {
      used_vars_.insert(cand);
      return cand;
    }
  }
}

sqo::Status QueryTranslator::EnsureTypeAtom(const std::string& ident) {
  IdentInfo& info = idents_.at(ident);
  if (info.type_atom_added) return sqo::Status::Ok();
  const std::string rel = schema_->RelationFor(info.type_name);
  SQO_ASSIGN_OR_RETURN(const RelationSignature* sig, schema_->catalog.Get(rel));
  std::vector<Term> args;
  args.reserve(sig->arity());
  args.push_back(Term::Var(info.oid_var));
  for (size_t i = 1; i < sig->arity(); ++i) {
    args.push_back(Term::Var("_Q" + std::to_string(++anon_counter_)));
  }
  info.type_atom_added = true;
  info.type_atom_index = static_cast<int>(body_.size());
  body_.push_back(Literal::Pos(Atom::Pred(rel, std::move(args))));
  return sqo::Status::Ok();
}

sqo::Result<Term> QueryTranslator::AttrTerm(const std::string& ident,
                                            const std::string& attr) {
  SQO_RETURN_IF_ERROR(EnsureTypeAtom(ident));
  IdentInfo& info = idents_.at(ident);
  if (sqo::ToLower(attr) == "oid") return Term::Var(info.oid_var);
  const std::string rel = schema_->RelationFor(info.type_name);
  const RelationSignature* sig = schema_->catalog.Find(rel);
  auto pos = sig->AttributeIndex(sqo::ToLower(attr));
  if (!pos.has_value()) {
    return sqo::SemanticError("type '" + info.type_name + "' has no attribute '" +
                              attr + "'");
  }
  Atom& atom = body_[info.type_atom_index].atom;
  Term current = atom.args()[*pos];
  if (IsPlaceholder(current)) {
    Term named = Term::Var(AllocVar(attr));
    atom.mutable_args()[*pos] = named;
    return named;
  }
  return current;
}

sqo::Result<std::string> QueryTranslator::WalkToIdent(
    const std::string& base, const std::vector<oql::PathStep>& steps,
    size_t n_steps) {
  if (idents_.count(base) == 0) {
    return sqo::SemanticError("unknown range variable '" + base + "'");
  }
  std::string cur = base;
  for (size_t i = 0; i < n_steps; ++i) {
    const oql::PathStep& step = steps[i];
    const std::string& cur_type = idents_.at(cur).type_name;

    if (step.is_call()) {
      const odl::ResolvedMethod* method =
          schema_->schema.FindMethod(cur_type, step.name);
      if (method == nullptr) {
        return sqo::SemanticError("type '" + cur_type + "' has no method '" +
                                  step.name + "'");
      }
      if (method->return_struct.empty()) {
        return sqo::SemanticError(
            "cannot traverse into the base-typed result of method '" +
            step.name + "'");
      }
      std::vector<Term> args;
      args.push_back(Term::Var(idents_.at(cur).oid_var));
      if (step.call_args->size() != method->params.size()) {
        return sqo::SemanticError("method '" + step.name + "' expects " +
                                  std::to_string(method->params.size()) +
                                  " arguments");
      }
      for (const oql::Expr& a : *step.call_args) {
        SQO_ASSIGN_OR_RETURN(Term t, TranslateExpr(a));
        args.push_back(std::move(t));
      }
      std::string synth = "v" + std::to_string(++synth_counter_);
      while (idents_.count(synth) > 0) {
        synth = "v" + std::to_string(++synth_counter_);
      }
      SQO_RETURN_IF_ERROR(DefineIdent(synth, method->return_struct, true));
      args.push_back(Term::Var(idents_.at(synth).oid_var));
      body_.push_back(
          Literal::Pos(Atom::Pred(sqo::ToLower(method->name), std::move(args))));
      cur = synth;
      continue;
    }

    const std::string memo_key = cur + "." + sqo::ToLower(step.name);
    auto memo_it = step_memo_.find(memo_key);
    if (memo_it != step_memo_.end()) {
      cur = memo_it->second;
      continue;
    }

    const odl::ResolvedRelationship* rel =
        schema_->schema.FindRelationship(cur_type, step.name);
    if (rel != nullptr) {
      if (rel->to_many) {
        return sqo::SemanticError(
            "path step '" + step.name +
            "' traverses a to-many relationship; range over it in the from "
            "clause instead");
      }
      std::string synth = "v" + std::to_string(++synth_counter_);
      while (idents_.count(synth) > 0) {
        synth = "v" + std::to_string(++synth_counter_);
      }
      SQO_RETURN_IF_ERROR(DefineIdent(synth, rel->target, true));
      body_.push_back(Literal::Pos(
          Atom::Pred(sqo::ToLower(rel->name),
                     {Term::Var(idents_.at(cur).oid_var),
                      Term::Var(idents_.at(synth).oid_var)})));
      step_memo_[memo_key] = synth;
      cur = synth;
      continue;
    }

    // Structure attribute (on a class or on a struct).
    const odl::ResolvedAttribute* attr = nullptr;
    if (schema_->schema.FindClass(cur_type) != nullptr) {
      attr = schema_->schema.FindAttribute(cur_type, step.name);
    } else {
      attr = schema_->schema.FindStructField(cur_type, step.name);
    }
    if (attr == nullptr) {
      return sqo::SemanticError("type '" + cur_type + "' has no property '" +
                                step.name + "'");
    }
    if (!attr->is_struct()) {
      return sqo::SemanticError("cannot traverse into base-typed attribute '" +
                                step.name + "'");
    }
    SQO_ASSIGN_OR_RETURN(Term oid_term, AttrTerm(cur, step.name));
    // Register a synthetic identifier whose OID variable is the attribute's
    // term in the type atom.
    std::string synth = "v" + std::to_string(++synth_counter_);
    while (idents_.count(synth) > 0) {
      synth = "v" + std::to_string(++synth_counter_);
    }
    IdentInfo info;
    info.type_name = attr->struct_name;
    info.oid_var = oid_term.var_name();
    var_names_[info.oid_var] = synth;
    synthetic_.insert(synth);
    idents_.emplace(synth, std::move(info));
    step_memo_[memo_key] = synth;
    cur = synth;
  }
  return cur;
}

sqo::Result<Term> QueryTranslator::TranslatePath(const oql::Expr& path) {
  if (path.steps.empty()) {
    auto it = idents_.find(path.base);
    if (it == idents_.end()) {
      return sqo::SemanticError("unknown range variable '" + path.base + "'");
    }
    return Term::Var(it->second.oid_var);
  }
  SQO_ASSIGN_OR_RETURN(
      std::string owner, WalkToIdent(path.base, path.steps, path.steps.size() - 1));
  const oql::PathStep& last = path.steps.back();
  const std::string& owner_type = idents_.at(owner).type_name;

  if (last.is_call()) {
    const odl::ResolvedMethod* method =
        schema_->schema.FindMethod(owner_type, last.name);
    if (method == nullptr) {
      return sqo::SemanticError("type '" + owner_type + "' has no method '" +
                                last.name + "'");
    }
    if (last.call_args->size() != method->params.size()) {
      return sqo::SemanticError("method '" + last.name + "' expects " +
                                std::to_string(method->params.size()) +
                                " arguments");
    }
    std::vector<Term> args;
    args.push_back(Term::Var(idents_.at(owner).oid_var));
    for (const oql::Expr& a : *last.call_args) {
      SQO_ASSIGN_OR_RETURN(Term t, TranslateExpr(a));
      args.push_back(std::move(t));
    }
    Term result = Term::Var(AllocVar("V"));
    args.push_back(result);
    body_.push_back(
        Literal::Pos(Atom::Pred(sqo::ToLower(method->name), std::move(args))));
    return result;
  }

  // Relationship in value position: allowed if to-one (denotes the target
  // object's OID).
  const odl::ResolvedRelationship* rel =
      schema_->schema.FindRelationship(owner_type, last.name);
  if (rel != nullptr) {
    SQO_ASSIGN_OR_RETURN(std::string target,
                         WalkToIdent(owner, {last}, 1));
    return Term::Var(idents_.at(target).oid_var);
  }

  // Attribute (simple or struct-valued; a struct-valued attribute denotes
  // the structure's OID).
  return AttrTerm(owner, last.name);
}

sqo::Result<Term> QueryTranslator::TranslateExpr(const oql::Expr& expr) {
  switch (expr.kind) {
    case oql::Expr::Kind::kLiteral:
      return Term::Const(expr.literal);
    case oql::Expr::Kind::kPath:
      return TranslatePath(expr);
    default:
      return sqo::UnsupportedError(
          "constructors are only allowed in the select clause (§4.3)");
  }
}

sqo::Status QueryTranslator::TranslateFromEntry(const oql::FromEntry& entry) {
  const oql::Expr& domain = entry.domain.front();
  if (domain.kind != oql::Expr::Kind::kPath) {
    return sqo::SemanticError("from-clause domain must be an extent or a path");
  }

  if (!entry.positive) {
    // `x not in C`: constrains an existing variable (SQO output syntax).
    auto it = idents_.find(entry.var);
    if (it == idents_.end()) {
      return sqo::SemanticError("'" + entry.var +
                                " not in ...' requires an already-bound variable");
    }
    if (!domain.steps.empty()) {
      return sqo::UnsupportedError("'not in' ranges over class extents only");
    }
    const odl::ClassInfo* cls = schema_->schema.FindClass(domain.base);
    if (cls == nullptr) {
      return sqo::SemanticError("unknown class '" + domain.base + "'");
    }
    const std::string rel = schema_->RelationFor(cls->name);
    const RelationSignature* sig = schema_->catalog.Find(rel);
    std::vector<Term> args;
    args.push_back(Term::Var(it->second.oid_var));
    for (size_t i = 1; i < sig->arity(); ++i) {
      args.push_back(Term::Var("_Q" + std::to_string(++anon_counter_)));
    }
    body_.push_back(Literal::Neg(Atom::Pred(rel, std::move(args))));
    if (current_from_ >= 0) {
      body_to_from_[static_cast<int>(body_.size()) - 1] = current_from_;
    }
    return sqo::Status::Ok();
  }

  if (domain.steps.empty()) {
    // Range over a class name or an extent name.
    const odl::ClassInfo* cls = schema_->schema.FindClass(domain.base);
    if (cls == nullptr) {
      for (const odl::ClassInfo& cand : schema_->schema.classes()) {
        if (cand.extent.has_value() && *cand.extent == domain.base) {
          cls = &cand;
          break;
        }
      }
    }
    if (cls == nullptr) {
      return sqo::SemanticError("unknown extent or class '" + domain.base + "'");
    }
    SQO_RETURN_IF_ERROR(DefineIdent(entry.var, cls->name, false));
    SQO_RETURN_IF_ERROR(EnsureTypeAtom(entry.var));  // eager (Example 2)
    if (current_from_ >= 0) {
      body_to_from_[idents_.at(entry.var).type_atom_index] = current_from_;
    }
    return sqo::Status::Ok();
  }

  SQO_ASSIGN_OR_RETURN(
      std::string owner,
      WalkToIdent(domain.base, domain.steps, domain.steps.size() - 1));
  const oql::PathStep& last = domain.steps.back();
  const std::string& owner_type = idents_.at(owner).type_name;

  if (last.is_call()) {
    return sqo::UnsupportedError(
        "ranging over a method result is not supported in the from clause");
  }

  const odl::ResolvedRelationship* rel =
      schema_->schema.FindRelationship(owner_type, last.name);
  if (rel != nullptr) {
    // `y in x.Takes`: lazy target class atom, matching Example 2.
    SQO_RETURN_IF_ERROR(DefineIdent(entry.var, rel->target, false));
    body_.push_back(Literal::Pos(
        Atom::Pred(sqo::ToLower(rel->name),
                   {Term::Var(idents_.at(owner).oid_var),
                    Term::Var(idents_.at(entry.var).oid_var)})));
    if (current_from_ >= 0) {
      body_to_from_[static_cast<int>(body_.size()) - 1] = current_from_;
    }
    step_memo_[owner + "." + sqo::ToLower(last.name)] = entry.var;
    return sqo::Status::Ok();
  }

  const odl::ResolvedAttribute* attr = nullptr;
  if (schema_->schema.FindClass(owner_type) != nullptr) {
    attr = schema_->schema.FindAttribute(owner_type, last.name);
  } else {
    attr = schema_->schema.FindStructField(owner_type, last.name);
  }
  if (attr == nullptr || !attr->is_struct()) {
    return sqo::SemanticError("from-clause range '" + entry.var + " in " +
                              domain.ToString() +
                              "' must end at a relationship or a structure "
                              "attribute");
  }
  // `w in z.Address`: bind the struct's OID variable to the range variable
  // and add the structure atom eagerly (Example 2 adds address(W, ...)).
  SQO_RETURN_IF_ERROR(EnsureTypeAtom(owner));
  IdentInfo& owner_info = idents_.at(owner);
  const std::string owner_rel = schema_->RelationFor(owner_info.type_name);
  const RelationSignature* owner_sig = schema_->catalog.Find(owner_rel);
  auto pos = owner_sig->AttributeIndex(sqo::ToLower(last.name));
  Atom& owner_atom = body_[owner_info.type_atom_index].atom;
  Term slot = owner_atom.args()[*pos];

  IdentInfo info;
  info.type_name = attr->struct_name;
  if (IsPlaceholder(slot)) {
    info.oid_var = AllocVar(entry.var);
    owner_atom.mutable_args()[*pos] = Term::Var(info.oid_var);
  } else {
    info.oid_var = slot.var_name();
  }
  var_names_[info.oid_var] = entry.var;
  idents_.emplace(entry.var, std::move(info));
  step_memo_[owner + "." + sqo::ToLower(last.name)] = entry.var;
  SQO_RETURN_IF_ERROR(EnsureTypeAtom(entry.var));
  if (current_from_ >= 0) {
      body_to_from_[idents_.at(entry.var).type_atom_index] = current_from_;
    }
  return sqo::Status::Ok();
}

sqo::Status QueryTranslator::TranslateWherePredicate(const oql::Predicate& pred) {
  if (pred.kind == oql::Predicate::Kind::kExists) {
    // Conjunctive bodies are implicitly existential: declare the quantified
    // variable as an ordinary (unprojected) range and inline the inner
    // conjunction. Suppress provenance — the quantifier has no single
    // surface clause a literal-level removal could map back to.
    const int saved_from = current_from_;
    const int saved_where = current_where_;
    current_from_ = -1;
    current_where_ = -1;
    sqo::Status status = TranslateFromEntry(
        oql::FromEntry::Range(pred.var, pred.collection.front()));
    for (size_t i = 0; i < pred.inner.size() && status.ok(); ++i) {
      status = TranslateWherePredicate(pred.inner[i]);
    }
    current_from_ = saved_from;
    current_where_ = saved_where;
    return status;
  }
  if (pred.kind == oql::Predicate::Kind::kComparison) {
    SQO_ASSIGN_OR_RETURN(Term lhs, TranslateExpr(pred.lhs.front()));
    SQO_ASSIGN_OR_RETURN(Term rhs, TranslateExpr(pred.rhs.front()));
    body_.push_back(Literal::Pos(Atom::Comparison(pred.op, lhs, rhs)));
    if (current_where_ >= 0) {
      body_to_where_[static_cast<int>(body_.size()) - 1] = current_where_;
    }
    return sqo::Status::Ok();
  }
  // Membership: element must be a bound range variable.
  const oql::Expr& elem = pred.element.front();
  if (elem.kind != oql::Expr::Kind::kPath || !elem.steps.empty()) {
    return sqo::UnsupportedError(
        "membership predicates require a range variable element");
  }
  auto it = idents_.find(elem.base);
  if (it == idents_.end()) {
    return sqo::SemanticError("unknown range variable '" + elem.base + "'");
  }
  const oql::Expr& coll = pred.collection.front();
  if (coll.kind != oql::Expr::Kind::kPath) {
    return sqo::SemanticError("membership collection must be a class or path");
  }
  if (coll.steps.empty()) {
    const odl::ClassInfo* cls = schema_->schema.FindClass(coll.base);
    if (cls == nullptr) {
      return sqo::SemanticError("unknown class '" + coll.base + "'");
    }
    const std::string rel = schema_->RelationFor(cls->name);
    const RelationSignature* sig = schema_->catalog.Find(rel);
    std::vector<Term> args;
    args.push_back(Term::Var(it->second.oid_var));
    for (size_t i = 1; i < sig->arity(); ++i) {
      args.push_back(Term::Var("_Q" + std::to_string(++anon_counter_)));
    }
    body_.push_back(
        Literal(pred.positive, Atom::Pred(rel, std::move(args))));
    if (current_where_ >= 0) {
      body_to_where_[static_cast<int>(body_.size()) - 1] = current_where_;
    }
    return sqo::Status::Ok();
  }
  // `y [not] in x.R`
  SQO_ASSIGN_OR_RETURN(
      std::string owner,
      WalkToIdent(coll.base, coll.steps, coll.steps.size() - 1));
  const oql::PathStep& last = coll.steps.back();
  const odl::ResolvedRelationship* rel = schema_->schema.FindRelationship(
      idents_.at(owner).type_name, last.name);
  if (rel == nullptr) {
    return sqo::SemanticError("membership collection '" + coll.ToString() +
                              "' must end at a relationship");
  }
  body_.push_back(Literal(
      pred.positive,
      Atom::Pred(sqo::ToLower(rel->name), {Term::Var(idents_.at(owner).oid_var),
                                           Term::Var(it->second.oid_var)})));
  if (current_where_ >= 0) {
      body_to_where_[static_cast<int>(body_.size()) - 1] = current_where_;
    }
  return sqo::Status::Ok();
}

sqo::Result<TranslatedQuery> QueryTranslator::Translate(
    const oql::SelectQuery& oql_query) {
  body_.clear();
  idents_.clear();
  var_names_.clear();
  used_vars_.clear();
  synthetic_.clear();
  step_memo_.clear();
  body_to_from_.clear();
  body_to_where_.clear();

  for (size_t i = 0; i < oql_query.from.size(); ++i) {
    current_from_ = static_cast<int>(i);
    SQO_RETURN_IF_ERROR(TranslateFromEntry(oql_query.from[i]));
  }
  current_from_ = -1;

  // Select clause: flatten constructors to their leaf expressions (the
  // constructors themselves are retained only in the OQL AST, §4.3).
  std::vector<Term> head_args;
  // Recursive lambda via explicit stack of work items.
  std::vector<const oql::Expr*> work;
  for (auto it = oql_query.select_list.rbegin(); it != oql_query.select_list.rend();
       ++it) {
    work.push_back(&*it);
  }
  while (!work.empty()) {
    const oql::Expr* e = work.back();
    work.pop_back();
    switch (e->kind) {
      case oql::Expr::Kind::kLiteral:
      case oql::Expr::Kind::kPath: {
        SQO_ASSIGN_OR_RETURN(Term t, TranslateExpr(*e));
        head_args.push_back(std::move(t));
        break;
      }
      case oql::Expr::Kind::kStruct:
        for (auto it = e->fields.rbegin(); it != e->fields.rend(); ++it) {
          work.push_back(&it->value.front());
        }
        break;
      case oql::Expr::Kind::kCollection:
        for (auto it = e->elements.rbegin(); it != e->elements.rend(); ++it) {
          work.push_back(&*it);
        }
        break;
    }
  }

  for (size_t i = 0; i < oql_query.where.size(); ++i) {
    current_where_ = static_cast<int>(i);
    SQO_RETURN_IF_ERROR(TranslateWherePredicate(oql_query.where[i]));
  }
  current_where_ = -1;

  TranslatedQuery out;
  out.query.name = "q";
  out.query.head_args = std::move(head_args);
  out.query.body = body_;
  for (const auto& [ident, info] : idents_) {
    out.map.var_to_ident[info.oid_var] = ident;
    out.map.ident_to_var[ident] = info.oid_var;
    out.map.ident_type[ident] = info.type_name;
  }
  out.map.synthetic_idents = synthetic_;
  out.map.body_to_from = body_to_from_;
  out.map.body_to_where = body_to_where_;
  return out;
}

sqo::Result<TranslatedQuery> TranslateQuery(const TranslatedSchema& schema,
                                            const oql::SelectQuery& oql_query) {
  SQO_FAILPOINT("translate.query");
  SQO_RETURN_IF_ERROR(CheckGovernance("translate.query"));
  QueryTranslator translator(&schema);
  return translator.Translate(oql_query);
}

}  // namespace sqo::translate
