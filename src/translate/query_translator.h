#ifndef SQO_TRANSLATE_QUERY_TRANSLATOR_H_
#define SQO_TRANSLATE_QUERY_TRANSLATOR_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/clause.h"
#include "oql/ast.h"
#include "translate/schema_translator.h"

namespace sqo::translate {

/// Bookkeeping produced by Step 2 and consumed by Step 4: how DATALOG
/// variables relate to OQL range identifiers. Attribute-value variables are
/// not mapped here — the change mapper recovers `x.attr` renderings from
/// variable positions in the (optimized) query atoms, exactly as ALGORITHM
/// DATALOG_to_OQL prescribes ("let c(X,...,A,...) be an atom in the query").
struct TranslationMap {
  /// OID variable ↔ OQL range identifier.
  std::map<std::string, std::string> var_to_ident;
  std::map<std::string, std::string> ident_to_var;

  /// Range identifier → ODL type (class or struct) it ranges over.
  std::map<std::string, std::string> ident_type;

  /// Identifiers invented during path flattening (`x.Takes.Taught_by`
  /// becomes two one-dot ranges with a synthetic middle identifier). These
  /// do not appear in the original OQL text.
  std::set<std::string> synthetic_idents;

  /// Provenance: body-literal index → the from-entry / where-predicate index
  /// that directly produced it. Literals added implicitly (path flattening,
  /// lazy class atoms, method atoms) are absent — removing them needs no
  /// OQL surface edit.
  std::map<int, int> body_to_from;
  std::map<int, int> body_to_where;
};

/// The product of Step 2: the DATALOG query plus the reverse map.
struct TranslatedQuery {
  datalog::Query query;
  TranslationMap map;
};

/// Translates the restricted OQL select-from-where subset (§4.3) into a
/// conjunctive DATALOG query over the Step-1 schema:
///
///   * from ranges over extents become eager class atoms;
///   * ranges over relationships become relationship atoms (the target
///     class atom is added lazily, only when the query mentions the range
///     variable's attributes or methods — matching the paper's Example 2);
///   * ranges over structure attributes bind the structure's OID variable
///     and add the structure atom;
///   * path expressions are flattened to one-dot form with synthetic
///     intermediate identifiers; value-position traversal requires to-one
///     relationships (to-many paths must be ranged in the from clause);
///   * method calls become method-relation atoms with a fresh result
///     variable (§4.2 rule 4);
///   * constructors in the select clause are not translated — their leaf
///     expressions are, and become head arguments (§4.3).
///
/// Complexity is linear in the size of the query (§4.1).
class QueryTranslator {
 public:
  explicit QueryTranslator(const TranslatedSchema* schema) : schema_(schema) {}

  /// Translates one parsed OQL query.
  sqo::Result<TranslatedQuery> Translate(const oql::SelectQuery& oql_query);

 private:
  struct IdentInfo {
    std::string type_name;  // ODL class or struct name
    std::string oid_var;
    bool type_atom_added = false;
    int type_atom_index = -1;  // index into body_ when added
  };

  /// Declares a range identifier of the given ODL type; fails on redefinition.
  sqo::Status DefineIdent(const std::string& ident, const std::string& type_name,
                          bool synthetic);

  /// Allocates a fresh, unused DATALOG variable derived from `base`.
  std::string AllocVar(const std::string& base);

  /// Adds (once) the class/structure atom for `ident` with anonymous
  /// attribute variables.
  sqo::Status EnsureTypeAtom(const std::string& ident);

  /// Returns the term at `attr` of `ident`'s type atom, upgrading the
  /// placeholder variable to a readable name on first access.
  sqo::Result<datalog::Term> AttrTerm(const std::string& ident,
                                      const std::string& attr);

  /// Translates a value-position expression (literal or path) to a term.
  sqo::Result<datalog::Term> TranslateExpr(const oql::Expr& expr);

  /// Walks a path expression; returns the term it denotes (attribute value,
  /// method result, or the OID variable of the final object).
  sqo::Result<datalog::Term> TranslatePath(const oql::Expr& path);

  /// Resolves a path prefix to an object identifier (for from-clause
  /// domains and path interiors). `path` must denote an object/struct.
  sqo::Result<std::string> WalkToIdent(const std::string& base,
                                       const std::vector<oql::PathStep>& steps,
                                       size_t n_steps);

  /// Processes one from entry.
  sqo::Status TranslateFromEntry(const oql::FromEntry& entry);

  /// Processes one where predicate.
  sqo::Status TranslateWherePredicate(const oql::Predicate& pred);

  const TranslatedSchema* schema_;
  std::map<std::string, IdentInfo> idents_;
  std::map<std::string, std::string> var_names_;  // var -> ident (OID vars)
  std::set<std::string> used_vars_;
  std::set<std::string> synthetic_;
  std::map<std::string, std::string> step_memo_;  // "ident.step" -> ident
  std::vector<datalog::Literal> body_;
  std::map<int, int> body_to_from_;
  std::map<int, int> body_to_where_;
  int current_from_ = -1;
  int current_where_ = -1;
  int anon_counter_ = 0;
  int synth_counter_ = 0;
};

/// Convenience wrapper.
sqo::Result<TranslatedQuery> TranslateQuery(const TranslatedSchema& schema,
                                            const oql::SelectQuery& oql_query);

}  // namespace sqo::translate

#endif  // SQO_TRANSLATE_QUERY_TRANSLATOR_H_
