#ifndef SQO_SOLVER_CONSTRAINT_SET_H_
#define SQO_SOLVER_CONSTRAINT_SET_H_

#include <set>
#include <string>
#include <vector>

#include "datalog/atom.h"
#include "datalog/term.h"

namespace sqo::solver {

/// A decision procedure for conjunctions of the paper's evaluable atoms:
/// `X θ Y`, `A θ k`, `A θ B` with θ ∈ {=, ≠, <, ≤, >, ≥} over variables and
/// typed constants (numerics ordered numerically, strings lexicographically,
/// booleans and OIDs equality-only).
///
/// This is the engine behind:
///   * contradiction detection (§5.1): query + residue comparisons unsat;
///   * restriction redundancy: an added comparison already implied;
///   * key-based equality reasoning (§5.3): `Implies(Z = W)`;
///   * IC inference: `Project` eliminates interior variables when two ICs
///     are resolved (deriving IC3 from IC1 + IC2 + a fact).
///
/// Numeric domains are treated as dense (rationals): `X > 3 ∧ X < 4` is
/// satisfiable. For integer-typed attributes this is conservative — the
/// solver may fail to detect an integral contradiction, but every
/// contradiction it does report is genuine, which is the soundness direction
/// SQO requires. Booleans are equality-only with no domain-size reasoning.
///
/// Complexity: Floyd–Warshall closure over the order graph, O(n³) in the
/// number of distinct terms — n is small (a query's comparison set).
class ConstraintSet {
 public:
  ConstraintSet() = default;

  /// Adds a comparison atom. Non-comparison atoms are ignored (returns
  /// false); callers feed only the evaluable subset of a query body.
  bool Add(const datalog::Atom& atom);

  /// Adds every positive comparison literal in `literals`.
  void AddComparisons(const std::vector<datalog::Literal>& literals);

  /// Asserts `lhs op rhs` directly.
  void AddConstraint(datalog::CmpOp op, const datalog::Term& lhs,
                     const datalog::Term& rhs);

  /// True iff the conjunction has a model (dense-order semantics above).
  bool Satisfiable() const;

  /// True iff the conjunction entails `atom` (a comparison). An unsat set
  /// entails everything; callers interested in the distinction should check
  /// `Satisfiable()` first.
  bool Implies(const datalog::Atom& atom) const;

  /// True iff the conjunction entails `lhs = rhs`.
  bool ImpliesEqual(const datalog::Term& lhs, const datalog::Term& rhs) const;

  /// Projects the constraint set onto the given variables (plus all
  /// constants): returns a set of comparison atoms over `keep_vars` and
  /// constants that is equivalent to the original set restricted to those
  /// variables — the bounded Fourier–Motzkin step of IC inference. The
  /// result is transitively reduced: atoms implied by the remaining ones
  /// are dropped. Requires the set to be satisfiable.
  std::vector<datalog::Atom> Project(const std::set<std::string>& keep_vars) const;

  /// The number of constraints added so far.
  size_t size() const { return constraints_.size(); }

  class EqualityView;

  /// Renders the raw constraint list for diagnostics.
  std::string ToString() const;

 private:
  // Pairwise relation lattice element: what the closure knows about (u, v).
  enum class Rel : uint8_t { kNone = 0, kLe = 1, kLt = 2 };

  struct RawConstraint {
    datalog::CmpOp op;
    int lhs;
    int rhs;
  };

  struct Closure {
    // rel[u][v]: strongest derived order u ? v.
    std::vector<std::vector<Rel>> rel;
    // Pairs asserted distinct.
    std::vector<std::pair<int, int>> diseq;
    bool unsat = false;

    bool ForcedEqual(int u, int v) const {
      return u == v ||
             (rel[u][v] != Rel::kNone && rel[v][u] != Rel::kNone &&
              rel[u][v] != Rel::kLt && rel[v][u] != Rel::kLt);
    }
  };

  /// Interns `term`, returning its node id. Constants are deduplicated by
  /// semantic equality (3 and 3.0 share a node).
  int NodeId(const datalog::Term& term);

  /// Looks up an existing node id without interning; -1 if absent.
  int FindNode(const datalog::Term& term) const;

  /// Builds the Floyd–Warshall closure over current constraints plus the
  /// implicit order among comparable constants.
  Closure BuildClosure() const;

  std::vector<datalog::Term> nodes_;
  std::vector<RawConstraint> constraints_;
};

/// A snapshot answering forced-equality queries in O(1) after one closure
/// computation — the hot path of residue matching modulo the query's
/// equality theory (ImpliesEqual builds the closure per call; this builds
/// it once). The viewed set must outlive the view and not change.
class ConstraintSet::EqualityView {
 public:
  explicit EqualityView(const ConstraintSet& set)
      : set_(set), closure_(set.BuildClosure()) {}

  /// True iff the set entails a = b (or the set is unsatisfiable). Terms
  /// unknown to the set are equal only to themselves.
  bool Equal(const datalog::Term& a, const datalog::Term& b) const {
    if (a == b) return true;
    if (closure_.unsat) return true;
    int u = set_.FindNode(a);
    int v = set_.FindNode(b);
    if (u < 0 || v < 0) return false;
    return closure_.ForcedEqual(u, v);
  }

  /// True iff the set entails `a op b`. Exact (matches
  /// ConstraintSet::Implies) but answered from the precomputed closure.
  bool Implies(const datalog::Atom& comparison) const;

 private:
  /// Discharges `node u op c` where `c` is a constant the set never
  /// interned, by bridging through the constant nodes the closure does
  /// know (x ≥ 30 entails x ≥ 21 even though 21 has no node).
  bool ImpliesWithMissingConstant(int u, datalog::CmpOp op,
                                  const sqo::Value& c) const;

  const ConstraintSet& set_;
  Closure closure_;
};

}  // namespace sqo::solver

#endif  // SQO_SOLVER_CONSTRAINT_SET_H_
