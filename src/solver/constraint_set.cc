#include "solver/constraint_set.h"

#include <algorithm>

#include "common/strings.h"

namespace sqo::solver {

using datalog::Atom;
using datalog::CmpOp;
using datalog::Literal;
using datalog::Term;

bool ConstraintSet::Add(const Atom& atom) {
  if (!atom.is_comparison()) return false;
  AddConstraint(atom.op(), atom.lhs(), atom.rhs());
  return true;
}

void ConstraintSet::AddComparisons(const std::vector<Literal>& literals) {
  for (const Literal& lit : literals) {
    if (lit.positive && lit.atom.is_comparison()) Add(lit.atom);
  }
}

void ConstraintSet::AddConstraint(CmpOp op, const Term& lhs, const Term& rhs) {
  RawConstraint c{op, NodeId(lhs), NodeId(rhs)};
  constraints_.push_back(c);
}

int ConstraintSet::NodeId(const Term& term) {
  int found = FindNode(term);
  if (found >= 0) return found;
  nodes_.push_back(term);
  return static_cast<int>(nodes_.size()) - 1;
}

int ConstraintSet::FindNode(const Term& term) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    // Term::operator== uses Value::Equals, so 3 and 3.0 intern together.
    if (nodes_[i] == term) return static_cast<int>(i);
  }
  return -1;
}

ConstraintSet::Closure ConstraintSet::BuildClosure() const {
  const size_t n = nodes_.size();
  Closure cl;
  cl.rel.assign(n, std::vector<Rel>(n, Rel::kNone));
  for (size_t i = 0; i < n; ++i) cl.rel[i][i] = Rel::kLe;

  auto strengthen = [&](int u, int v, Rel r) {
    if (static_cast<uint8_t>(r) > static_cast<uint8_t>(cl.rel[u][v])) {
      cl.rel[u][v] = r;
    }
  };

  for (const RawConstraint& c : constraints_) {
    switch (c.op) {
      case CmpOp::kEq:
        strengthen(c.lhs, c.rhs, Rel::kLe);
        strengthen(c.rhs, c.lhs, Rel::kLe);
        break;
      case CmpOp::kNe:
        cl.diseq.emplace_back(c.lhs, c.rhs);
        break;
      case CmpOp::kLt:
        strengthen(c.lhs, c.rhs, Rel::kLt);
        break;
      case CmpOp::kLe:
        strengthen(c.lhs, c.rhs, Rel::kLe);
        break;
      case CmpOp::kGt:
        strengthen(c.rhs, c.lhs, Rel::kLt);
        break;
      case CmpOp::kGe:
        strengthen(c.rhs, c.lhs, Rel::kLe);
        break;
    }
  }

  // Seed the known order among constants: distinct constants are disequal,
  // and comparable ones (numeric/numeric, string/string) are ordered.
  for (size_t i = 0; i < n; ++i) {
    if (!nodes_[i].is_constant()) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (!nodes_[j].is_constant()) continue;
      cl.diseq.emplace_back(static_cast<int>(i), static_cast<int>(j));
      auto cmp = nodes_[i].constant().Compare(nodes_[j].constant());
      if (cmp.has_value()) {
        // Interning guarantees *cmp != 0.
        if (*cmp < 0) {
          strengthen(static_cast<int>(i), static_cast<int>(j), Rel::kLt);
        } else {
          strengthen(static_cast<int>(j), static_cast<int>(i), Rel::kLt);
        }
      }
    }
  }

  // Floyd–Warshall closure; strictness propagates through either hop.
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (cl.rel[i][k] == Rel::kNone) continue;
      for (size_t j = 0; j < n; ++j) {
        if (cl.rel[k][j] == Rel::kNone) continue;
        Rel combined = (cl.rel[i][k] == Rel::kLt || cl.rel[k][j] == Rel::kLt)
                           ? Rel::kLt
                           : Rel::kLe;
        strengthen(static_cast<int>(i), static_cast<int>(j), combined);
      }
    }
  }

  // Unsat: a strict cycle (u < u) or a disequality forced into equality.
  for (size_t i = 0; i < n; ++i) {
    if (cl.rel[i][i] == Rel::kLt) {
      cl.unsat = true;
      return cl;
    }
  }
  for (const auto& [u, v] : cl.diseq) {
    if (cl.ForcedEqual(u, v)) {
      cl.unsat = true;
      return cl;
    }
  }
  return cl;
}

bool ConstraintSet::Satisfiable() const { return !BuildClosure().unsat; }

bool ConstraintSet::Implies(const Atom& atom) const {
  if (!atom.is_comparison()) return false;
  ConstraintSet with_negation = *this;
  with_negation.AddConstraint(datalog::NegateOp(atom.op()), atom.lhs(),
                              atom.rhs());
  return !with_negation.Satisfiable();
}

bool ConstraintSet::ImpliesEqual(const Term& lhs, const Term& rhs) const {
  return Implies(Atom::Comparison(CmpOp::kEq, lhs, rhs));
}

std::vector<Atom> ConstraintSet::Project(
    const std::set<std::string>& keep_vars) const {
  Closure cl = BuildClosure();
  std::vector<Atom> out;
  if (cl.unsat) return out;
  const size_t n = nodes_.size();

  auto kept = [&](size_t u) {
    return nodes_[u].is_constant() ||
           keep_vars.count(nodes_[u].var_name()) > 0;
  };

  // Group kept nodes into forced-equality classes; pick a representative,
  // preferring constants so equalities render as `Var = const`.
  std::vector<int> rep(n, -1);
  std::vector<int> kept_nodes;
  for (size_t u = 0; u < n; ++u) {
    if (kept(u)) kept_nodes.push_back(static_cast<int>(u));
  }
  for (int u : kept_nodes) {
    if (rep[u] != -1) continue;
    int r = u;
    for (int v : kept_nodes) {
      if (cl.ForcedEqual(u, v) && nodes_[v].is_constant()) {
        r = v;
        break;
      }
    }
    for (int v : kept_nodes) {
      if (cl.ForcedEqual(u, v)) rep[v] = r;
    }
  }

  // Equalities: rep = member for every non-representative member, unless
  // both are constants (a ground fact, not a constraint).
  for (int u : kept_nodes) {
    if (rep[u] != u) {
      if (nodes_[u].is_constant() && nodes_[rep[u]].is_constant()) continue;
      out.push_back(Atom::Comparison(CmpOp::kEq, nodes_[u], nodes_[rep[u]]));
    }
  }

  // Order atoms among representatives, transitively reduced.
  std::vector<int> reps;
  for (int u : kept_nodes) {
    if (rep[u] == u) reps.push_back(u);
  }
  for (int u : reps) {
    for (int v : reps) {
      if (u == v) continue;
      Rel r = cl.rel[u][v];
      if (r == Rel::kNone || cl.ForcedEqual(u, v)) continue;
      if (nodes_[u].is_constant() && nodes_[v].is_constant()) continue;
      // Emit each unordered pair once: skip the (v, u) direction of a
      // symmetric kLe pair — ForcedEqual already filtered true equality, so
      // symmetric kLe cannot happen here; direction is meaningful.
      bool redundant = false;
      for (int w : reps) {
        if (w == u || w == v) continue;
        if (cl.rel[u][w] == Rel::kNone || cl.rel[w][v] == Rel::kNone) continue;
        Rel through = (cl.rel[u][w] == Rel::kLt || cl.rel[w][v] == Rel::kLt)
                          ? Rel::kLt
                          : Rel::kLe;
        if (static_cast<uint8_t>(through) >= static_cast<uint8_t>(r)) {
          redundant = true;
          break;
        }
      }
      if (redundant) continue;
      out.push_back(Atom::Comparison(r == Rel::kLt ? CmpOp::kLt : CmpOp::kLe,
                                     nodes_[u], nodes_[v]));
    }
  }

  // Disequalities asserted among kept nodes, unless already implied by a
  // strict order or holding between two constants.
  std::set<std::pair<int, int>> emitted_ne;
  for (const auto& [a, b] : cl.diseq) {
    if (!kept(a) || !kept(b)) continue;
    int u = rep[a], v = rep[b];
    if (u == v) continue;  // would be unsat; already handled
    if (nodes_[u].is_constant() && nodes_[v].is_constant()) continue;
    if (cl.rel[u][v] == Rel::kLt || cl.rel[v][u] == Rel::kLt) continue;
    auto key = std::minmax(u, v);
    if (!emitted_ne.insert({key.first, key.second}).second) continue;
    out.push_back(Atom::Comparison(CmpOp::kNe, nodes_[u], nodes_[v]));
  }
  return out;
}

bool ConstraintSet::EqualityView::ImpliesWithMissingConstant(
    int u, CmpOp op, const sqo::Value& c) const {
  // Constants are interned by semantic equality, so a missing `c` has no
  // equal-valued node either: forced equality to it is impossible, and
  // every other operator reduces to an order bound through some known
  // constant node d with `u ? d` in the closure and `d ? c` by value.
  if (op == CmpOp::kEq) return false;
  auto le = [&](int x, int y) { return closure_.rel[x][y] != Rel::kNone; };
  auto lt = [&](int x, int y) { return closure_.rel[x][y] == Rel::kLt; };
  for (size_t d = 0; d < set_.nodes_.size(); ++d) {
    const int di = static_cast<int>(d);
    if (!set_.nodes_[d].is_constant()) continue;
    auto dc = set_.nodes_[d].constant().Compare(c);
    if (!dc.has_value()) continue;  // incomparable types
    const bool below = (lt(u, di) && *dc <= 0) || (le(u, di) && *dc < 0);
    const bool above = (lt(di, u) && *dc >= 0) || (le(di, u) && *dc > 0);
    switch (op) {
      case CmpOp::kLe:
        if (le(u, di) && *dc <= 0) return true;
        break;
      case CmpOp::kLt:
        if (below) return true;
        break;
      case CmpOp::kGe:
        if (le(di, u) && *dc >= 0) return true;
        break;
      case CmpOp::kGt:
        if (above) return true;
        break;
      case CmpOp::kNe:
        if (below || above) return true;
        if (closure_.ForcedEqual(u, di) && *dc != 0) return true;
        break;
      case CmpOp::kEq:
        break;
    }
  }
  return false;
}

bool ConstraintSet::EqualityView::Implies(const Atom& comparison) const {
  if (!comparison.is_comparison()) return false;
  if (closure_.unsat) return true;
  const Term& a = comparison.lhs();
  const Term& b = comparison.rhs();
  // Ground comparison between constants: evaluate directly.
  if (a.is_constant() && b.is_constant()) {
    if (comparison.op() == CmpOp::kEq || comparison.op() == CmpOp::kNe) {
      return datalog::EvalCmp(comparison.op(),
                              a.constant().Equals(b.constant()) ? 0 : 1);
    }
    auto cmp = a.constant().Compare(b.constant());
    return cmp.has_value() && datalog::EvalCmp(comparison.op(), *cmp);
  }
  // Reflexive.
  if (a == b) {
    return comparison.op() == CmpOp::kEq || comparison.op() == CmpOp::kLe ||
           comparison.op() == CmpOp::kGe;
  }
  int u = set_.FindNode(a);
  int v = set_.FindNode(b);
  // A constant absent from the node table can still be entailed through the
  // constants the closure does know; without this, implication would depend
  // on which literals happened to be asserted verbatim.
  if (u >= 0 && v < 0 && b.is_constant()) {
    return ImpliesWithMissingConstant(u, comparison.op(), b.constant());
  }
  if (v >= 0 && u < 0 && a.is_constant()) {
    return ImpliesWithMissingConstant(v, sqo::FlipOp(comparison.op()),
                                      a.constant());
  }
  // A term the set knows nothing about satisfies no nontrivial comparison.
  if (u < 0 || v < 0) return false;
  auto le = [&](int x, int y) { return closure_.rel[x][y] != Rel::kNone; };
  auto lt = [&](int x, int y) { return closure_.rel[x][y] == Rel::kLt; };
  switch (comparison.op()) {
    case CmpOp::kEq:
      return closure_.ForcedEqual(u, v);
    case CmpOp::kLe:
      return le(u, v);
    case CmpOp::kGe:
      return le(v, u);
    case CmpOp::kLt:
      return lt(u, v);
    case CmpOp::kGt:
      return lt(v, u);
    case CmpOp::kNe: {
      if (lt(u, v) || lt(v, u)) return true;
      // An asserted disequality between the respective equality classes.
      for (const auto& [p, q] : closure_.diseq) {
        if ((closure_.ForcedEqual(p, u) && closure_.ForcedEqual(q, v)) ||
            (closure_.ForcedEqual(p, v) && closure_.ForcedEqual(q, u))) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

std::string ConstraintSet::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(constraints_.size());
  for (const RawConstraint& c : constraints_) {
    parts.push_back(nodes_[c.lhs].ToString() + " " +
                    std::string(datalog::CmpOpSymbol(c.op)) + " " +
                    nodes_[c.rhs].ToString());
  }
  return "{" + StrJoin(parts, ", ") + "}";
}

}  // namespace sqo::solver
