/// Randomized crash-recovery loop: each iteration opens a fresh durable
/// database, arms one storage failpoint site (round-robin) at a random
/// trigger point, streams mutations until the injected failure, crashes,
/// reopens, and differentially checks the recovered state against an
/// in-memory oracle. The invariant under test is the recovery contract:
/// recovered state == the acknowledged prefix of operations, plus at most
/// the one durable-but-unacknowledged record a post-write failure can
/// leave behind — and recovery never aborts or degrades on a mere crash.
///
/// Environment knobs (scripts/run_recovery.sh drives these):
///   SQO_CRASH_LOOP_ITERS — iterations (default 6)
///   SQO_CRASH_LOOP_SEED  — base RNG seed (default 20260807)
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "engine/database.h"
#include "storage/manager.h"
#include "../storage/storage_test_util.h"

namespace sqo::storage {
namespace {

using storage_test::BuildOpScript;
using storage_test::MakeEmptyDb;
using storage_test::MakePopulatedDb;
using storage_test::Op;
using storage_test::StateSignature;
using storage_test::UniversityPipeline;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

OpenOptions Options(bool checkpoint_on_close) {
  OpenOptions options;
  options.compiled = &UniversityPipeline().compiled();
  options.checkpoint_on_close = checkpoint_on_close;
  return options;
}

std::string OracleSignature(const std::vector<Op>& ops, size_t n) {
  auto oracle = MakePopulatedDb();
  for (size_t i = 0; i < n && i < ops.size(); ++i) {
    EXPECT_TRUE(ops[i](oracle.get()).ok());
  }
  return StateSignature(oracle->store());
}

TEST(CrashLoopTest, RecoveredStateAlwaysMatchesAckedPrefix) {
  const uint64_t iters = EnvOr("SQO_CRASH_LOOP_ITERS", 6);
  const uint64_t base_seed = EnvOr("SQO_CRASH_LOOP_SEED", 20260807);
  // wal_append fails before bytes are written (exact-prefix recovery);
  // fsync fails after (the failed op may legitimately survive).
  const std::vector<std::string> sites = {"storage.wal_append",
                                          "storage.fsync"};
  constexpr size_t kOps = 20;

  for (uint64_t iter = 0; iter < iters; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    failpoint::DeactivateAll();
    const std::string site = sites[iter % sites.size()];
    const uint64_t seed = base_seed + iter;
    std::mt19937_64 rng(seed);
    const uint64_t trigger_after = rng() % (kOps - 2);
    const bool checkpoint_mid_stream = (rng() % 2) == 0;
    const std::string dir =
        storage_test::FreshDir("crash_loop" + std::to_string(iter));
    const std::vector<Op> ops = BuildOpScript(seed, kOps);

    size_t acked = 0;
    bool failed = false;
    {
      auto db = MakePopulatedDb();
      ASSERT_TRUE(db->Open(dir, Options(/*checkpoint_on_close=*/false)).ok());
      if (checkpoint_mid_stream) {
        // Exercise recovery across a snapshot boundary, not just the WAL.
        ASSERT_TRUE(db->Checkpoint().ok());
      }
      failpoint::Action action;
      action.status = sqo::InternalError("crash loop: " + site);
      action.trigger_after = trigger_after;
      action.max_trips = 1;
      failpoint::Activate(site, action);
      for (const Op& op : ops) {
        if (!op(db.get()).ok()) {
          failed = true;
          break;
        }
        ++acked;
      }
      failpoint::DeactivateAll();
      // db destroyed without checkpoint: the crash.
    }

    auto db = MakeEmptyDb();
    ASSERT_TRUE(db->Open(dir, Options(/*checkpoint_on_close=*/true)).ok());
    const RecoveryInfo* info = db->recovery_info();
    ASSERT_NE(info, nullptr);
    EXPECT_FALSE(info->degraded)
        << "a clean crash must not degrade: " << info->degradation_reason;

    const std::string recovered = StateSignature(db->store());
    const std::string exact = OracleSignature(ops, acked);
    if (!failed) {
      // Some ops are no-ops, so the failpoint may never have fired; then
      // every op was acknowledged and must be recovered.
      EXPECT_EQ(recovered, exact);
    } else if (site == "storage.wal_append") {
      EXPECT_EQ(recovered, exact) << site << " trigger=" << trigger_after;
    } else {
      const std::string plus_one = OracleSignature(ops, acked + 1);
      EXPECT_TRUE(recovered == exact || recovered == plus_one)
          << site << " trigger=" << trigger_after << ": recovered matches "
          << "neither the acked prefix (" << acked << " ops) nor acked+1";
    }
    ASSERT_TRUE(db->CloseStorage().ok());
  }
}

}  // namespace
}  // namespace sqo::storage
