// Adversarial parser inputs: deeply nested expressions must be rejected
// with kResourceExhausted (bounded recursion, no stack overflow), long but
// flat inputs must still parse, and a corpus of truncated/malformed ODL,
// OQL and IC text must fail with clean kParseError diagnostics.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "datalog/parser.h"
#include "odl/parser.h"
#include "oql/parser.h"

namespace sqo {
namespace {

constexpr int kDeep = 10'000;

std::string NestedListExpr(int depth) {
  std::string text;
  text.reserve(static_cast<size_t>(depth) * 6 + 8);
  for (int i = 0; i < depth; ++i) text += "list(";
  text += "1";
  for (int i = 0; i < depth; ++i) text += ")";
  return text;
}

TEST(ParserDepthTest, DeeplyNestedOqlSelectExprIsResourceExhausted) {
  const std::string query =
      "select " + NestedListExpr(kDeep) + " from x in Person";
  auto result = oql::ParseOql(query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("depth limit"), std::string::npos);
}

TEST(ParserDepthTest, DeeplyNestedOqlWhereExprIsResourceExhausted) {
  const std::string query = "select x from x in Person where " +
                            NestedListExpr(kDeep) + " = 1";
  auto result = oql::ParseOql(query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParserDepthTest, DeeplyNestedStructCtorIsResourceExhausted) {
  std::string expr;
  for (int i = 0; i < kDeep; ++i) expr += "struct(f: ";
  expr += "1";
  for (int i = 0; i < kDeep; ++i) expr += ")";
  auto result = oql::ParseOql("select " + expr + " from x in Person");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParserDepthTest, LongFlatPathStillParses) {
  // Paths are iterative: depth does not apply to x.a.a.a...
  std::string path = "x";
  for (int i = 0; i < kDeep; ++i) path += ".a";
  auto result = oql::ParseOql("select " + path + " from x in Person");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(ParserDepthTest, ShallowNestingIsFine) {
  auto result = oql::ParseOql("select list(list(list(1))) from x in Person");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(ParserDepthTest, LongFlatDatalogBodyStillParses) {
  std::string clause = "p(X) :- q(X)";
  for (int i = 1; i < kDeep; ++i) clause += ", q(X)";
  clause += ".";
  auto result = datalog::ParseClauseText(clause);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->body.size(), static_cast<size_t>(kDeep));
}

TEST(ParserDepthTest, ManyMemberOdlInterfaceStillParses) {
  std::string schema = "interface Wide {\n  extent wides;\n";
  for (int i = 0; i < kDeep; ++i) {
    schema += "  attribute long a" + std::to_string(i) + ";\n";
  }
  schema += "};\n";
  auto result = odl::ParseOdl(schema);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->interfaces.size(), 1u);
  EXPECT_EQ(result->interfaces[0].attributes.size(),
            static_cast<size_t>(kDeep));
}

// ---------------------------------------------------------------------------
// Malformed-input corpus: truncated or garbled text must come back as a
// clean kParseError (never a crash, hang, or misleading status code).

void ExpectParseError(const sqo::Status& status, std::string_view input) {
  EXPECT_FALSE(status.ok()) << "accepted malformed input: " << input;
  EXPECT_EQ(status.code(), StatusCode::kParseError)
      << input << " -> " << status.ToString();
  EXPECT_FALSE(status.message().empty());
}

TEST(MalformedInputTest, TruncatedOql) {
  const std::vector<std::string> corpus = {
      "",
      "select",
      "select x",
      "select x from",
      "select x from x in",
      "select x.name from x in Person where",
      "select x.name from x in Person where x.age <",
      "select x.name from x in Person where x.age < 30 and",
      "select list(1, from x in Person",
      "select struct(f: from x in Person",
      "select x..name from x in Person",
      "where x.age < 30",
  };
  for (const std::string& input : corpus) {
    ExpectParseError(oql::ParseOql(input).status(), input);
  }
}

TEST(MalformedInputTest, TruncatedOdl) {
  const std::vector<std::string> corpus = {
      "interface",
      "interface Person",
      "interface Person {",
      "interface Person { attribute",
      "interface Person { attribute long",
      "interface Person { attribute long age",
      "interface Person { attribute long age;",
      "interface Person extends { };",
      "struct Address { string city",
      "interface Person { relationship set< works_in; };",
      "{ attribute long age; };",
  };
  for (const std::string& input : corpus) {
    ExpectParseError(odl::ParseOdl(input).status(), input);
  }
}

TEST(MalformedInputTest, TruncatedIcClauses) {
  // ICs are DATALOG clauses (denials and implications, §4.2); truncating
  // them anywhere must be a clean parse error.
  const std::vector<std::string> corpus = {
      "IC4:",
      "IC4: Age >= 30 <-",
      "IC4: Age >= 30 <- faculty(X, N,",
      "IC4: Age >= 30 <- faculty(X, N, Age, S)",  // missing final period
      "false <-",
      "<-",
      "p(X",
      "p(X) :- q(X), .",
      "Age > <- faculty(X, N, Age, S).",
  };
  for (const std::string& input : corpus) {
    ExpectParseError(datalog::ParseClauseText(input).status(), input);
  }
}

TEST(MalformedInputTest, TruncatedDatalogQuery) {
  const std::vector<std::string> corpus = {
      "",
      "q(X) :-",
      "q(X) :- person(X,",
  };
  for (const std::string& input : corpus) {
    ExpectParseError(datalog::ParseQueryText(input).status(), input);
  }
}

}  // namespace
}  // namespace sqo
