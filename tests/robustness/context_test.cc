#include "common/context.h"

#include <gtest/gtest.h>

#include <chrono>

namespace sqo {
namespace {

TEST(ExecutionContextTest, FreshContextIsOk) {
  ExecutionContext context;
  EXPECT_TRUE(context.ok());
  EXPECT_TRUE(context.Check("test").ok());
  EXPECT_FALSE(context.has_deadline());
  EXPECT_FALSE(context.deadline_exceeded());
}

TEST(ExecutionContextTest, ExpiredDeadlineFailsCheckAndLatches) {
  ExecutionContext context;
  context.ExpireDeadlineNow();
  EXPECT_TRUE(context.has_deadline());
  // ok() is the cheap probe: it only reflects *latched* state, so it stays
  // true until a Check observes the expired clock.
  EXPECT_TRUE(context.ok());
  Status s = context.Check("phase.x");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("phase.x"), std::string::npos);
  EXPECT_TRUE(context.deadline_exceeded());
  EXPECT_FALSE(context.ok());
  // Latched: subsequent checks report the original violation.
  EXPECT_EQ(context.Check("phase.y").message(), s.message());
}

TEST(ExecutionContextTest, GenerousDeadlineStaysOk) {
  ExecutionContext context;
  context.SetDeadlineAfter(std::chrono::milliseconds(60'000));
  EXPECT_TRUE(context.Check("test").ok());
  EXPECT_TRUE(context.ok());
}

TEST(ExecutionContextTest, CancellationFailsWithKCancelled) {
  ExecutionContext context;
  context.RequestCancellation();
  EXPECT_FALSE(context.ok());
  EXPECT_EQ(context.Check("test").code(), StatusCode::kCancelled);
}

TEST(ExecutionContextTest, BudgetExhaustionLatchesResourceExhausted) {
  ExecutionContext context;
  context.budgets().residue_applications = 3;
  EXPECT_TRUE(context.ChargeResidueApplications().ok());
  EXPECT_TRUE(context.ChargeResidueApplications(2).ok());
  Status s = context.ChargeResidueApplications();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("residue-application"), std::string::npos);
  EXPECT_FALSE(context.ok());
  EXPECT_EQ(context.used_residue_applications(), 4u);
}

TEST(ExecutionContextTest, ZeroBudgetsAreUnlimited) {
  ExecutionContext context;
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(context.ChargeAlternatives().ok());
    ASSERT_TRUE(context.ChargeEvalRows().ok());
  }
  EXPECT_TRUE(context.ok());
}

TEST(ExecutionContextTest, EachBudgetIsIndependent) {
  ExecutionContext context;
  context.budgets().eval_rows = 1;
  EXPECT_TRUE(context.ChargeEvalJoins(100).ok());
  EXPECT_TRUE(context.ChargeEvalRows().ok());
  EXPECT_EQ(context.ChargeEvalRows().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(context.used_eval_joins(), 100u);
  EXPECT_EQ(context.used_eval_rows(), 2u);
}

TEST(ExecutionContextTest, ChargesObserveDeadlineOnStride) {
  ExecutionContext context;
  context.ExpireDeadlineNow();
  // Unlimited budget, expired deadline: the charge path must still notice
  // within one poll stride, so a runaway loop with no boundary checks is
  // bounded too.
  bool observed = false;
  for (int i = 0; i < 5000 && !observed; ++i) {
    observed = !context.ChargeEvalJoins().ok();
  }
  EXPECT_TRUE(observed);
  EXPECT_TRUE(context.deadline_exceeded());
}

TEST(ExecutionContextTest, LatchErrorKeepsFirstError) {
  ExecutionContext context;
  context.LatchError(Status::Ok());  // no-op
  EXPECT_TRUE(context.ok());
  context.LatchError(InternalError("first"));
  context.LatchError(InternalError("second"));
  EXPECT_EQ(context.Check("test").message(), "first");
}

TEST(ScopedContextTest, InstallAndRestore) {
  EXPECT_EQ(CurrentContext(), nullptr);
  EXPECT_TRUE(CheckGovernance("anywhere").ok());
  {
    ExecutionContext outer;
    ScopedContext install_outer(&outer);
    EXPECT_EQ(CurrentContext(), &outer);
    {
      ExecutionContext inner;
      inner.RequestCancellation();
      ScopedContext install_inner(&inner);
      EXPECT_EQ(CurrentContext(), &inner);
      EXPECT_EQ(CheckGovernance("site").code(), StatusCode::kCancelled);
    }
    EXPECT_EQ(CurrentContext(), &outer);
    EXPECT_TRUE(CheckGovernance("site").ok());
  }
  EXPECT_EQ(CurrentContext(), nullptr);
}

TEST(ScopedContextTest, NullDisablesGovernanceWithinScope) {
  ExecutionContext outer;
  outer.RequestCancellation();
  ScopedContext install_outer(&outer);
  EXPECT_FALSE(CheckGovernance("site").ok());
  {
    ScopedContext mask(nullptr);
    EXPECT_TRUE(CheckGovernance("site").ok());
  }
  EXPECT_FALSE(CheckGovernance("site").ok());
}

}  // namespace
}  // namespace sqo
