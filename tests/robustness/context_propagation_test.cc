#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "server/server.h"
#include "workload/university.h"
#include "../storage/storage_test_util.h"

/// ExecutionContext inheritance across thread-pool dispatch — the seam the
/// serving layer rides: a request's context is created on the submitting
/// thread, installed (ScopedContext) on whichever pool worker serves it,
/// and cancelled from a third thread. Runs under the serving-tsan preset,
/// which is the point: RequestCancellation/ok() are the only cross-thread
/// edges a context allows, and TSan proves they are race-free.
namespace sqo {
namespace {

TEST(ContextPropagationTest, DeadlineSeedsPerTaskContextsAcrossThePool) {
  // The documented fan-out pattern: one caller deadline, N pooled tasks
  // each governed by a child context carrying the same absolute deadline.
  ExecutionContext parent;
  parent.SetDeadlineAfter(std::chrono::minutes(5));

  ThreadPool pool(4);
  constexpr int kTasks = 16;
  std::atomic<int> live_checks{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([&parent, &live_checks] {
      ExecutionContext child;
      child.SetDeadline(parent.deadline());
      ScopedContext scoped(&child);
      if (CurrentContext()->Check("test.fanout").ok()) live_checks.fetch_add(1);
    });
  }
  pool.RunBatch(tasks);
  EXPECT_EQ(live_checks.load(), kTasks);
}

TEST(ContextPropagationTest, CancellationReachesAPooledWorkerMidTask) {
  // One shared context: the pooled task polls it under ScopedContext while
  // the main thread cancels — the worker must observe kCancelled and bail.
  ExecutionContext context;
  ThreadPool pool(2);
  std::promise<void> task_running;
  std::promise<Status> observed;

  std::vector<std::function<void()>> tasks;
  tasks.push_back([&] {
    ScopedContext scoped(&context);
    task_running.set_value();
    Status seen = Status::Ok();
    while (seen.ok()) {
      seen = CurrentContext()->Check("test.poll");
      if (seen.ok()) std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    observed.set_value(std::move(seen));
  });
  std::thread runner([&] { pool.RunBatch(tasks); });

  task_running.get_future().wait();
  context.RequestCancellation();  // cross-thread: the one allowed edge
  const Status seen = observed.get_future().get();
  runner.join();
  EXPECT_EQ(seen.code(), StatusCode::kCancelled) << seen.ToString();
  EXPECT_FALSE(context.ok());
}

TEST(ContextPropagationTest, ExpiredParentDeadlineFailsEveryInheritor) {
  ExecutionContext parent;
  parent.ExpireDeadlineNow();

  ThreadPool pool(2);
  constexpr int kTasks = 8;
  std::atomic<int> expired{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([&parent, &expired] {
      ExecutionContext child;
      child.SetDeadline(parent.deadline());
      ScopedContext scoped(&child);
      if (CurrentContext()->Check("test.expired").code() ==
          StatusCode::kResourceExhausted) {
        expired.fetch_add(1);
      }
    });
  }
  pool.RunBatch(tasks);
  EXPECT_EQ(expired.load(), kTasks);
}

TEST(ContextPropagationTest, PendingReplyCancelReachesTheServingWorker) {
  // The full serving path: the request's context lives in its PendingReply,
  // the worker installs it via ScopedContext, and Cancel() crosses threads
  // through RequestCancellation while the op spins on CurrentContext().
  auto primary = storage_test::MakePopulatedDb();
  server::ServerConfig config;
  config.workers = 2;
  config.replica_setup = workload::SetupUniversityRuntime;
  server::Server server(&storage_test::UniversityPipeline(), primary.get(),
                        std::move(config));
  ASSERT_TRUE(server.Start().ok());
  auto session = server.OpenSession("cancel-path");

  std::promise<void> op_running;
  server::ReplyRef reply =
      session->SubmitMutation([&op_running](engine::Database*) {
        op_running.set_value();
        // Cooperative loop: the worker's installed context is this
        // request's context; Cancel() must break the loop.
        while (CurrentContext() != nullptr && CurrentContext()->ok()) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        return CurrentContext() != nullptr
                   ? CurrentContext()->Check("test.op")
                   : InternalError("no context installed on the worker");
      });

  op_running.get_future().wait();
  reply->Cancel();
  const server::QueryResponse& response = reply->Wait();
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled)
      << response.status.ToString();
  server.Stop();
}

}  // namespace
}  // namespace sqo
