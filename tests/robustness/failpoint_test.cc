#include "common/failpoint.h"

#include <gtest/gtest.h>

#include "common/context.h"
#include "obs/metrics.h"

namespace sqo::failpoint {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { DeactivateAll(); }
  void TearDown() override { DeactivateAll(); }
};

TEST_F(FailpointTest, InactiveSiteIsOk) {
  EXPECT_TRUE(Check("never.armed").ok());
  EXPECT_EQ(TripCount("never.armed"), 0u);
}

TEST_F(FailpointTest, ErrorActionReturnsInjectedStatus) {
  Action action;
  action.kind = ActionKind::kError;
  action.status = InternalError("injected");
  Activate("phase.site", action);
  Status s = Check("phase.site");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "injected");
  EXPECT_EQ(TripCount("phase.site"), 1u);
}

TEST_F(FailpointTest, DeactivateDisarms) {
  Activate("phase.site", Action{});
  EXPECT_FALSE(Check("phase.site").ok());
  Deactivate("phase.site");
  EXPECT_TRUE(Check("phase.site").ok());
  // The trip count survives until the site is re-armed.
  EXPECT_EQ(TripCount("phase.site"), 1u);
}

TEST_F(FailpointTest, TriggerAfterSkipsEarlyPasses) {
  Action action;
  action.trigger_after = 2;
  Activate("phase.site", action);
  EXPECT_TRUE(Check("phase.site").ok());
  EXPECT_TRUE(Check("phase.site").ok());
  EXPECT_FALSE(Check("phase.site").ok());
  EXPECT_EQ(TripCount("phase.site"), 1u);
}

TEST_F(FailpointTest, MaxTripsGoesDormant) {
  Action action;
  action.max_trips = 2;
  Activate("phase.site", action);
  EXPECT_FALSE(Check("phase.site").ok());
  EXPECT_FALSE(Check("phase.site").ok());
  EXPECT_TRUE(Check("phase.site").ok());
  EXPECT_EQ(TripCount("phase.site"), 2u);
}

TEST_F(FailpointTest, ReArmingResetsCounters) {
  Activate("phase.site", Action{});
  EXPECT_FALSE(Check("phase.site").ok());
  Action delayed;
  delayed.trigger_after = 1;
  Activate("phase.site", delayed);
  EXPECT_EQ(TripCount("phase.site"), 0u);
  EXPECT_TRUE(Check("phase.site").ok());
  EXPECT_FALSE(Check("phase.site").ok());
}

TEST_F(FailpointTest, ExpireDeadlineActsOnCurrentContext) {
  Action action;
  action.kind = ActionKind::kExpireDeadline;
  Activate("phase.site", action);
  ExecutionContext context;
  ScopedContext install(&context);
  EXPECT_TRUE(Check("phase.site").ok());  // the action itself is not an error
  EXPECT_EQ(CheckGovernance("after").code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(context.deadline_exceeded());
}

TEST_F(FailpointTest, CancelActsOnCurrentContext) {
  Action action;
  action.kind = ActionKind::kCancel;
  Activate("phase.site", action);
  ExecutionContext context;
  ScopedContext install(&context);
  EXPECT_TRUE(Check("phase.site").ok());
  EXPECT_FALSE(context.ok());
  EXPECT_EQ(CheckGovernance("after").code(), StatusCode::kCancelled);
}

TEST_F(FailpointTest, ContextActionsWithoutContextAreNoops) {
  Action action;
  action.kind = ActionKind::kExpireDeadline;
  Activate("phase.site", action);
  EXPECT_TRUE(Check("phase.site").ok());
}

TEST_F(FailpointTest, TripsLandInMetricsRegistry) {
  obs::MetricsRegistry metrics;
  obs::ScopedMetrics install(&metrics);
  Activate("phase.site", Action{});
  EXPECT_FALSE(Check("phase.site").ok());
  EXPECT_FALSE(Check("phase.site").ok());
  EXPECT_EQ(metrics.CounterValue("failpoint.trips"), 2u);
  EXPECT_EQ(metrics.CounterValue("failpoint.phase.site"), 2u);
}

TEST_F(FailpointTest, DeactivateAllClearsEverything) {
  Activate("a", Action{});
  Activate("b", Action{});
  DeactivateAll();
  EXPECT_TRUE(Check("a").ok());
  EXPECT_TRUE(Check("b").ok());
  EXPECT_EQ(TripCount("a"), 0u);
}

TEST_F(FailpointTest, DefaultMacroExpandsToReturnOnError) {
  auto guarded = []() -> Status {
    SQO_FAILPOINT("macro.site");
    return InternalError("reached the body");
  };
  Activate("macro.site", Action{});
  EXPECT_EQ(guarded().message(), "failpoint");
  Deactivate("macro.site");
  EXPECT_EQ(guarded().message(), "reached the body");
}

}  // namespace
}  // namespace sqo::failpoint
