/// Kill-and-reopen differential tests: for every storage failpoint site,
/// crash the database mid-stream and prove recovery restores exactly the
/// acknowledged prefix of operations (allowing the one durable-but-
/// unacknowledged record a post-write fsync failure can legitimately
/// leave behind). Plus a corruption corpus: truncated snapshots,
/// bit-flipped and stale-LSN WAL records, version-skewed headers and
/// outright garbage must degrade fail-open (or fail closed with
/// kDataCorruption when asked to) — never abort.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/fileio.h"
#include "engine/database.h"
#include "storage/manager.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "../storage/storage_test_util.h"

namespace sqo::storage {
namespace {

using storage_test::BuildOpScript;
using storage_test::MakeEmptyDb;
using storage_test::MakePopulatedDb;
using storage_test::Op;
using storage_test::StateSignature;
using storage_test::UniversityPipeline;

constexpr uint64_t kScriptSeed = 2026;
constexpr size_t kScriptLen = 24;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DeactivateAll();
    dir_ = storage_test::FreshDir("recovery");
  }
  void TearDown() override { failpoint::DeactivateAll(); }

  static OpenOptions CrashOptions() {
    OpenOptions options;
    options.compiled = &UniversityPipeline().compiled();
    options.checkpoint_on_close = false;
    return options;
  }

  static OpenOptions ReopenOptions() {
    OpenOptions options;
    options.compiled = &UniversityPipeline().compiled();
    return options;
  }

  /// Runs `ops` against a freshly-opened populated database with `site`
  /// armed (after open, so baseline checkpointing is unaffected), stopping
  /// at the first rejected op, then crashes (destroys without checkpoint).
  /// Returns the number of acknowledged ops.
  size_t RunUntilFailureAndCrash(const std::vector<Op>& ops,
                                 const std::string& site,
                                 uint64_t trigger_after) {
    auto db = MakePopulatedDb();
    EXPECT_TRUE(db->Open(dir_, CrashOptions()).ok());
    failpoint::Action action;
    action.status = sqo::InternalError("injected crash at " + site);
    action.trigger_after = trigger_after;
    action.max_trips = 1;
    failpoint::Activate(site, action);
    size_t acked = 0;
    for (const Op& op : ops) {
      if (!op(db.get()).ok()) break;
      ++acked;
    }
    failpoint::DeactivateAll();
    return acked;  // db destroyed here: crash
  }

  /// Signature of a populated oracle after applying the first `n` ops.
  static std::string OracleSignature(const std::vector<Op>& ops, size_t n) {
    auto oracle = MakePopulatedDb();
    for (size_t i = 0; i < n && i < ops.size(); ++i) {
      EXPECT_TRUE(ops[i](oracle.get()).ok());
    }
    return StateSignature(oracle->store());
  }

  std::string RecoverSignature(bool* degraded = nullptr) {
    auto db = MakeEmptyDb();
    EXPECT_TRUE(db->Open(dir_, ReopenOptions()).ok());
    if (degraded != nullptr) *degraded = db->recovery_info()->degraded;
    const std::string sig = StateSignature(db->store());
    EXPECT_TRUE(db->CloseStorage().ok());
    return sig;
  }

  /// Path of the newest WAL segment (the one traffic was appending to).
  std::string NewestWalPath() const {
    auto segments = ListWalSegments(*fs::Env::Default(), dir_);
    EXPECT_TRUE(segments.ok() && !segments->empty());
    return segments->back().path;
  }

  /// Snapshot file paths in `dir_`, newest first.
  std::vector<std::string> SnapshotPaths() const {
    std::vector<std::string> paths;
    auto names = fs::ListDir(dir_);
    EXPECT_TRUE(names.ok());
    for (const std::string& name : *names) {
      if (name.rfind("snapshot-", 0) == 0) paths.push_back(dir_ + "/" + name);
    }
    std::sort(paths.rbegin(), paths.rend());
    return paths;
  }

  std::string dir_;
};

TEST_F(RecoveryTest, WalAppendCrashRecoversExactlyTheAckedPrefix) {
  // The append failpoint fires before any byte is written, so recovery
  // must reproduce the acknowledged prefix exactly — no more, no less.
  for (uint64_t trigger_after : {0u, 4u, 11u}) {
    dir_ = storage_test::FreshDir("recovery_append" +
                                  std::to_string(trigger_after));
    const std::vector<Op> ops = BuildOpScript(kScriptSeed, kScriptLen);
    const size_t acked =
        RunUntilFailureAndCrash(ops, "storage.wal_append", trigger_after);
    ASSERT_LT(acked, ops.size());  // the injected failure did reject an op
    bool degraded = false;
    EXPECT_EQ(RecoverSignature(&degraded), OracleSignature(ops, acked))
        << "trigger_after=" << trigger_after;
    EXPECT_FALSE(degraded);  // a lost tail op is not corruption
  }
}

TEST_F(RecoveryTest, FsyncCrashRecoversAckedPrefixOrOneMore) {
  // The fsync failpoint fires after the record's bytes reached the file,
  // so the unacknowledged op may legitimately survive — but nothing past
  // it, and never a hole.
  for (uint64_t trigger_after : {0u, 6u}) {
    dir_ = storage_test::FreshDir("recovery_fsync" +
                                  std::to_string(trigger_after));
    const std::vector<Op> ops = BuildOpScript(kScriptSeed + 1, kScriptLen);
    const size_t acked =
        RunUntilFailureAndCrash(ops, "storage.fsync", trigger_after);
    ASSERT_LT(acked, ops.size());
    const std::string recovered = RecoverSignature();
    const std::string exact = OracleSignature(ops, acked);
    const std::string plus_one = OracleSignature(ops, acked + 1);
    EXPECT_TRUE(recovered == exact || recovered == plus_one)
        << "trigger_after=" << trigger_after
        << ": recovered state matches neither the acked prefix nor "
           "acked+1";
  }
}

TEST_F(RecoveryTest, FailedCheckpointLeavesOldStateAuthoritative) {
  // snapshot_write fails before anything touches disk; rename fails after
  // the temp file is written but before it is published. Either way the
  // previous snapshot + full WAL must still recover every acked op.
  for (const char* site : {"storage.snapshot_write", "storage.rename"}) {
    dir_ = storage_test::FreshDir(std::string("recovery_ckpt_") +
                                  (site + sizeof("storage.") - 1));
    const std::vector<Op> ops = BuildOpScript(kScriptSeed + 2, kScriptLen);
    {
      auto db = MakePopulatedDb();
      ASSERT_TRUE(db->Open(dir_, CrashOptions()).ok());
      for (const Op& op : ops) ASSERT_TRUE(op(db.get()).ok());
      failpoint::Action action;
      action.status = sqo::InternalError(std::string("injected: ") + site);
      failpoint::Activate(site, action);
      EXPECT_FALSE(db->Checkpoint().ok()) << site;
      failpoint::DeactivateAll();
      // Crash without a (successful) checkpoint.
    }
    EXPECT_EQ(RecoverSignature(), OracleSignature(ops, ops.size())) << site;
  }
}

TEST_F(RecoveryTest, TruncatedSnapshotDegradesToPreviousGoodOne) {
  std::string baseline_sig;
  {
    auto db = MakePopulatedDb();
    baseline_sig = StateSignature(db->store());
    ASSERT_TRUE(db->Open(dir_, ReopenOptions()).ok());  // snapshot-000001
    for (const Op& op : BuildOpScript(kScriptSeed + 3, kScriptLen)) {
      ASSERT_TRUE(op(db.get()).ok());
    }
    ASSERT_TRUE(db->CloseStorage().ok());  // snapshot-000002 + fresh WAL
  }
  const std::string newest = dir_ + "/snapshot-000002.sqo";
  ASSERT_TRUE(fs::Exists(newest));
  auto data = fs::ReadFile(newest);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(fs::TruncateFile(newest, data->size() / 3).ok());

  auto db = MakeEmptyDb();
  ASSERT_TRUE(db->Open(dir_, ReopenOptions()).ok());
  const storage::RecoveryInfo* info = db->recovery_info();
  EXPECT_TRUE(info->degraded);
  EXPECT_TRUE(info->corruption_detected);
  // Fell back to the baseline snapshot; the WAL (based on the truncated
  // snapshot's LSN) was unusable against it and discarded.
  EXPECT_NE(info->snapshot_path.find("snapshot-000001"), std::string::npos);
  EXPECT_EQ(StateSignature(db->store()), baseline_sig);
}

TEST_F(RecoveryTest, BitFlippedWalRecordLosesOnlyTheTail) {
  const std::vector<Op> ops = BuildOpScript(kScriptSeed + 4, kScriptLen);
  {
    auto db = MakePopulatedDb();
    ASSERT_TRUE(db->Open(dir_, CrashOptions()).ok());
    for (const Op& op : ops) ASSERT_TRUE(op(db.get()).ok());
    // A final guaranteed-mutating op so the log's last record is known.
    ASSERT_TRUE(db->store()
                    .CreateObject("Person", {{"name", Value::String("tail")},
                                             {"age", Value::Int(99)}})
                    .ok());
  }
  const std::string wal = NewestWalPath();
  auto data = fs::ReadFile(wal);
  ASSERT_TRUE(data.ok());
  std::string mutated = *data;
  mutated[mutated.size() - 2] ^= 0x10;  // inside the last record's payload
  ASSERT_TRUE(fs::WriteFileAtomic(wal, mutated).ok());

  auto db = MakeEmptyDb();
  ASSERT_TRUE(db->Open(dir_, ReopenOptions()).ok());
  const storage::RecoveryInfo* info = db->recovery_info();
  EXPECT_TRUE(info->corruption_detected);
  EXPECT_TRUE(info->degraded);
  EXPECT_GT(info->truncated_bytes, 0u);
  // Everything before the flipped record survived.
  EXPECT_EQ(StateSignature(db->store()), OracleSignature(ops, ops.size()));
}

TEST_F(RecoveryTest, StaleLsnRecordTruncatesTheLog) {
  const std::vector<Op> ops = BuildOpScript(kScriptSeed + 5, kScriptLen);
  {
    auto db = MakePopulatedDb();
    ASSERT_TRUE(db->Open(dir_, CrashOptions()).ok());
    for (const Op& op : ops) ASSERT_TRUE(op(db.get()).ok());
  }
  // Forge a duplicate of LSN 1 at the tail, as a buggy writer would.
  {
    auto writer = WalWriter::OpenExisting(NewestWalPath());
    ASSERT_TRUE(writer.ok());
    engine::Mutation m;
    m.kind = engine::Mutation::Kind::kCreate;
    m.oid = sqo::Oid(1);
    m.relation = "person";
    m.row = {sqo::Value::FromOid(sqo::Oid(1)), sqo::Value::String("forged")};
    ASSERT_TRUE(writer->Append(1, {m}, true).ok());
  }
  auto db = MakeEmptyDb();
  ASSERT_TRUE(db->Open(dir_, ReopenOptions()).ok());
  EXPECT_TRUE(db->recovery_info()->corruption_detected);
  EXPECT_GT(db->recovery_info()->truncated_bytes, 0u);
  EXPECT_EQ(StateSignature(db->store()), OracleSignature(ops, ops.size()));
}

TEST_F(RecoveryTest, VersionSkewedSnapshotDegradesWithoutAborting) {
  {
    auto db = MakePopulatedDb();
    ASSERT_TRUE(db->Open(dir_, ReopenOptions()).ok());
    ASSERT_TRUE(db->CloseStorage().ok());
  }
  // Patch the version field of every snapshot and re-seal the header CRCs:
  // the skew itself, not a checksum failure, must be what recovery rejects.
  const std::vector<std::string> paths = SnapshotPaths();
  ASSERT_FALSE(paths.empty());
  for (const std::string& path : paths) {
    auto data = fs::ReadFile(path);
    ASSERT_TRUE(data.ok());
    std::string mutated = *data;
    mutated[4] = 77;
    const uint32_t crc =
        MaskCrc32c(Crc32c(mutated.data(), kSnapshotHeaderSize - 4));
    for (int i = 0; i < 4; ++i) {
      mutated[kSnapshotHeaderSize - 4 + i] =
          static_cast<char>((crc >> (8 * i)) & 0xFF);
    }
    ASSERT_TRUE(fs::WriteFileAtomic(path, mutated).ok());
  }

  auto db = MakeEmptyDb();
  ASSERT_TRUE(db->Open(dir_, ReopenOptions()).ok());
  const storage::RecoveryInfo* info = db->recovery_info();
  EXPECT_TRUE(info->degraded);
  EXPECT_TRUE(info->corruption_detected);
  EXPECT_TRUE(info->created);  // nothing usable: bootstrapped fresh
  EXPECT_TRUE(db->store().objects().empty());
}

TEST_F(RecoveryTest, VersionSkewedWalHeaderDiscardsTheLog) {
  std::string baseline_sig;
  {
    auto db = MakePopulatedDb();
    ASSERT_TRUE(db->Open(dir_, CrashOptions()).ok());
    baseline_sig = StateSignature(db->store());
    for (const Op& op : BuildOpScript(kScriptSeed + 6, kScriptLen)) {
      ASSERT_TRUE(op(db.get()).ok());
    }
  }
  const std::string wal = NewestWalPath();
  auto data = fs::ReadFile(wal);
  ASSERT_TRUE(data.ok());
  std::string mutated = *data;
  mutated[4] = 55;  // WAL version (u32 LE at offset 4)
  const uint32_t crc = MaskCrc32c(Crc32c(mutated.data(), kWalHeaderSize - 4));
  for (int i = 0; i < 4; ++i) {
    mutated[kWalHeaderSize - 4 + i] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  ASSERT_TRUE(fs::WriteFileAtomic(wal, mutated).ok());

  auto db = MakeEmptyDb();
  ASSERT_TRUE(db->Open(dir_, ReopenOptions()).ok());
  EXPECT_TRUE(db->recovery_info()->degraded);
  EXPECT_TRUE(db->recovery_info()->corruption_detected);
  // The log is untrusted wholesale: back to the baseline snapshot.
  EXPECT_EQ(StateSignature(db->store()), baseline_sig);
}

TEST_F(RecoveryTest, GarbageWalIsDiscarded) {
  std::string baseline_sig;
  {
    auto db = MakePopulatedDb();
    ASSERT_TRUE(db->Open(dir_, CrashOptions()).ok());
    baseline_sig = StateSignature(db->store());
    for (const Op& op : BuildOpScript(kScriptSeed + 7, kScriptLen)) {
      ASSERT_TRUE(op(db.get()).ok());
    }
  }
  std::string garbage(512, '\0');
  std::mt19937_64 rng(99);
  for (char& c : garbage) c = static_cast<char>(rng());
  ASSERT_TRUE(fs::WriteFileAtomic(NewestWalPath(), garbage).ok());

  auto db = MakeEmptyDb();
  ASSERT_TRUE(db->Open(dir_, ReopenOptions()).ok());
  EXPECT_TRUE(db->recovery_info()->degraded);
  EXPECT_EQ(StateSignature(db->store()), baseline_sig);
}

TEST_F(RecoveryTest, FailClosedModeReturnsCorruptionInsteadOfDegrading) {
  {
    auto db = MakePopulatedDb();
    ASSERT_TRUE(db->Open(dir_, ReopenOptions()).ok());
    ASSERT_TRUE(db->CloseStorage().ok());
  }
  const std::vector<std::string> paths = SnapshotPaths();
  ASSERT_FALSE(paths.empty());
  auto data = fs::ReadFile(paths.front());  // the newest: tried first
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(fs::TruncateFile(paths.front(), data->size() - 7).ok());

  auto db = MakeEmptyDb();
  OpenOptions closed = ReopenOptions();
  closed.fail_open = false;
  EXPECT_EQ(db->Open(dir_, closed).code(), sqo::StatusCode::kDataCorruption);
  EXPECT_FALSE(db->storage_attached());
}

}  // namespace
}  // namespace sqo::storage
