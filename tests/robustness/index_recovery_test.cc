// Recovery of the persistent adaptive access structures: lazily built
// secondary indexes and materialized-ASR freshness states ride in the
// snapshot's index section (format v2) and must come back bit-identical
// after a clean close — and stay delta-consistent when a crash forces WAL
// replay through the restored structures. `ctest -L recovery`.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "engine/database.h"
#include "engine/object_store.h"
#include "obs/metrics.h"
#include "storage/manager.h"
#include "../storage/storage_test_util.h"

namespace sqo::storage {
namespace {

using storage_test::FreshDir;
using storage_test::MakeEmptyDb;
using storage_test::MakePopulatedDb;
using storage_test::StateSignature;
using storage_test::UniversityPipeline;

datalog::Query Parse(const std::string& text) {
  auto q = datalog::ParseQueryText(
      text, &UniversityPipeline().schema().catalog);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

// Selection over the person extent (19 objects with the small config —
// above the auto-index threshold of 16), so evaluation lazily builds the
// persistent secondary index on person.age.
const char* kIndexedSelection = "q(X) :- person(oid: X, age: A), A = 21.";

OpenOptions CleanOptions() {
  OpenOptions options;
  options.compiled = &UniversityPipeline().compiled();
  return options;
}

OpenOptions CrashOptions() {
  OpenOptions options = CleanOptions();
  options.checkpoint_on_close = false;
  return options;
}

TEST(IndexRecoveryTest, SnapshotRoundTripRestoresIndexesAndAsrs) {
  const std::string dir = FreshDir("index_roundtrip");
  const datalog::Query selection = Parse(kIndexedSelection);
  std::vector<std::vector<sqo::Value>> expected;
  std::string signature;
  {
    auto db = MakePopulatedDb();
    ASSERT_TRUE(db->Open(dir, CleanOptions()).ok());
    auto rows = db->Run(selection);  // builds the lazy index on age
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    expected = *rows;
    ASSERT_FALSE(db->store().DumpSecondaryIndexes().empty());
    ASSERT_FALSE(db->store().AsrStates().empty());  // populate materializes
    signature = StateSignature(db->store());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->CloseStorage().ok());
  }

  obs::MetricsRegistry metrics;
  obs::ScopedMetrics scoped(&metrics);
  auto db = MakeEmptyDb();
  ASSERT_TRUE(db->Open(dir, CleanOptions()).ok());
  EXPECT_EQ(StateSignature(db->store()), signature);
  EXPECT_GE(metrics.CounterValue("index.restored"), 1u);

  // The restored index serves the query without a rebuild.
  const uint64_t builds_before = metrics.CounterValue("index.lazy_builds");
  auto rows = db->Run(selection);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(*rows, expected);
  EXPECT_EQ(metrics.CounterValue("index.lazy_builds"), builds_before);
  EXPECT_EQ(metrics.CounterValue("index.full_rebuilds"), 0u);

  // ASR freshness round-trips too (freshly materialized → not stale).
  ASSERT_FALSE(db->store().AsrStates().empty());
  for (const auto& asr : db->store().AsrStates()) {
    EXPECT_FALSE(asr.stale) << asr.name;
  }
  ASSERT_TRUE(db->CloseStorage().ok());
}

TEST(IndexRecoveryTest, WalReplayDeltaMaintainsRestoredIndexes) {
  const std::string dir = FreshDir("index_wal_replay");
  const datalog::Query selection = Parse(kIndexedSelection);
  std::string signature;
  sqo::Oid student;
  {
    auto db = MakePopulatedDb();
    ASSERT_TRUE(db->Open(dir, CrashOptions()).ok());
    ASSERT_TRUE(db->Run(selection).ok());  // build index
    ASSERT_TRUE(db->Checkpoint().ok());    // snapshot carries the index

    // Post-checkpoint mutations land in the WAL only: age updates touch
    // the indexed attribute, the unrelate marks the ASR stale.
    {
      auto rows = db->Run(Parse("q(X) :- student(oid: X)."));
      ASSERT_TRUE(rows.ok());
      ASSERT_FALSE(rows->empty());
      student = (*rows)[0][0].AsOid();
    }
    ASSERT_TRUE(
        db->store().UpdateAttribute(student, "age", sqo::Value::Int(21)).ok());
    const auto& takes = db->store().Neighbors("takes", student);
    ASSERT_FALSE(takes.empty());
    ASSERT_TRUE(db->store().Unrelate("takes", student, takes[0]).ok());
    signature = StateSignature(db->store());
  }  // destroyed without checkpoint: crash

  obs::MetricsRegistry metrics;
  obs::ScopedMetrics scoped(&metrics);
  auto db = MakeEmptyDb();
  ASSERT_TRUE(db->Open(dir, CleanOptions()).ok());
  EXPECT_EQ(StateSignature(db->store()), signature);
  // Replay went through the restored index as deltas, not rebuilds.
  EXPECT_GE(metrics.CounterValue("index.restored"), 1u);
  EXPECT_GE(metrics.CounterValue("index.delta_applies"), 1u);
  EXPECT_EQ(metrics.CounterValue("index.full_rebuilds"), 0u);

  // The replayed age update is visible through the restored index: the
  // mutated student (now age 21) must be in the probe's result.
  auto rows = db->Run(selection);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  bool found = false;
  for (const auto& row : *rows) found |= (row[0].AsOid() == student);
  EXPECT_TRUE(found);
  EXPECT_EQ(metrics.CounterValue("index.lazy_builds"), 0u);

  // ...and the replayed erase re-marked the ASR stale.
  bool any_stale = false;
  for (const auto& asr : db->store().AsrStates()) any_stale |= asr.stale;
  EXPECT_TRUE(any_stale);
  ASSERT_TRUE(db->CloseStorage().ok());
}

}  // namespace
}  // namespace sqo::storage
