#include "workload/chaos.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <random>
#include <string>

#include "common/failpoint.h"
#include "../storage/storage_test_util.h"

/// Crash-under-traffic chaos loop: every iteration forks a child that
/// streams seeded mutations into a real database directory, kills it at a
/// randomized point via one of four mechanisms, reopens the directory and
/// differentially compares the recovered state against an in-memory oracle
/// replaying the acknowledged prefix. The loop honors the same knobs as the
/// crash loop:
///
///   SQO_CRASH_LOOP_ITERS   iterations (default 12 here; CI sets 200+)
///   SQO_CRASH_LOOP_SEED    base seed (default 20260808)
namespace sqo::workload {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtoull(raw, nullptr, 10);
}

const char* ModeName(ChaosCrashMode mode) {
  switch (mode) {
    case ChaosCrashMode::kFailpointError:
      return "failpoint-error";
    case ChaosCrashMode::kTornWriteCrash:
      return "torn-write-crash";
    case ChaosCrashMode::kFsyncCrash:
      return "fsync-crash";
    case ChaosCrashMode::kKillMidTraffic:
      return "kill-mid-traffic";
  }
  return "?";
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DeactivateAll(); }
  void TearDown() override { failpoint::DeactivateAll(); }

  /// One iteration's options, derived deterministically from (seed, i).
  ChaosOptions MakeOptions(uint64_t seed, uint64_t i) {
    std::mt19937_64 rng(seed + i * 7919);
    ChaosOptions options;
    options.seed = seed + i;
    options.ops = 36;
    options.dir = storage_test::FreshDir("chaos_" + std::to_string(i));
    options.pipeline = &storage_test::UniversityPipeline();
    options.data = storage_test::SmallConfig();
    options.mode = static_cast<ChaosCrashMode>(i % 4);
    options.checkpoint_mid_stream = (rng() % 2) == 0;
    options.group_commit = (rng() % 4) != 0;  // mostly on, inline arm too
    switch (options.mode) {
      case ChaosCrashMode::kFailpointError:
        // Trip counts: small enough to land during traffic, sometimes
        // during the baseline checkpoint itself.
        options.crash_point = rng() % 48;
        break;
      case ChaosCrashMode::kTornWriteCrash:
        // Cumulative env bytes. The baseline snapshot is a few KB; spread
        // crash offsets from inside it to deep into the WAL stream.
        options.crash_point = 512 + rng() % 24000;
        break;
      case ChaosCrashMode::kFsyncCrash:
        options.crash_point = rng() % 40;
        break;
      case ChaosCrashMode::kKillMidTraffic:
        options.crash_point = rng() % options.ops;
        break;
    }
    return options;
  }
};

TEST_F(ChaosTest, KillAndReopenNeverLosesAcknowledgedWrites) {
  const uint64_t iters = EnvOr("SQO_CRASH_LOOP_ITERS", 12);
  const uint64_t seed = EnvOr("SQO_CRASH_LOOP_SEED", 20260808);
  uint64_t crashed = 0;

  for (uint64_t i = 0; i < iters; ++i) {
    const ChaosOptions options = MakeOptions(seed, i);
    SCOPED_TRACE("iteration " + std::to_string(i) + " seed " +
                 std::to_string(options.seed) + " mode " +
                 ModeName(options.mode) + " crash_point " +
                 std::to_string(options.crash_point));
    auto outcome = RunChaosIteration(options);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (outcome->child_crashed) ++crashed;
    EXPECT_TRUE(outcome->consistent)
        << "acked=" << outcome->acked
        << " exit=" << outcome->child_exit_code << " " << outcome->detail;
    EXPECT_FALSE(outcome->degraded)
        << "recovery degraded after a clean process kill: " << outcome->detail;
  }

  // A chaos loop where nothing ever dies is testing the happy path; the
  // crash coordinates above are tuned so most iterations kill the child.
  if (iters >= 8) {
    EXPECT_GT(crashed, iters / 4)
        << "only " << crashed << "/" << iters << " iterations crashed";
  }
  std::cout << "[chaos] " << crashed << "/" << iters
            << " iterations crashed the child, 0 inconsistencies\n";
}

TEST_F(ChaosTest, ScriptAndSignatureAreDeterministic) {
  // The differential oracle is only as good as its determinism: the same
  // seed must produce the same script, and replaying the same prefix must
  // produce the same signature.
  auto db_a = storage_test::MakePopulatedDb();
  auto db_b = storage_test::MakePopulatedDb();
  auto script_a = ChaosOpScript(777, 24);
  auto script_b = ChaosOpScript(777, 24);
  ASSERT_EQ(script_a.size(), script_b.size());
  for (size_t i = 0; i < script_a.size(); ++i) {
    ASSERT_TRUE(script_a[i](db_a.get()).ok()) << "op " << i;
    ASSERT_TRUE(script_b[i](db_b.get()).ok()) << "op " << i;
  }
  EXPECT_EQ(ChaosStateSignature(db_a->store()),
            ChaosStateSignature(db_b->store()));
}

}  // namespace
}  // namespace sqo::workload
