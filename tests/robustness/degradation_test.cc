// End-to-end robustness of the Figure-2 pipeline: failpoint-forced phase
// failures, deadline expiry and budget exhaustion must degrade fail-open
// (original translated query as the sole alternative, degraded flag set,
// counters and trace events emitted) — and fail closed when degradation is
// opted out. Deadline expiry is injected via failpoints (deterministic,
// no wall-clock sleeps in the happy path).

#include <gtest/gtest.h>

#include <string>

#include "common/context.h"
#include "common/failpoint.h"
#include "engine/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sqo/pipeline.h"
#include "workload/university.h"

namespace sqo::core {
namespace {

class DegradationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DeactivateAll();
    auto pipeline = workload::MakeUniversityPipeline();
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    pipeline_ = std::make_unique<Pipeline>(std::move(pipeline).value());
  }
  void TearDown() override { failpoint::DeactivateAll(); }

  static failpoint::Action ErrorAction(std::string message = "injected") {
    failpoint::Action action;
    action.kind = failpoint::ActionKind::kError;
    action.status = InternalError(std::move(message));
    return action;
  }

  static PipelineOptions FailClosed() {
    PipelineOptions options;
    options.governance.fail_open = false;
    return options;
  }

  std::unique_ptr<Pipeline> pipeline_;
};

TEST_F(DegradationTest, Step3FailpointDegradesToOriginal) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::ScopedTracer install_tracer(&tracer);
  obs::ScopedMetrics install_metrics(&metrics);

  failpoint::Activate("optimizer.optimize", ErrorAction());
  auto result = pipeline_->OptimizeText(workload::QueryScopeReduction());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  EXPECT_NE(result->degradation_reason.find("injected"), std::string::npos);
  ASSERT_EQ(result->alternatives.size(), 1u);
  const Alternative& alt = result->alternatives[0];
  EXPECT_EQ(alt.datalog.ToString(), result->original_datalog.ToString());
  EXPECT_TRUE(alt.oql_ok);
  EXPECT_TRUE(alt.derivation.empty());
  EXPECT_EQ(result->best_index, 0);

  EXPECT_EQ(metrics.CounterValue("optimize.degraded"), 1u);
  EXPECT_GE(metrics.CounterValue("failpoint.trips"), 1u);
  // Degradation is an event in the trace JSON, reason attached.
  EXPECT_NE(tracer.ToJson().find("pipeline.degraded"), std::string::npos);
}

TEST_F(DegradationTest, Step3FailpointFailsClosedWhenOptedOut) {
  auto pipeline = workload::MakeUniversityPipeline(FailClosed());
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  failpoint::Activate("optimizer.optimize", ErrorAction());
  auto result = pipeline->OptimizeText(workload::QueryScopeReduction());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(result.status().message(), "injected");
}

TEST_F(DegradationTest, ResidueApplicationFailpointDegrades) {
  failpoint::Activate("optimizer.apply_residue", ErrorAction("residue boom"));
  auto result = pipeline_->OptimizeText(workload::QueryScopeReduction());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(failpoint::TripCount("optimizer.apply_residue"), 1u)
      << "the query must actually exercise residue application";
  EXPECT_TRUE(result->degraded);
  EXPECT_NE(result->degradation_reason.find("residue boom"), std::string::npos);
  ASSERT_EQ(result->alternatives.size(), 1u);
  EXPECT_EQ(result->alternatives[0].datalog.ToString(),
            result->original_datalog.ToString());
}

TEST_F(DegradationTest, InjectedDeadlineExpiryDegrades) {
  obs::MetricsRegistry metrics;
  obs::ScopedMetrics install_metrics(&metrics);
  failpoint::Action expire;
  expire.kind = failpoint::ActionKind::kExpireDeadline;
  failpoint::Activate("optimizer.apply_residue", expire);

  auto result = pipeline_->OptimizeText(workload::QueryScopeReduction());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  EXPECT_NE(result->degradation_reason.find("deadline exceeded"),
            std::string::npos);
  ASSERT_EQ(result->alternatives.size(), 1u);
  EXPECT_EQ(result->alternatives[0].datalog.ToString(),
            result->original_datalog.ToString());
  EXPECT_EQ(metrics.CounterValue("optimize.degraded"), 1u);
  EXPECT_EQ(metrics.CounterValue("optimize.deadline_exceeded"), 1u);
}

TEST_F(DegradationTest, InjectedDeadlineExpiryFailsClosedWhenOptedOut) {
  auto pipeline = workload::MakeUniversityPipeline(FailClosed());
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  failpoint::Action expire;
  expire.kind = failpoint::ActionKind::kExpireDeadline;
  failpoint::Activate("optimizer.apply_residue", expire);
  auto result = pipeline->OptimizeText(workload::QueryScopeReduction());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(DegradationTest, CancellationDegradesFailOpen) {
  failpoint::Action cancel;
  cancel.kind = failpoint::ActionKind::kCancel;
  failpoint::Activate("optimizer.apply_residue", cancel);
  auto result = pipeline_->OptimizeText(workload::QueryScopeReduction());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  EXPECT_NE(result->degradation_reason.find("cancellation"), std::string::npos);
}

TEST_F(DegradationTest, RealDeadlineWithInjectedDelayDegrades) {
  // The one test that uses a wall clock: a 1ms deadline plus a 20ms
  // injected delay inside residue application. The charge-stride poll and
  // the search-boundary check must observe the expiry.
  PipelineOptions options;
  options.governance.deadline_ms = 1;
  auto pipeline = workload::MakeUniversityPipeline(options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  failpoint::Action delay;
  delay.kind = failpoint::ActionKind::kDelayMs;
  delay.delay_ms = 20;
  delay.max_trips = 1;
  failpoint::Activate("optimizer.apply_residue", delay);
  auto result = pipeline->OptimizeText(workload::QueryScopeReduction());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  EXPECT_NE(result->degradation_reason.find("deadline exceeded"),
            std::string::npos);
}

TEST_F(DegradationTest, Step2FailpointIsAHardError) {
  // Nothing to degrade to before the query is translated: fail-open does
  // not apply to Step 2.
  failpoint::Activate("translate.query", ErrorAction("step2 down"));
  auto result = pipeline_->OptimizeText(workload::QueryScopeReduction());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "step2 down");
}

TEST_F(DegradationTest, CompileFailpointFailsCreate) {
  failpoint::Activate("compile.semantics", ErrorAction("compile down"));
  auto pipeline = workload::MakeUniversityPipeline();
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().message(), "compile down");
}

TEST_F(DegradationTest, Step4FailpointKeepsDatalogAlternatives) {
  // Step-4 failures were already per-alternative soft errors; the failpoint
  // proves the path: rewritten alternatives lose their OQL rendering but
  // the result is not degraded and the original stays intact.
  failpoint::Activate("change_map.step4", ErrorAction("step4 down"));
  auto result = pipeline_->OptimizeText(workload::QueryScopeReduction());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->degraded);
  ASSERT_GT(result->alternatives.size(), 1u);
  EXPECT_TRUE(result->alternatives[0].oql_ok);
  for (size_t i = 0; i < result->alternatives.size(); ++i) {
    const Alternative& alt = result->alternatives[i];
    if (alt.derivation.empty()) continue;  // the original, Step 4 is identity
    EXPECT_FALSE(alt.oql_ok);
    EXPECT_NE(alt.oql_error.find("step4 down"), std::string::npos);
  }
}

TEST_F(DegradationTest, ResidueBudgetExhaustionDegrades) {
  PipelineOptions options;
  options.governance.budgets.residue_applications = 1;
  auto pipeline = workload::MakeUniversityPipeline(options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto result = pipeline->OptimizeText(workload::QueryScopeReduction());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  EXPECT_NE(result->degradation_reason.find("budget exceeded"),
            std::string::npos);
}

TEST_F(DegradationTest, AlternativesBudgetExhaustionDegrades) {
  PipelineOptions options;
  options.governance.budgets.alternatives = 1;
  auto pipeline = workload::MakeUniversityPipeline(options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  // The join-elimination query explores a richer rewriting space than the
  // single-residue scope reduction, so a budget of one must trip.
  auto result = pipeline->OptimizeText(workload::QueryJoinElimination());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  EXPECT_NE(result->degradation_reason.find("alternative budget"),
            std::string::npos);
}

TEST_F(DegradationTest, GenerousGovernanceDoesNotDegrade) {
  PipelineOptions options;
  options.governance.deadline_ms = 60'000;
  options.governance.budgets.residue_applications = 1'000'000;
  options.governance.budgets.alternatives = 1'000'000;
  auto governed = workload::MakeUniversityPipeline(options);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  auto with = governed->OptimizeText(workload::QueryScopeReduction());
  auto without = pipeline_->OptimizeText(workload::QueryScopeReduction());
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(with->degraded);
  // Governance within budget must not change the optimization outcome.
  EXPECT_EQ(with->alternatives.size(), without->alternatives.size());
}

TEST_F(DegradationTest, ExternalContextTakesPrecedence) {
  // The caller's installed context governs; the pipeline's own generous
  // GovernanceOptions are ignored when one is already present.
  PipelineOptions options;
  options.governance.deadline_ms = 60'000;
  auto pipeline = workload::MakeUniversityPipeline(options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ExecutionContext context;
  context.budgets().residue_applications = 1;
  ScopedContext install(&context);
  auto result = pipeline->OptimizeText(workload::QueryScopeReduction());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  EXPECT_NE(result->degradation_reason.find("budget exceeded"),
            std::string::npos);
}

TEST_F(DegradationTest, ExpiredExternalContextFailsBeforeTranslation) {
  // An already-expired caller context has nothing to degrade to: Step 2
  // cannot even run, so the error is hard despite fail-open.
  ExecutionContext context;
  context.ExpireDeadlineNow();
  ScopedContext install(&context);
  auto result = pipeline_->OptimizeText(workload::QueryScopeReduction());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(DegradationTest, DisjunctiveDegradesPerDisjunct) {
  // Trip Step 3 only on its second invocation: disjunct 0 optimizes fully,
  // disjunct 1 degrades — the union survives and stays complete.
  failpoint::Action second_call = ErrorAction("disjunct 1 boom");
  second_call.trigger_after = 1;
  failpoint::Activate("optimizer.optimize", second_call);
  const std::string oql =
      "select x.name from x in Person where x.age < 30 or x.age > 65";
  auto result = pipeline_->OptimizeDisjunctiveText(oql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->disjuncts.size(), 2u);
  EXPECT_TRUE(result->degraded);
  ASSERT_EQ(result->degraded_disjuncts.size(), 1u);
  EXPECT_EQ(result->degraded_disjuncts[0], 1u);
  EXPECT_TRUE(result->complete());
  EXPECT_EQ(result->live.size(), 2u);
  EXPECT_FALSE(result->disjuncts[0].degraded);
  EXPECT_TRUE(result->disjuncts[1].degraded);
  ASSERT_EQ(result->disjuncts[1].alternatives.size(), 1u);
  EXPECT_EQ(result->disjuncts[1].alternatives[0].datalog.ToString(),
            result->disjuncts[1].original_datalog.ToString());
}

TEST_F(DegradationTest, DisjunctiveStep2FailureIsRecordedNotFatal) {
  // A disjunct that cannot even be translated (Step-2 failpoint on the
  // second call) is recorded as failed; the union is explicitly partial.
  failpoint::Action second_call = ErrorAction("translate down");
  second_call.trigger_after = 1;
  failpoint::Activate("translate.query", second_call);
  const std::string oql =
      "select x.name from x in Person where x.age < 30 or x.age > 65";
  auto result = pipeline_->OptimizeDisjunctiveText(oql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  ASSERT_EQ(result->failed.size(), 1u);
  EXPECT_EQ(result->failed[0], 1u);
  ASSERT_EQ(result->failure_reasons.size(), 1u);
  EXPECT_NE(result->failure_reasons[0].find("translate down"),
            std::string::npos);
  EXPECT_FALSE(result->complete());
  EXPECT_FALSE(result->all_eliminated());
  EXPECT_EQ(result->live.size(), 1u);
}

TEST_F(DegradationTest, DisjunctiveFailsClosedWhenOptedOut) {
  auto pipeline = workload::MakeUniversityPipeline(FailClosed());
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  failpoint::Activate("optimizer.optimize", ErrorAction());
  const std::string oql =
      "select x.name from x in Person where x.age < 30 or x.age > 65";
  auto result = pipeline->OptimizeDisjunctiveText(oql);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "injected");
}

TEST_F(DegradationTest, DeadlineWithoutFailOpenIsLinted) {
  PipelineOptions options;
  options.governance.deadline_ms = 50;
  options.governance.fail_open = false;
  auto pipeline = workload::MakeUniversityPipeline(options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  bool found = false;
  for (const analysis::Diagnostic& d : pipeline->ic_report().diagnostics) {
    if (d.code == analysis::kCodeDeadlineFailClosed) found = true;
  }
  EXPECT_TRUE(found) << "SQO-A011 expected for deadline + fail-closed";

  PipelineOptions open;
  open.governance.deadline_ms = 50;
  auto open_pipeline = workload::MakeUniversityPipeline(open);
  ASSERT_TRUE(open_pipeline.ok());
  for (const analysis::Diagnostic& d : open_pipeline->ic_report().diagnostics) {
    EXPECT_NE(d.code, analysis::kCodeDeadlineFailClosed);
  }
}

class EvalGovernanceTest : public DegradationTest {
 protected:
  void SetUp() override {
    DegradationTest::SetUp();
    db_ = std::make_unique<engine::Database>(&pipeline_->schema());
    workload::GeneratorConfig config;
    ASSERT_TRUE(workload::PopulateUniversity(config, *pipeline_, db_.get()).ok());
    auto result = pipeline_->OptimizeText(
        "select x.name from x in Person where x.age < 65");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    query_ = result->original_datalog;
  }

  std::unique_ptr<engine::Database> db_;
  datalog::Query query_;
};

TEST_F(EvalGovernanceTest, EvaluateFailpointSurfacesError) {
  failpoint::Activate("eval.evaluate", ErrorAction("eval down"));
  auto rows = db_->Run(query_);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().message(), "eval down");
}

TEST_F(EvalGovernanceTest, ScanFailpointSurfacesError) {
  failpoint::Activate("eval.scan", ErrorAction("scan down"));
  auto rows = db_->Run(query_);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().message(), "scan down");
  EXPECT_GE(failpoint::TripCount("eval.scan"), 1u);
}

TEST_F(EvalGovernanceTest, PlannerFailpointLatchesOnContext) {
  // PlanQuery returns a plain Plan, so the injected error latches on the
  // installed context and surfaces at the evaluator's next check.
  failpoint::Activate("eval.plan", ErrorAction("plan down"));
  ExecutionContext context;
  ScopedContext install(&context);
  auto rows = db_->Run(query_);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().message(), "plan down");
  EXPECT_GE(failpoint::TripCount("eval.plan"), 1u);
}

TEST_F(EvalGovernanceTest, RowBudgetStopsEvaluation) {
  ExecutionContext context;
  context.budgets().eval_rows = 2;
  ScopedContext install(&context);
  auto rows = db_->Run(query_);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rows.status().message().find("eval-row"), std::string::npos);
}

TEST_F(EvalGovernanceTest, JoinBudgetStopsEvaluation) {
  ExecutionContext context;
  context.budgets().eval_joins = 5;
  ScopedContext install(&context);
  auto rows = db_->Run(query_);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rows.status().message().find("eval-join"), std::string::npos);
}

TEST_F(EvalGovernanceTest, UngovernedEvaluationStillWorks) {
  auto rows = db_->Run(query_);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GT(rows->size(), 0u);
}

}  // namespace
}  // namespace sqo::core
