#include "odl/schema.h"

#include <gtest/gtest.h>

#include "odl/parser.h"
#include "workload/university.h"

namespace sqo::odl {
namespace {

sqo::Result<Schema> ResolveText(std::string_view text) {
  auto ast = ParseOdl(text);
  if (!ast.ok()) return ast.status();
  return Schema::Resolve(*ast);
}

TEST(SchemaTest, ResolvesUniversitySchema) {
  auto schema = ResolveText(workload::UniversityOdl());
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->classes().size(), 7u);
  EXPECT_EQ(schema->structs().size(), 1u);
  EXPECT_NE(schema->FindClass("Faculty"), nullptr);
  EXPECT_NE(schema->FindStruct("Address"), nullptr);
}

TEST(SchemaTest, InheritedAttributesFormPrefix) {
  auto schema = ResolveText(workload::UniversityOdl());
  ASSERT_TRUE(schema.ok());
  const ClassInfo* person = schema->FindClass("Person");
  const ClassInfo* faculty = schema->FindClass("Faculty");
  ASSERT_NE(person, nullptr);
  ASSERT_NE(faculty, nullptr);
  ASSERT_GE(faculty->all_attributes.size(), person->all_attributes.size());
  for (size_t i = 0; i < person->all_attributes.size(); ++i) {
    EXPECT_EQ(faculty->all_attributes[i].name, person->all_attributes[i].name);
  }
}

TEST(SchemaTest, SimpleAttributesBeforeStructs) {
  auto schema = ResolveText(
      "struct S { long x; };"
      "interface A { attribute S s; attribute long a; attribute string b; };");
  ASSERT_TRUE(schema.ok());
  const ClassInfo* a = schema->FindClass("A");
  ASSERT_EQ(a->own_attributes.size(), 3u);
  EXPECT_EQ(a->own_attributes[0].name, "a");
  EXPECT_EQ(a->own_attributes[1].name, "b");
  EXPECT_EQ(a->own_attributes[2].name, "s");
  EXPECT_TRUE(a->own_attributes[2].is_struct());
}

TEST(SchemaTest, IsSubclassOfIsReflexiveAndTransitive) {
  auto schema = ResolveText(workload::UniversityOdl());
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->IsSubclassOf("Faculty", "Faculty"));
  EXPECT_TRUE(schema->IsSubclassOf("Faculty", "Employee"));
  EXPECT_TRUE(schema->IsSubclassOf("Faculty", "Person"));
  EXPECT_TRUE(schema->IsSubclassOf("TA", "Person"));
  EXPECT_FALSE(schema->IsSubclassOf("Person", "Faculty"));
  EXPECT_FALSE(schema->IsSubclassOf("Student", "Employee"));
}

TEST(SchemaTest, Subclasses) {
  auto schema = ResolveText(workload::UniversityOdl());
  ASSERT_TRUE(schema.ok());
  auto direct = schema->DirectSubclasses("Person");
  ASSERT_EQ(direct.size(), 2u);
  auto all = schema->TransitiveSubclasses("Person");
  EXPECT_EQ(all.size(), 4u);  // Employee, Faculty, Student, TA
}

TEST(SchemaTest, FindMembersWalkInheritance) {
  auto schema = ResolveText(workload::UniversityOdl());
  ASSERT_TRUE(schema.ok());
  // takes is declared on Student; visible on TA.
  EXPECT_NE(schema->FindRelationship("TA", "takes"), nullptr);
  EXPECT_EQ(schema->FindRelationship("Person", "takes"), nullptr);
  // taxes_withheld declared on Employee; visible on Faculty.
  EXPECT_NE(schema->FindMethod("Faculty", "taxes_withheld"), nullptr);
  EXPECT_EQ(schema->FindMethod("Student", "taxes_withheld"), nullptr);
  // name declared on Person; visible everywhere.
  EXPECT_NE(schema->FindAttribute("TA", "name"), nullptr);
  EXPECT_NE(schema->FindStructField("Address", "city"), nullptr);
  EXPECT_EQ(schema->FindStructField("Address", "zip"), nullptr);
}

TEST(SchemaTest, OneToOneDetection) {
  auto schema = ResolveText(workload::UniversityOdl());
  ASSERT_TRUE(schema.ok());
  const ResolvedRelationship* has_ta = schema->FindRelationship("Section", "has_ta");
  ASSERT_NE(has_ta, nullptr);
  EXPECT_TRUE(has_ta->one_to_one);
  const ResolvedRelationship* takes = schema->FindRelationship("Student", "takes");
  ASSERT_NE(takes, nullptr);
  EXPECT_FALSE(takes->one_to_one);
  EXPECT_TRUE(takes->to_many);
}

TEST(SchemaTest, RejectsUnknownSuper) {
  EXPECT_FALSE(ResolveText("interface A : Missing {};").ok());
}

TEST(SchemaTest, RejectsInheritanceCycle) {
  EXPECT_FALSE(ResolveText("interface A : B {}; interface B : A {};").ok());
}

TEST(SchemaTest, RejectsDuplicateTypeNames) {
  EXPECT_FALSE(ResolveText("interface A {}; interface A {};").ok());
  EXPECT_FALSE(ResolveText("struct A { long x; }; interface A {};").ok());
}

TEST(SchemaTest, RejectsClassTypedAttribute) {
  auto schema = ResolveText(
      "interface B {}; interface A { attribute B other; };");
  ASSERT_FALSE(schema.ok());
  EXPECT_NE(schema.status().message().find("relationship"), std::string::npos);
}

TEST(SchemaTest, RejectsUnknownAttributeType) {
  EXPECT_FALSE(ResolveText("interface A { attribute Mystery m; };").ok());
}

TEST(SchemaTest, RejectsMemberRedeclaration) {
  EXPECT_FALSE(
      ResolveText("interface A { attribute long x; attribute string x; };").ok());
  // Shadowing an inherited member is also rejected.
  EXPECT_FALSE(ResolveText(
                   "interface A { attribute long x; };"
                   "interface B : A { attribute long x; };")
                   .ok());
}

TEST(SchemaTest, RejectsKeyOnNonAttribute) {
  EXPECT_FALSE(ResolveText("interface A { key missing; };").ok());
}

TEST(SchemaTest, KeyOnInheritedAttributeAllowed) {
  auto schema = ResolveText(
      "interface A { attribute string name; };"
      "interface B : A { key name; };");
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
}

TEST(SchemaTest, RejectsBadInverse) {
  // Inverse on the wrong class.
  EXPECT_FALSE(ResolveText(
                   "interface B {};"
                   "interface C {};"
                   "interface A { relationship B r inverse C::x; };")
                   .ok());
  // Inverse does not exist.
  EXPECT_FALSE(ResolveText(
                   "interface B {};"
                   "interface A { relationship B r inverse B::missing; };")
                   .ok());
  // Inverse exists but targets an unrelated class.
  EXPECT_FALSE(ResolveText(
                   "interface C {};"
                   "interface B { relationship C s; };"
                   "interface A { relationship B r inverse B::s; };")
                   .ok());
}

TEST(SchemaTest, RejectsCyclicStructNesting) {
  EXPECT_FALSE(ResolveText(
                   "struct A { B b; };"
                   "struct B { A a; };")
                   .ok());
}

TEST(SchemaTest, NestedStructsAllowed) {
  auto schema = ResolveText(
      "struct Inner { long x; };"
      "struct Outer { Inner i; string s; };"
      "interface A { attribute Outer o; };");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  const StructInfo* outer = schema->FindStruct("Outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->fields[0].name, "s");  // simple first
  EXPECT_TRUE(outer->fields[1].is_struct());
}

TEST(SchemaTest, RejectsMethodWithObjectParam) {
  EXPECT_FALSE(ResolveText(
                   "interface B {};"
                   "interface A { long m(in B arg); };")
                   .ok());
}

}  // namespace
}  // namespace sqo::odl
