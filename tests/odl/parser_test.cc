#include "odl/parser.h"

#include <gtest/gtest.h>

namespace sqo::odl {
namespace {

TEST(OdlParserTest, EmptySchema) {
  auto ast = ParseOdl("");
  ASSERT_TRUE(ast.ok());
  EXPECT_TRUE(ast->interfaces.empty());
  EXPECT_TRUE(ast->structs.empty());
}

TEST(OdlParserTest, StructDecl) {
  auto ast = ParseOdl("struct Address { string street; string city; };");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  ASSERT_EQ(ast->structs.size(), 1u);
  EXPECT_EQ(ast->structs[0].name, "Address");
  ASSERT_EQ(ast->structs[0].fields.size(), 2u);
  EXPECT_EQ(ast->structs[0].fields[0].name, "street");
  EXPECT_EQ(ast->structs[0].fields[0].type.base, BaseType::kString);
}

TEST(OdlParserTest, InterfaceWithMembers) {
  auto ast = ParseOdl(R"(
    interface Person {
      extent persons;
      key name;
      attribute string name;
      attribute long age;
    };
  )");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  ASSERT_EQ(ast->interfaces.size(), 1u);
  const InterfaceDecl& p = ast->interfaces[0];
  EXPECT_EQ(p.name, "Person");
  EXPECT_EQ(p.extent, "persons");
  EXPECT_EQ(p.keys, (std::vector<std::string>{"name"}));
  ASSERT_EQ(p.attributes.size(), 2u);
  EXPECT_EQ(p.attributes[1].type.base, BaseType::kLong);
  EXPECT_FALSE(p.super.has_value());
}

TEST(OdlParserTest, InheritanceColonAndExtends) {
  auto ast = ParseOdl(
      "interface A {};\n"
      "interface B : A {};\n"
      "interface C extends A {};");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_EQ(*ast->interfaces[1].super, "A");
  EXPECT_EQ(*ast->interfaces[2].super, "A");
}

TEST(OdlParserTest, Relationships) {
  auto ast = ParseOdl(R"(
    interface Section {};
    interface Student {
      relationship Set<Section> takes inverse Section::is_taken_by;
      relationship Section favorite;
    };
  )");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const InterfaceDecl& s = ast->interfaces[1];
  ASSERT_EQ(s.relationships.size(), 2u);
  EXPECT_TRUE(s.relationships[0].to_many());
  EXPECT_EQ(s.relationships[0].collection, CollectionKind::kSet);
  EXPECT_EQ(s.relationships[0].target, "Section");
  ASSERT_TRUE(s.relationships[0].inverse.has_value());
  EXPECT_EQ(s.relationships[0].inverse->first, "Section");
  EXPECT_EQ(s.relationships[0].inverse->second, "is_taken_by");
  EXPECT_FALSE(s.relationships[1].to_many());
  EXPECT_FALSE(s.relationships[1].inverse.has_value());
}

TEST(OdlParserTest, ListAndBagCollections) {
  auto ast = ParseOdl(R"(
    interface X {};
    interface Y {
      relationship List<X> l;
      relationship Bag<X> b;
    };
  )");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast->interfaces[1].relationships[0].collection, CollectionKind::kList);
  EXPECT_EQ(ast->interfaces[1].relationships[1].collection, CollectionKind::kBag);
}

TEST(OdlParserTest, Methods) {
  auto ast = ParseOdl(R"(
    interface Employee {
      double taxes_withheld(in double rate);
      void touch();
      long combine(in long a, in long b);
    };
  )");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const InterfaceDecl& e = ast->interfaces[0];
  ASSERT_EQ(e.methods.size(), 3u);
  EXPECT_EQ(e.methods[0].name, "taxes_withheld");
  ASSERT_EQ(e.methods[0].params.size(), 1u);
  EXPECT_EQ(e.methods[0].params[0].name, "rate");
  EXPECT_EQ(e.methods[1].return_type.base, BaseType::kVoid);
  EXPECT_EQ(e.methods[2].params.size(), 2u);
}

TEST(OdlParserTest, Comments) {
  auto ast = ParseOdl(R"(
    // line comment
    interface A {
      /* block
         comment */
      attribute long x;
    };
  )");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast->interfaces[0].attributes.size(), 1u);
}

TEST(OdlParserTest, KeywordsCaseInsensitive) {
  auto ast = ParseOdl("INTERFACE A { ATTRIBUTE STRING name; EXTENT all; };");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_EQ(ast->interfaces[0].attributes[0].name, "name");
}

TEST(OdlParserTest, TypeAliases) {
  auto ast = ParseOdl(
      "interface A { attribute short s; attribute real r; attribute bool b; "
      "attribute int i; };");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast->interfaces[0].attributes[0].type.base, BaseType::kLong);
  EXPECT_EQ(ast->interfaces[0].attributes[1].type.base, BaseType::kFloat);
  EXPECT_EQ(ast->interfaces[0].attributes[2].type.base, BaseType::kBoolean);
  EXPECT_EQ(ast->interfaces[0].attributes[3].type.base, BaseType::kLong);
}

TEST(OdlParserTest, ErrorMissingSemicolon) {
  auto ast = ParseOdl("interface A { attribute long x }");
  EXPECT_FALSE(ast.ok());
  EXPECT_EQ(ast.status().code(), sqo::StatusCode::kParseError);
}

TEST(OdlParserTest, ErrorUnexpectedTopLevel) {
  auto ast = ParseOdl("module M {};");
  EXPECT_FALSE(ast.ok());
}

TEST(OdlParserTest, ErrorCarriesLine) {
  auto ast = ParseOdl("interface A {\n  attribute ; \n};");
  ASSERT_FALSE(ast.ok());
  EXPECT_NE(ast.status().message().find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace sqo::odl
