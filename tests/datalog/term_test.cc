#include "datalog/term.h"

#include <gtest/gtest.h>

namespace sqo::datalog {
namespace {

TEST(TermTest, VariableBasics) {
  Term v = Term::Var("X");
  EXPECT_TRUE(v.is_variable());
  EXPECT_FALSE(v.is_constant());
  EXPECT_EQ(v.var_name(), "X");
  EXPECT_EQ(v.ToString(), "X");
}

TEST(TermTest, ConstantBasics) {
  Term c = Term::Int(5);
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(c.constant().AsInt(), 5);
  EXPECT_EQ(Term::String("a").ToString(), "\"a\"");
  EXPECT_EQ(Term::Bool(false).ToString(), "false");
  EXPECT_EQ(Term::FromOid(sqo::Oid(4)).ToString(), "@4");
}

TEST(TermTest, Equality) {
  EXPECT_EQ(Term::Var("X"), Term::Var("X"));
  EXPECT_NE(Term::Var("X"), Term::Var("Y"));
  EXPECT_NE(Term::Var("X"), Term::String("X"));
  EXPECT_EQ(Term::Int(1), Term::Double(1.0));  // semantic value equality
  EXPECT_NE(Term::Int(1), Term::Int(2));
}

TEST(TermTest, OrderVariablesBeforeConstants) {
  EXPECT_LT(Term::Var("Z"), Term::Int(0));
  EXPECT_LT(Term::Var("A"), Term::Var("B"));
}

TEST(TermTest, HashConsistentWithEquality) {
  EXPECT_EQ(Term::Var("X").Hash(), Term::Var("X").Hash());
  EXPECT_EQ(Term::Int(3).Hash(), Term::Double(3.0).Hash());
  // A variable named like a string constant must not collide semantically.
  EXPECT_NE(Term::Var("X"), Term::String("X"));
}

}  // namespace
}  // namespace sqo::datalog
