#include "datalog/signature.h"

#include <gtest/gtest.h>

namespace sqo::datalog {
namespace {

RelationSignature Sig(const std::string& name, RelationKind kind,
                      std::vector<std::string> attrs) {
  RelationSignature s;
  s.name = name;
  s.kind = kind;
  s.attributes = std::move(attrs);
  return s;
}

TEST(SignatureTest, AttributeIndex) {
  RelationSignature s =
      Sig("faculty", RelationKind::kClass, {"oid", "name", "salary"});
  EXPECT_EQ(s.AttributeIndex("oid"), 0u);
  EXPECT_EQ(s.AttributeIndex("salary"), 2u);
  EXPECT_EQ(s.AttributeIndex("rank"), std::nullopt);
  EXPECT_EQ(s.arity(), 3u);
}

TEST(SignatureTest, ToString) {
  RelationSignature s = Sig("takes", RelationKind::kRelationship, {"src", "dst"});
  EXPECT_EQ(s.ToString(), "takes(src, dst)");
}

TEST(SignatureTest, KindNames) {
  EXPECT_EQ(RelationKindName(RelationKind::kClass), "class");
  EXPECT_EQ(RelationKindName(RelationKind::kStructure), "structure");
  EXPECT_EQ(RelationKindName(RelationKind::kRelationship), "relationship");
  EXPECT_EQ(RelationKindName(RelationKind::kMethod), "method");
  EXPECT_EQ(RelationKindName(RelationKind::kAsr), "asr");
}

TEST(CatalogTest, AddFindGet) {
  RelationCatalog catalog;
  ASSERT_TRUE(catalog.Add(Sig("a", RelationKind::kClass, {"oid"})).ok());
  ASSERT_TRUE(catalog.Add(Sig("b", RelationKind::kClass, {"oid"})).ok());
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_NE(catalog.Find("a"), nullptr);
  EXPECT_EQ(catalog.Find("c"), nullptr);
  auto got = catalog.Get("b");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->name, "b");
  auto missing = catalog.Get("c");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), sqo::StatusCode::kNotFound);
}

TEST(CatalogTest, RejectsDuplicates) {
  RelationCatalog catalog;
  ASSERT_TRUE(catalog.Add(Sig("a", RelationKind::kClass, {"oid"})).ok());
  EXPECT_FALSE(catalog.Add(Sig("a", RelationKind::kMethod, {"oid"})).ok());
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(CatalogTest, IterationIsSortedByName) {
  RelationCatalog catalog;
  ASSERT_TRUE(catalog.Add(Sig("zeta", RelationKind::kClass, {"oid"})).ok());
  ASSERT_TRUE(catalog.Add(Sig("alpha", RelationKind::kClass, {"oid"})).ok());
  std::vector<std::string> names;
  for (const auto& [name, sig] : catalog.relations()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "zeta"}));
}

}  // namespace
}  // namespace sqo::datalog
