#include "datalog/clause.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace sqo::datalog {
namespace {

Clause Parse(const std::string& text) {
  auto result = ParseClauseText(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

Query ParseQ(const std::string& text) {
  auto result = ParseQueryText(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

TEST(ClauseTest, VariablesHeadFirstInOrder) {
  Clause c = Parse("Age > 30 <- faculty(X, Name, Age).");
  EXPECT_EQ(c.Variables(), (std::vector<std::string>{"Age", "X", "Name"}));
}

TEST(ClauseTest, RenamedApartIsConsistent) {
  Clause c = Parse("X = Y <- p(X, N), p(Y, N).");
  FreshVarGen gen("_C");
  Clause renamed = c.RenamedApart(&gen);
  // Shape is preserved.
  EXPECT_EQ(renamed.body.size(), 2u);
  // The shared variable N maps to one fresh name in both atoms.
  EXPECT_EQ(renamed.body[0].atom.args()[1], renamed.body[1].atom.args()[1]);
  // All variables are fresh.
  for (const std::string& v : renamed.Variables()) {
    EXPECT_EQ(v.substr(0, 2), "_C") << v;
  }
  // Head equality still relates the two OID variables.
  EXPECT_EQ(renamed.head->atom.lhs(), renamed.body[0].atom.args()[0]);
  EXPECT_EQ(renamed.head->atom.rhs(), renamed.body[1].atom.args()[0]);
}

TEST(ClauseTest, SubstitutedAppliesEverywhere) {
  Clause c = Parse("Age > 30 <- faculty(X, Age).");
  Substitution s;
  s.Bind("Age", Term::Int(40));
  Clause applied = c.Substituted(s);
  EXPECT_EQ(applied.head->atom.lhs(), Term::Int(40));
  EXPECT_EQ(applied.body[0].atom.args()[1], Term::Int(40));
}

TEST(ClauseTest, DenialToString) {
  Clause c = Parse("<- p(X), q(X).");
  EXPECT_TRUE(c.is_denial());
  EXPECT_EQ(c.ToString(), "false <- p(X), q(X).");
}

TEST(ClauseTest, FactToString) {
  Clause c = Parse("monotone(taxes_withheld, salary, increasing).");
  EXPECT_FALSE(c.is_denial());
  EXPECT_TRUE(c.body.empty());
}

TEST(QueryTest, VariablesAndComparisons) {
  Query q = ParseQ("q(Name) :- person(X, Name, Age), Age < 30.");
  EXPECT_EQ(q.Variables(), (std::vector<std::string>{"Name", "X", "Age"}));
  ASSERT_EQ(q.Comparisons().size(), 1u);
  EXPECT_EQ(q.Comparisons()[0].op(), CmpOp::kLt);
}

TEST(QueryTest, CanonicalKeyInvariantUnderRenaming) {
  Query a = ParseQ("q(Name) :- person(X, Name, Age), Age < 30.");
  Query b = ParseQ("q(M) :- person(Y, M, B), B < 30.");
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
}

TEST(QueryTest, CanonicalKeyInvariantUnderReordering) {
  Query a = ParseQ("q(N) :- person(X, N, A), A < 30, takes(X, Y).");
  Query b = ParseQ("q(N) :- takes(X, Y), A < 30, person(X, N, A).");
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
}

TEST(QueryTest, CanonicalKeyDistinguishesStructure) {
  Query a = ParseQ("q(N) :- person(X, N, A), A < 30.");
  Query b = ParseQ("q(N) :- person(X, N, A), A < 31.");
  Query c = ParseQ("q(N) :- person(X, N, A), A > 30.");
  Query d = ParseQ("q(A) :- person(X, N, A), A < 30.");
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
  EXPECT_NE(a.CanonicalKey(), c.CanonicalKey());
  EXPECT_NE(a.CanonicalKey(), d.CanonicalKey());
}

TEST(QueryTest, CanonicalKeySeesSharedVariables) {
  // Same shapes but different variable sharing.
  Query a = ParseQ("q(N) :- p(X, N), r(X, Y).");
  Query b = ParseQ("q(N) :- p(X, N), r(Z, Y).");
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
}

TEST(QueryTest, SubstitutedAppliesToHead) {
  Query q = ParseQ("q(N) :- p(X, N).");
  Substitution s;
  s.Bind("N", Term::String("john"));
  Query applied = q.Substituted(s);
  EXPECT_EQ(applied.head_args[0], Term::String("john"));
}

}  // namespace
}  // namespace sqo::datalog
