#include "datalog/substitution.h"

#include <gtest/gtest.h>

namespace sqo::datalog {
namespace {

TEST(SubstitutionTest, ApplyUnboundIsIdentity) {
  Substitution s;
  EXPECT_EQ(s.Apply(Term::Var("X")), Term::Var("X"));
  EXPECT_EQ(s.Apply(Term::Int(3)), Term::Int(3));
}

TEST(SubstitutionTest, ApplyFollowsChains) {
  Substitution s;
  s.Bind("X", Term::Var("Y"));
  s.Bind("Y", Term::Int(3));
  EXPECT_EQ(s.Apply(Term::Var("X")), Term::Int(3));
  EXPECT_EQ(s.Apply(Term::Var("Y")), Term::Int(3));
}

TEST(SubstitutionTest, ApplyToAtomAndLiteral) {
  Substitution s;
  s.Bind("X", Term::Int(1));
  Atom a = Atom::Pred("p", {Term::Var("X"), Term::Var("Z")});
  Atom applied = s.ApplyToAtom(a);
  EXPECT_EQ(applied.args()[0], Term::Int(1));
  EXPECT_EQ(applied.args()[1], Term::Var("Z"));

  Literal lit = Literal::Neg(a);
  Literal applied_lit = s.ApplyToLiteral(lit);
  EXPECT_FALSE(applied_lit.positive);
  EXPECT_EQ(applied_lit.atom, applied);
}

TEST(SubstitutionTest, ApplyToComparisonKeepsOp) {
  Substitution s;
  s.Bind("A", Term::Int(5));
  Atom cmp = Atom::Comparison(CmpOp::kLe, Term::Var("A"), Term::Var("B"));
  Atom applied = s.ApplyToAtom(cmp);
  EXPECT_EQ(applied.op(), CmpOp::kLe);
  EXPECT_EQ(applied.lhs(), Term::Int(5));
}

TEST(SubstitutionTest, EraseBinding) {
  Substitution s;
  s.Bind("X", Term::Int(1));
  EXPECT_TRUE(s.Contains("X"));
  s.EraseBinding("X");
  EXPECT_FALSE(s.Contains("X"));
  EXPECT_EQ(s.Apply(Term::Var("X")), Term::Var("X"));
}

TEST(SubstitutionTest, LookupReturnsRawBinding) {
  Substitution s;
  s.Bind("X", Term::Var("Y"));
  ASSERT_NE(s.Lookup("X"), nullptr);
  EXPECT_EQ(*s.Lookup("X"), Term::Var("Y"));  // raw, not resolved
  EXPECT_EQ(s.Lookup("Q"), nullptr);
}

TEST(SubstitutionTest, ToString) {
  Substitution s;
  s.Bind("X", Term::Int(1));
  EXPECT_EQ(s.ToString(), "{X -> 1}");
}

}  // namespace
}  // namespace sqo::datalog
