#include "datalog/parser.h"

#include <gtest/gtest.h>

namespace sqo::datalog {
namespace {

RelationCatalog MakeCatalog() {
  RelationCatalog catalog;
  RelationSignature faculty;
  faculty.name = "faculty";
  faculty.kind = RelationKind::kClass;
  faculty.attributes = {"oid", "name", "age", "salary"};
  EXPECT_TRUE(catalog.Add(faculty).ok());
  RelationSignature takes;
  takes.name = "takes";
  takes.kind = RelationKind::kRelationship;
  takes.attributes = {"src", "dst"};
  EXPECT_TRUE(catalog.Add(takes).ok());
  return catalog;
}

TEST(DatalogParserTest, SimpleRule) {
  auto clause = ParseClauseText("Age > 30 <- faculty(X, N, Age, S).");
  ASSERT_TRUE(clause.ok()) << clause.status().ToString();
  EXPECT_TRUE(clause->head.has_value());
  EXPECT_TRUE(clause->head->atom.is_comparison());
  EXPECT_EQ(clause->head->atom.op(), CmpOp::kGt);
  ASSERT_EQ(clause->body.size(), 1u);
  EXPECT_EQ(clause->body[0].atom.predicate(), "faculty");
  EXPECT_EQ(clause->body[0].atom.arity(), 4u);
}

TEST(DatalogParserTest, LabelIsCaptured) {
  auto clause = ParseClauseText("IC4: Age >= 30 <- faculty(X, N, Age, S).");
  ASSERT_TRUE(clause.ok());
  EXPECT_EQ(clause->label, "IC4");
}

TEST(DatalogParserTest, ColonDashArrow) {
  auto clause = ParseClauseText("p(X) :- q(X).");
  ASSERT_TRUE(clause.ok());
  EXPECT_EQ(clause->body.size(), 1u);
}

TEST(DatalogParserTest, Denial) {
  auto clause = ParseClauseText("<- p(X), q(X).");
  ASSERT_TRUE(clause.ok());
  EXPECT_TRUE(clause->is_denial());
  EXPECT_EQ(clause->body.size(), 2u);
}

TEST(DatalogParserTest, FalseHeadDenial) {
  auto clause = ParseClauseText("false <- p(X).");
  ASSERT_TRUE(clause.ok());
  EXPECT_TRUE(clause->is_denial());
}

TEST(DatalogParserTest, Fact) {
  auto clause = ParseClauseText("monotone(taxes_withheld, salary, increasing).");
  ASSERT_TRUE(clause.ok());
  EXPECT_TRUE(clause->body.empty());
  const Atom& head = clause->head->atom;
  EXPECT_EQ(head.args()[0], Term::String("taxes_withheld"));
}

TEST(DatalogParserTest, NumericSuffixes) {
  auto clause = ParseClauseText("p(40K, 2M, 10%, 1.5).");
  ASSERT_TRUE(clause.ok());
  const auto& args = clause->head->atom.args();
  EXPECT_EQ(args[0], Term::Int(40000));
  EXPECT_EQ(args[1], Term::Int(2000000));
  EXPECT_EQ(args[2], Term::Double(0.10));
  EXPECT_EQ(args[3], Term::Double(1.5));
}

TEST(DatalogParserTest, StringsAndBooleans) {
  auto clause = ParseClauseText("p(\"john doe\", true, false).");
  ASSERT_TRUE(clause.ok());
  const auto& args = clause->head->atom.args();
  EXPECT_EQ(args[0], Term::String("john doe"));
  EXPECT_EQ(args[1], Term::Bool(true));
  EXPECT_EQ(args[2], Term::Bool(false));
}

TEST(DatalogParserTest, AnonymousVariablesAreFresh) {
  auto clause = ParseClauseText("p(_, _) .");
  ASSERT_TRUE(clause.ok());
  const auto& args = clause->head->atom.args();
  ASSERT_TRUE(args[0].is_variable());
  ASSERT_TRUE(args[1].is_variable());
  EXPECT_NE(args[0].var_name(), args[1].var_name());
}

TEST(DatalogParserTest, NegatedLiteral) {
  auto clause = ParseClauseText("q(X) <- person(X), not faculty(X).");
  ASSERT_TRUE(clause.ok());
  EXPECT_TRUE(clause->body[0].positive);
  EXPECT_FALSE(clause->body[1].positive);
}

TEST(DatalogParserTest, ComparisonOperators) {
  auto program = ParseProgram(
      "a(X) <- X = 1. b(X) <- X != 1. c(X) <- X <> 1. d(X) <- X <= 1. "
      "e(X) <- X >= 1. f(X) <- X < 1. g(X) <- X > 1.");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->size(), 7u);
  EXPECT_EQ((*program)[0].body[0].atom.op(), CmpOp::kEq);
  EXPECT_EQ((*program)[1].body[0].atom.op(), CmpOp::kNe);
  EXPECT_EQ((*program)[2].body[0].atom.op(), CmpOp::kNe);
  EXPECT_EQ((*program)[3].body[0].atom.op(), CmpOp::kLe);
  EXPECT_EQ((*program)[4].body[0].atom.op(), CmpOp::kGe);
  EXPECT_EQ((*program)[5].body[0].atom.op(), CmpOp::kLt);
  EXPECT_EQ((*program)[6].body[0].atom.op(), CmpOp::kGt);
}

TEST(DatalogParserTest, NamedArgumentsExpandAgainstCatalog) {
  RelationCatalog catalog = MakeCatalog();
  auto clause =
      ParseClauseText("Salary > 40K <- faculty(oid: X, salary: Salary).",
                      &catalog);
  ASSERT_TRUE(clause.ok()) << clause.status().ToString();
  const Atom& atom = clause->body[0].atom;
  ASSERT_EQ(atom.arity(), 4u);
  EXPECT_EQ(atom.args()[0], Term::Var("X"));
  EXPECT_TRUE(atom.args()[1].is_variable());  // name: anonymous
  EXPECT_TRUE(atom.args()[2].is_variable());  // age: anonymous
  EXPECT_EQ(atom.args()[3], Term::Var("Salary"));
}

TEST(DatalogParserTest, NamedArgumentsRequireCatalog) {
  auto clause = ParseClauseText("p(a: X).");
  EXPECT_FALSE(clause.ok());
  EXPECT_EQ(clause.status().code(), sqo::StatusCode::kParseError);
}

TEST(DatalogParserTest, NamedArgumentsRejectUnknownAttribute) {
  RelationCatalog catalog = MakeCatalog();
  auto clause = ParseClauseText("X > 1 <- faculty(oid: X, rank: R).", &catalog);
  EXPECT_FALSE(clause.ok());
}

TEST(DatalogParserTest, NamedArgumentsRejectDuplicate) {
  RelationCatalog catalog = MakeCatalog();
  auto clause = ParseClauseText("X > 1 <- faculty(oid: X, oid: Y).", &catalog);
  EXPECT_FALSE(clause.ok());
}

TEST(DatalogParserTest, PositionalArityCheckedAgainstCatalog) {
  RelationCatalog catalog = MakeCatalog();
  auto clause = ParseClauseText("X > 1 <- faculty(X, N).", &catalog);
  EXPECT_FALSE(clause.ok());
  // Full arity is accepted.
  auto ok_clause = ParseClauseText("X > 1 <- faculty(X, N, A, S).", &catalog);
  EXPECT_TRUE(ok_clause.ok());
}

TEST(DatalogParserTest, Comments) {
  auto program = ParseProgram(
      "-- a comment line\n"
      "p(X) <- q(X).  // trailing comment\n"
      "-- final comment");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->size(), 1u);
}

TEST(DatalogParserTest, ErrorsCarryLineNumbers) {
  auto program = ParseProgram("p(X) <- q(X).\np(Y) <- .");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("line 2"), std::string::npos)
      << program.status().ToString();
}

TEST(DatalogParserTest, UnterminatedString) {
  auto clause = ParseClauseText("p(\"abc).");
  EXPECT_FALSE(clause.ok());
}

TEST(DatalogParserTest, QueryRequiresPredicateHead) {
  EXPECT_FALSE(ParseQueryText("X > 3 <- p(X).").ok());
  auto q = ParseQueryText("q(X) :- p(X), X > 3.");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->name, "q");
  EXPECT_EQ(q->head_args.size(), 1u);
  EXPECT_EQ(q->body.size(), 2u);
}

TEST(DatalogParserTest, ProgramParsesMultipleClauses) {
  auto program = ParseProgram(
      "IC1: Salary > 40K <- faculty(X, N, A, Salary).\n"
      "IC5: person(X) <- faculty(X, N, A, S).\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->size(), 2u);
  EXPECT_EQ((*program)[0].label, "IC1");
  EXPECT_EQ((*program)[1].label, "IC5");
}

}  // namespace
}  // namespace sqo::datalog
