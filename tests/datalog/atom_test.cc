#include "datalog/atom.h"

#include <gtest/gtest.h>

namespace sqo::datalog {
namespace {

TEST(CmpOpTest, NegateIsInvolution) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    EXPECT_EQ(NegateOp(NegateOp(op)), op);
  }
}

TEST(CmpOpTest, FlipIsInvolution) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    EXPECT_EQ(FlipOp(FlipOp(op)), op);
  }
}

TEST(CmpOpTest, EvalAgreesWithNegation) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    for (int c : {-1, 0, 1}) {
      EXPECT_NE(EvalCmp(op, c), EvalCmp(NegateOp(op), c));
    }
  }
}

TEST(CmpOpTest, EvalAgreesWithFlip) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    for (int c : {-1, 0, 1}) {
      EXPECT_EQ(EvalCmp(op, c), EvalCmp(FlipOp(op), -c));
    }
  }
}

TEST(AtomTest, PredicateAtom) {
  Atom a = Atom::Pred("student", {Term::Var("X"), Term::String("john")});
  EXPECT_TRUE(a.is_predicate());
  EXPECT_EQ(a.predicate(), "student");
  EXPECT_EQ(a.arity(), 2u);
  EXPECT_EQ(a.ToString(), "student(X, \"john\")");
}

TEST(AtomTest, ComparisonAtom) {
  Atom a = Atom::Comparison(CmpOp::kLt, Term::Var("Age"), Term::Int(30));
  EXPECT_TRUE(a.is_comparison());
  EXPECT_EQ(a.op(), CmpOp::kLt);
  EXPECT_EQ(a.ToString(), "Age < 30");
}

TEST(AtomTest, CollectVariablesDeduplicatesInOrder) {
  Atom a = Atom::Pred("p", {Term::Var("X"), Term::Var("Y"), Term::Var("X"),
                            Term::Int(1)});
  std::vector<std::string> vars;
  a.CollectVariables(&vars);
  EXPECT_EQ(vars, (std::vector<std::string>{"X", "Y"}));
}

TEST(AtomTest, Equality) {
  Atom a = Atom::Pred("p", {Term::Var("X")});
  Atom b = Atom::Pred("p", {Term::Var("X")});
  Atom c = Atom::Pred("p", {Term::Var("Y")});
  Atom d = Atom::Pred("q", {Term::Var("X")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(a, Atom::Comparison(CmpOp::kEq, Term::Var("X"), Term::Var("X")));
}

TEST(LiteralTest, NegativeComparisonNormalizes) {
  // ¬(a < b) is stored as a >= b.
  Literal lit = Literal::Neg(
      Atom::Comparison(CmpOp::kLt, Term::Var("A"), Term::Int(3)));
  EXPECT_TRUE(lit.positive);
  EXPECT_EQ(lit.atom.op(), CmpOp::kGe);
}

TEST(LiteralTest, ComplementOfPredicateFlipsSign) {
  Literal lit = Literal::Pos(Atom::Pred("p", {Term::Var("X")}));
  Literal comp = lit.Complement();
  EXPECT_FALSE(comp.positive);
  EXPECT_EQ(comp.atom, lit.atom);
  EXPECT_EQ(comp.Complement(), lit);
}

TEST(LiteralTest, ComplementOfComparisonNegatesOp) {
  Literal lit = Literal::Pos(
      Atom::Comparison(CmpOp::kGe, Term::Var("Age"), Term::Int(30)));
  Literal comp = lit.Complement();
  EXPECT_TRUE(comp.positive);
  EXPECT_EQ(comp.atom.op(), CmpOp::kLt);
}

TEST(LiteralTest, ToString) {
  EXPECT_EQ(Literal::Neg(Atom::Pred("faculty", {Term::Var("X")})).ToString(),
            "not faculty(X)");
  EXPECT_EQ(Literal::Pos(Atom::Pred("p", {})).ToString(), "p()");
}

}  // namespace
}  // namespace sqo::datalog
