#include "datalog/unify.h"

#include <gtest/gtest.h>

namespace sqo::datalog {
namespace {

TEST(UnifyTest, VariableBindsToConstant) {
  Substitution s;
  EXPECT_TRUE(UnifyTerms(Term::Var("X"), Term::Int(3), &s));
  EXPECT_EQ(s.Apply(Term::Var("X")), Term::Int(3));
}

TEST(UnifyTest, ConstantsUnifyIffEqual) {
  Substitution s;
  EXPECT_TRUE(UnifyTerms(Term::Int(3), Term::Double(3.0), &s));
  EXPECT_FALSE(UnifyTerms(Term::Int(3), Term::Int(4), &s));
}

TEST(UnifyTest, VariableChains) {
  Substitution s;
  EXPECT_TRUE(UnifyTerms(Term::Var("X"), Term::Var("Y"), &s));
  EXPECT_TRUE(UnifyTerms(Term::Var("Y"), Term::Int(5), &s));
  EXPECT_EQ(s.Apply(Term::Var("X")), Term::Int(5));
  // Now X and a conflicting constant must fail.
  EXPECT_FALSE(UnifyTerms(Term::Var("X"), Term::Int(6), &s));
}

TEST(UnifyTest, AtomsUnifyArgumentwise) {
  Substitution s;
  Atom a = Atom::Pred("p", {Term::Var("X"), Term::Int(1)});
  Atom b = Atom::Pred("p", {Term::String("c"), Term::Var("Y")});
  EXPECT_TRUE(UnifyAtoms(a, b, &s));
  EXPECT_EQ(s.Apply(Term::Var("X")), Term::String("c"));
  EXPECT_EQ(s.Apply(Term::Var("Y")), Term::Int(1));
}

TEST(UnifyTest, AtomsMismatch) {
  Substitution s;
  EXPECT_FALSE(UnifyAtoms(Atom::Pred("p", {Term::Var("X")}),
                          Atom::Pred("q", {Term::Var("X")}), &s));
  EXPECT_FALSE(UnifyAtoms(Atom::Pred("p", {Term::Var("X")}),
                          Atom::Pred("p", {Term::Var("X"), Term::Var("Y")}), &s));
}

TEST(MatcherTest, BindsOnlyDeclaredVariables) {
  Matcher m({"P"});
  // Pattern variable P binds to the frozen target variable X.
  EXPECT_TRUE(m.MatchTerm(Term::Var("P"), Term::Var("X")));
  // Frozen variable Q (not bindable) cannot match a different target.
  EXPECT_FALSE(m.MatchTerm(Term::Var("Q"), Term::Var("X")));
  // But matches itself.
  EXPECT_TRUE(m.MatchTerm(Term::Var("Q"), Term::Var("Q")));
}

TEST(MatcherTest, BoundPatternVarIsFrozenAfterwards) {
  Matcher m({"P"});
  EXPECT_TRUE(m.MatchTerm(Term::Var("P"), Term::Var("X")));
  // P now denotes the frozen X; it must not rebind to Y.
  EXPECT_FALSE(m.MatchTerm(Term::Var("P"), Term::Var("Y")));
  EXPECT_TRUE(m.MatchTerm(Term::Var("P"), Term::Var("X")));
}

TEST(MatcherTest, MatchAtomRollsBackOnFailure) {
  Matcher m({"P", "Q"});
  Atom pattern = Atom::Pred("p", {Term::Var("P"), Term::Var("Q"), Term::Int(1)});
  Atom target = Atom::Pred("p", {Term::Var("X"), Term::Var("Y"), Term::Int(2)});
  EXPECT_FALSE(m.MatchAtom(pattern, target));
  // Partial bindings from the failed match must be undone.
  EXPECT_FALSE(m.subst().Contains("P"));
  EXPECT_FALSE(m.subst().Contains("Q"));
}

TEST(MatcherTest, ExplicitMarkRollback) {
  Matcher m({"P"});
  size_t mark = m.Mark();
  EXPECT_TRUE(m.MatchTerm(Term::Var("P"), Term::Int(3)));
  EXPECT_TRUE(m.subst().Contains("P"));
  m.RollbackTo(mark);
  EXPECT_FALSE(m.subst().Contains("P"));
}

TEST(MatcherTest, ComparisonOpsMustAgree) {
  Matcher m({"A"});
  Atom lt = Atom::Comparison(CmpOp::kLt, Term::Var("A"), Term::Int(3));
  Atom target_lt = Atom::Comparison(CmpOp::kLt, Term::Var("X"), Term::Int(3));
  Atom target_le = Atom::Comparison(CmpOp::kLe, Term::Var("X"), Term::Int(3));
  EXPECT_TRUE(m.MatchAtom(lt, target_lt));
  Matcher m2({"A"});
  EXPECT_FALSE(m2.MatchAtom(lt, target_le));
}

TEST(MatcherTest, LiteralPolarityMustAgree) {
  Matcher m({"P"});
  Literal pos = Literal::Pos(Atom::Pred("p", {Term::Var("P")}));
  Literal neg_target = Literal::Neg(Atom::Pred("p", {Term::Var("X")}));
  EXPECT_FALSE(m.MatchLiteral(pos, neg_target));
}

TEST(MatcherTest, FrozenEquivHookExtendsMatching) {
  Matcher m({});
  EXPECT_FALSE(m.MatchTerm(Term::Var("X"), Term::Var("Y")));
  m.set_frozen_equiv([](const Term& a, const Term& b) {
    return a == Term::Var("X") && b == Term::Var("Y");
  });
  EXPECT_TRUE(m.MatchTerm(Term::Var("X"), Term::Var("Y")));
  EXPECT_FALSE(m.MatchTerm(Term::Var("Y"), Term::Var("X")));  // hook one-way
}

TEST(FreshVarGenTest, DistinctAndPrefixed) {
  FreshVarGen gen("_T");
  std::string a = gen.Next();
  std::string b = gen.Next();
  EXPECT_NE(a, b);
  EXPECT_EQ(a.substr(0, 2), "_T");
  EXPECT_TRUE(gen.NextVar().is_variable());
}

}  // namespace
}  // namespace sqo::datalog
