#include "datalog/program.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace sqo::datalog {
namespace {

RelationCatalog MakeCatalog() {
  RelationCatalog catalog;
  RelationSignature faculty;
  faculty.name = "faculty";
  faculty.kind = RelationKind::kClass;
  faculty.attributes = {"oid", "name", "age"};
  EXPECT_TRUE(catalog.Add(faculty).ok());
  return catalog;
}

std::vector<Clause> Parse(const std::string& text, const RelationCatalog* c) {
  auto parsed = ParseProgram(text, c);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *parsed;
}

TEST(ProgramTest, AcceptsValidClauses) {
  RelationCatalog catalog = MakeCatalog();
  auto program = Program::Create(
      Parse("IC4: Age >= 30 <- faculty(X, N, Age).\n"
            "key: X1 = X2 <- faculty(X1, N, A1), faculty(X2, N, A2).",
            &catalog),
      &catalog);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->size(), 2u);
  EXPECT_NE(program->FindLabel("IC4"), nullptr);
  EXPECT_EQ(program->FindLabel("IC9"), nullptr);
  EXPECT_EQ(program->WithLabelPrefix("key").size(), 1u);
}

TEST(ProgramTest, RejectsUnknownRelation) {
  RelationCatalog catalog = MakeCatalog();
  auto program = Program::Create(Parse("X > 1 <- student(X).", nullptr),
                                 &catalog);
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("student"), std::string::npos);
}

TEST(ProgramTest, RejectsArityMismatch) {
  RelationCatalog catalog = MakeCatalog();
  auto program =
      Program::Create(Parse("X > 1 <- faculty(X).", nullptr), &catalog);
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("arity"), std::string::npos);
}

TEST(ProgramTest, RejectsNonRangeRestrictedClause) {
  RelationCatalog catalog = MakeCatalog();
  // B occurs only in a body comparison — the body cannot be evaluated.
  auto program = Program::Create(
      Parse("X1 = X1 <- faculty(X1, N, A), A > B.", &catalog), &catalog);
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("range-restricted"),
            std::string::npos);
}

TEST(ProgramTest, HeadOnlyVariablesAreExistentialAndAllowed) {
  // Per the paper's footnote 1, head variables absent from the body are
  // existentially quantified — such clauses validate.
  RelationCatalog catalog = MakeCatalog();
  auto program = Program::Create(
      Parse("A > B <- faculty(X, N, A).", &catalog), &catalog);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
}

TEST(ProgramTest, MethodFactsAreExempt) {
  RelationCatalog catalog = MakeCatalog();
  auto program = Program::Create(
      Parse("monotone(taxes_withheld, salary, increasing).\n"
            "point(taxes_withheld, 30K, 10%, 3000).",
            &catalog),
      &catalog);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
}

TEST(ProgramTest, RejectsDuplicateLabels) {
  RelationCatalog catalog = MakeCatalog();
  auto program = Program::Create(
      Parse("A: Age > 1 <- faculty(X, N, Age).\n"
            "A: Age > 2 <- faculty(X, N, Age).",
            &catalog),
      &catalog);
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("duplicate"), std::string::npos);
}

TEST(ProgramTest, UnlabeledClausesNeverCollide) {
  RelationCatalog catalog = MakeCatalog();
  auto program = Program::Create(
      Parse("Age > 1 <- faculty(X, N, Age).\nAge > 2 <- faculty(X, N, Age).",
            &catalog),
      &catalog);
  EXPECT_TRUE(program.ok());
}

TEST(ProgramTest, AppendValidatesToo) {
  RelationCatalog catalog = MakeCatalog();
  auto program = Program::Create({}, &catalog);
  ASSERT_TRUE(program.ok());
  Clause bad = Parse("X > 1 <- nothing(X).", nullptr)[0];
  EXPECT_FALSE(program->Append(bad).ok());
  Clause good = Parse("Age > 1 <- faculty(X, N, Age).", &catalog)[0];
  EXPECT_TRUE(program->Append(good).ok());
  EXPECT_EQ(program->size(), 1u);
}

TEST(ProgramTest, ToStringIncludesLabels) {
  RelationCatalog catalog = MakeCatalog();
  auto program = Program::Create(
      Parse("IC4: Age >= 30 <- faculty(X, N, Age).", &catalog), &catalog);
  ASSERT_TRUE(program.ok());
  EXPECT_NE(program->ToString().find("IC4: "), std::string::npos);
}

TEST(ProgramTest, NullCatalogSkipsLookup) {
  auto program =
      Program::Create(Parse("X > 1 <- whatever(X).", nullptr), nullptr);
  EXPECT_TRUE(program.ok());
}

}  // namespace
}  // namespace sqo::datalog
