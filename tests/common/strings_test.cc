#include "common/strings.h"

#include <gtest/gtest.h>

namespace sqo {
namespace {

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"a"}, ", "), "a");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, StrSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit(",a,", ','), (std::vector<std::string>{"", "a", ""}));
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("AbC_9"), "abc_9");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("student_id", "student"));
  EXPECT_FALSE(StartsWith("id", "student"));
  EXPECT_TRUE(EndsWith("student_id", "_id"));
  EXPECT_FALSE(EndsWith("id", "student_id"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \n"), "a b");
  EXPECT_EQ(StripWhitespace("\t\n "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

}  // namespace
}  // namespace sqo
