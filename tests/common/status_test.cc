#include "common/status.h"

#include <gtest/gtest.h>

namespace sqo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, OkCodeDropsMessage) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, FactoriesProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(SemanticError("x").code(), StatusCode::kSemanticError);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(UnsupportedError("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
}

TEST(StatusTest, GovernanceCodesRenderNames) {
  EXPECT_EQ(ResourceExhaustedError("over budget").ToString(),
            "ResourceExhausted: over budget");
  EXPECT_EQ(CancelledError("stop").ToString(), "Cancelled: stop");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(ParseError("a"), ParseError("a"));
  EXPECT_FALSE(ParseError("a") == ParseError("b"));
  EXPECT_FALSE(ParseError("a") == SemanticError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SQO_ASSIGN_OR_RETURN(int half, Half(x));
  SQO_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return Status::Ok();
}

Status CheckAll(int a, int b) {
  SQO_RETURN_IF_ERROR(FailIfNegative(a));
  SQO_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckAll(1, 2).ok());
  EXPECT_FALSE(CheckAll(-1, 2).ok());
  EXPECT_FALSE(CheckAll(1, -2).ok());
}

}  // namespace
}  // namespace sqo
