#include "common/value.h"

#include <gtest/gtest.h>

namespace sqo {
namespace {

TEST(ValueTest, Kinds) {
  EXPECT_EQ(Value().kind(), ValueKind::kNull);
  EXPECT_EQ(Value::Int(1).kind(), ValueKind::kInt);
  EXPECT_EQ(Value::Double(1.5).kind(), ValueKind::kDouble);
  EXPECT_EQ(Value::String("a").kind(), ValueKind::kString);
  EXPECT_EQ(Value::Bool(true).kind(), ValueKind::kBool);
  EXPECT_EQ(Value::FromOid(Oid(3)).kind(), ValueKind::kOid);
}

TEST(ValueTest, NumericCrossKindEquality) {
  EXPECT_TRUE(Value::Int(1).Equals(Value::Double(1.0)));
  EXPECT_TRUE(Value::Double(2.0).Equals(Value::Int(2)));
  EXPECT_FALSE(Value::Int(1).Equals(Value::Double(1.5)));
}

TEST(ValueTest, DistinctKindsNeverEqual) {
  EXPECT_FALSE(Value::Int(1).Equals(Value::String("1")));
  EXPECT_FALSE(Value::Bool(true).Equals(Value::Int(1)));
  EXPECT_FALSE(Value::FromOid(Oid(1)).Equals(Value::Int(1)));
  EXPECT_FALSE(Value().Equals(Value::Int(0)));
  EXPECT_TRUE(Value().Equals(Value()));
}

TEST(ValueTest, NumericCompare) {
  EXPECT_EQ(Value::Int(1).Compare(Value::Int(2)), -1);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Double(3.5).Compare(Value::Int(3)), 1);
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.5)), -1);
}

TEST(ValueTest, StringCompare) {
  EXPECT_EQ(Value::String("a").Compare(Value::String("b")), -1);
  EXPECT_EQ(Value::String("b").Compare(Value::String("b")), 0);
  EXPECT_EQ(Value::String("c").Compare(Value::String("b")), 1);
}

TEST(ValueTest, UnorderedKindsCompareToNullopt) {
  EXPECT_EQ(Value::Bool(true).Compare(Value::Bool(false)), std::nullopt);
  EXPECT_EQ(Value::FromOid(Oid(1)).Compare(Value::FromOid(Oid(2))), std::nullopt);
  EXPECT_EQ(Value::Int(1).Compare(Value::String("1")), std::nullopt);
}

TEST(ValueTest, HashConsistentWithEquals) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_EQ(Value::String("xyz").Hash(), Value::String("xyz").Hash());
}

TEST(ValueTest, TotalOrderIsStrictWeak) {
  std::vector<Value> values = {Value::Int(3),         Value::Double(1.5),
                               Value::String("b"),    Value::String("a"),
                               Value::Bool(false),    Value::FromOid(Oid(9)),
                               Value::FromOid(Oid(2)), Value()};
  std::sort(values.begin(), values.end(), Value::TotalOrder);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_FALSE(Value::TotalOrder(values[i], values[i])) << i;
    for (size_t j = i + 1; j < values.size(); ++j) {
      EXPECT_FALSE(Value::TotalOrder(values[j], values[i]))
          << values[j].ToString() << " < " << values[i].ToString();
    }
  }
}

TEST(ValueTest, TotalOrderConsistentWithNumericEquality) {
  // 1 == 1.0 must not order either way.
  EXPECT_FALSE(Value::TotalOrder(Value::Int(1), Value::Double(1.0)));
  EXPECT_FALSE(Value::TotalOrder(Value::Double(1.0), Value::Int(1)));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Double(3.0).ToString(), "3.0");
  EXPECT_EQ(Value::String("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::FromOid(Oid(7)).ToString(), "@7");
  EXPECT_EQ(Value().ToString(), "null");
}

TEST(OidTest, Basics) {
  EXPECT_FALSE(Oid().valid());
  EXPECT_TRUE(Oid(1).valid());
  EXPECT_EQ(Oid(3), Oid(3));
  EXPECT_NE(Oid(3), Oid(4));
  EXPECT_LT(Oid(3), Oid(4));
}

}  // namespace
}  // namespace sqo
