#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace sqo {
namespace {

TEST(Crc32cTest, CheckValue) {
  // The standard CRC-32C check value: crc("123456789") = 0xE3069283.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, EmptyIsZero) { EXPECT_EQ(Crc32c(""), 0u); }

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 (iSCSI) appendix vectors.
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  const std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
  std::string ascending(32, '\0');
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<char>(i);
  EXPECT_EQ(Crc32c(ascending), 0x46DD794Eu);
}

TEST(Crc32cTest, ExtendMatchesConcatenation) {
  const std::string a = "hello, ";
  const std::string b = "world";
  EXPECT_EQ(Crc32cExtend(Crc32c(a), b.data(), b.size()), Crc32c(a + b));
  // Extending with nothing is the identity.
  EXPECT_EQ(Crc32cExtend(Crc32c(a), b.data(), 0), Crc32c(a));
}

TEST(Crc32cTest, SensitiveToEveryByteFlip) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t crc = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] ^= 0x01;
    EXPECT_NE(Crc32c(mutated), crc) << "flip at byte " << i;
  }
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu, 0xE3069283u}) {
    EXPECT_EQ(UnmaskCrc32c(MaskCrc32c(crc)), crc);
    EXPECT_NE(MaskCrc32c(crc), crc);  // the point of masking
  }
}

}  // namespace
}  // namespace sqo
