#include "common/env.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"

namespace sqo::fs {
namespace {

/// Per-test scratch directory (the test name keeps `ctest -j` runs of
/// sibling tests from wiping each other's files).
std::string FreshDir() {
  std::string dir = ::testing::TempDir() + "sqo_env";
  if (const ::testing::TestInfo* info =
          ::testing::UnitTest::GetInstance()->current_test_info();
      info != nullptr) {
    dir += std::string("_") + info->name();
    std::replace(dir.begin(), dir.end(), '/', '_');
  }
  Env& env = *Env::Default();
  EXPECT_TRUE(env.EnsureDir(dir).ok());
  if (auto names = env.ListDir(dir); names.ok()) {
    for (const std::string& name : *names) {
      (void)env.RemoveFile(dir + "/" + name);
    }
  }
  return dir;
}

std::vector<std::string> TmpLeftovers(Env& env, const std::string& dir) {
  std::vector<std::string> tmps;
  if (auto names = env.ListDir(dir); names.ok()) {
    for (const std::string& name : *names) {
      if (name.find(".tmp.") != std::string::npos) tmps.push_back(name);
    }
  }
  return tmps;
}

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DeactivateAll();
    dir_ = FreshDir();
  }
  void TearDown() override { failpoint::DeactivateAll(); }

  std::string dir_;
  FaultInjectingEnv env_;  // default plan: no faults
};

TEST_F(EnvTest, PosixWritableFileRoundTrip) {
  Env& env = *Env::Default();
  const std::string path = dir_ + "/round_trip.bin";
  auto file = env.OpenTrunc(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  EXPECT_EQ((*file)->size(), 11u);
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());

  auto read = env.ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello world");
  auto size = env.FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);

  // Append mode resumes at the existing size.
  auto again = env.OpenAppend(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->size(), 11u);
  ASSERT_TRUE((*again)->Append("!").ok());
  ASSERT_TRUE((*again)->Close().ok());
  EXPECT_EQ(*env.ReadFile(path), "hello world!");
}

TEST_F(EnvTest, EnospcFailsTheCrossingAppendAndKeepsThePrefix) {
  FaultPlan plan;
  plan.enospc_after_bytes = 10;
  env_.set_plan(plan);

  const std::string path = dir_ + "/enospc.bin";
  auto file = env_.OpenTrunc(path);
  ASSERT_TRUE(file.ok());
  const Status failed = (*file)->Append("0123456789ABCDEF");  // 16 bytes
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("no space"), std::string::npos)
      << failed.ToString();
  // The disk filled mid-write: the prefix up to the threshold landed.
  EXPECT_EQ(env_.bytes_written(), 10u);
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(*env_.ReadFile(path), "0123456789");

  // The disk stays full: any later append fails without writing a byte.
  auto more = env_.OpenAppend(path);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE((*more)->Append("x").ok());
  EXPECT_EQ(env_.bytes_written(), 10u);
}

TEST_F(EnvTest, TornWriteCutsAtTheExactByte) {
  FaultPlan plan;
  plan.torn_write_at_byte = 6;
  env_.set_plan(plan);

  const std::string path = dir_ + "/torn.bin";
  auto file = env_.OpenTrunc(path);
  ASSERT_TRUE(file.ok());
  const Status failed = (*file)->Append("0123456789");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(env_.bytes_written(), 6u);
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(*env_.ReadFile(path), "012345");
}

TEST_F(EnvTest, FailedSyncIsSticky) {
  FaultPlan plan;
  plan.fail_sync_at = 1;  // first sync is fine, the disk dies on the second
  env_.set_plan(plan);

  const std::string path = dir_ + "/sync.bin";
  auto file = env_.OpenTrunc(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("a").ok());
  EXPECT_TRUE((*file)->Sync().ok());
  EXPECT_FALSE((*file)->Sync().ok());
  // A dead disk stays dead: every later sync fails too.
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_EQ(env_.syncs(), 3u);
}

TEST_F(EnvTest, CloseAndRenameFailAtTheirIndexOnly) {
  FaultPlan plan;
  plan.fail_close_at = 0;
  plan.fail_rename_at = 0;
  env_.set_plan(plan);

  const std::string path = dir_ + "/close.bin";
  {
    auto file = env_.OpenTrunc(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("a").ok());
    EXPECT_FALSE((*file)->Close().ok());
  }
  {
    auto file = env_.OpenTrunc(path);
    ASSERT_TRUE(file.ok());
    EXPECT_TRUE((*file)->Close().ok());  // one-shot: index 1 succeeds
  }
  EXPECT_EQ(env_.closes(), 2u);

  EXPECT_FALSE(env_.RenameFile(path, dir_ + "/renamed.bin").ok());
  EXPECT_TRUE(env_.RenameFile(path, dir_ + "/renamed.bin").ok());
  EXPECT_EQ(env_.renames(), 2u);
}

TEST_F(EnvTest, SetPlanResetsTheCounters) {
  FaultPlan plan;
  plan.enospc_after_bytes = 4;
  env_.set_plan(plan);

  const std::string path = dir_ + "/reset.bin";
  auto file = env_.OpenTrunc(path);
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("0123456789").ok());
  EXPECT_EQ(env_.bytes_written(), 4u);
  ASSERT_TRUE((*file)->Close().ok());

  env_.set_plan(FaultPlan{});  // clears faults and counters alike
  EXPECT_EQ(env_.bytes_written(), 0u);
  auto again = env_.OpenTrunc(path);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE((*again)->Append("0123456789").ok());
  EXPECT_TRUE((*again)->Close().ok());
  EXPECT_EQ(env_.bytes_written(), 10u);
}

TEST_F(EnvTest, WriteFileAtomicPublishesThroughAFaultFreeEnv) {
  const std::string path = dir_ + "/atomic.bin";
  ASSERT_TRUE(WriteFileAtomic(env_, path, "v1").ok());
  EXPECT_EQ(*env_.ReadFile(path), "v1");
  ASSERT_TRUE(WriteFileAtomic(env_, path, "v2").ok());
  EXPECT_EQ(*env_.ReadFile(path), "v2");
  EXPECT_TRUE(TmpLeftovers(env_, dir_).empty());
}

TEST_F(EnvTest, WriteFileAtomicFailedSyncKeepsTheOldFile) {
  const std::string path = dir_ + "/atomic.bin";
  ASSERT_TRUE(WriteFileAtomic(*Env::Default(), path, "old").ok());

  FaultPlan plan;
  plan.fail_sync_at = 0;  // the tmp file's fsync
  env_.set_plan(plan);
  EXPECT_FALSE(WriteFileAtomic(env_, path, "new").ok());
  EXPECT_EQ(*env_.ReadFile(path), "old");
  EXPECT_TRUE(TmpLeftovers(env_, dir_).empty());
}

TEST_F(EnvTest, WriteFileAtomicFailedCloseKeepsTheOldFile) {
  // The close-time error path: every write call succeeded, but the close
  // reports that buffered bytes may never have reached the file. Treating
  // it as success would publish a file whose contents were lost.
  const std::string path = dir_ + "/atomic.bin";
  ASSERT_TRUE(WriteFileAtomic(*Env::Default(), path, "old").ok());

  FaultPlan plan;
  plan.fail_close_at = 0;
  env_.set_plan(plan);
  const Status failed = WriteFileAtomic(env_, path, "new");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(*env_.ReadFile(path), "old");
  EXPECT_TRUE(TmpLeftovers(env_, dir_).empty());
}

TEST_F(EnvTest, WriteFileAtomicFailedRenameKeepsTheOldFile) {
  const std::string path = dir_ + "/atomic.bin";
  ASSERT_TRUE(WriteFileAtomic(*Env::Default(), path, "old").ok());

  FaultPlan plan;
  plan.fail_rename_at = 0;
  env_.set_plan(plan);
  EXPECT_FALSE(WriteFileAtomic(env_, path, "new").ok());
  EXPECT_EQ(*env_.ReadFile(path), "old");
  EXPECT_TRUE(TmpLeftovers(env_, dir_).empty());
}

TEST_F(EnvTest, WriteFileAtomicEnospcKeepsTheOldFile) {
  const std::string path = dir_ + "/atomic.bin";
  ASSERT_TRUE(WriteFileAtomic(*Env::Default(), path, "old").ok());

  FaultPlan plan;
  plan.enospc_after_bytes = 2;
  env_.set_plan(plan);
  EXPECT_FALSE(WriteFileAtomic(env_, path, "new-but-longer").ok());
  EXPECT_EQ(*env_.ReadFile(path), "old");
  EXPECT_TRUE(TmpLeftovers(env_, dir_).empty());
}

TEST_F(EnvTest, WriteFileAtomicRenameFailpointBlocksPublication) {
  const std::string path = dir_ + "/atomic.bin";
  ASSERT_TRUE(WriteFileAtomic(*Env::Default(), path, "old").ok());

  failpoint::Action action;
  action.status = InternalError("injected rename failure");
  action.max_trips = 1;
  failpoint::Activate("storage.rename", action);
  EXPECT_FALSE(WriteFileAtomic(*Env::Default(), path, "new").ok());
  EXPECT_EQ(*Env::Default()->ReadFile(path), "old");
  EXPECT_TRUE(WriteFileAtomic(*Env::Default(), path, "new").ok());
  EXPECT_EQ(*Env::Default()->ReadFile(path), "new");
}

}  // namespace
}  // namespace sqo::fs
