#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sqo {
namespace {

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultSize(), 1u);
  EXPECT_LE(ThreadPool::DefaultSize(), 8u);
}

TEST(ThreadPoolTest, RunBatchRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.RunBatch(std::move(tasks));
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, RunBatchSlotWritesAreVisible) {
  // The parallel-profiling pattern: each task owns one output slot; after
  // RunBatch returns every slot must be written and visible.
  ThreadPool pool(3);
  std::vector<int> slots(64, 0);
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < slots.size(); ++i) {
    tasks.push_back([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
  }
  pool.RunBatch(std::move(tasks));
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i) + 1);
  }
}

TEST(ThreadPoolTest, EmptyBatchReturnsImmediately) {
  ThreadPool pool(2);
  pool.RunBatch({});
}

TEST(ThreadPoolTest, DestructorDrainsSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool finishes the queue before joining
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, SingleWorkerStillCompletesBatch) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 10; ++i) {
    tasks.push_back([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  pool.RunBatch(std::move(tasks));
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPoolTest, ZeroRequestedThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.RunBatch({[&ran] { ran = true; }});
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, BatchesCanBeReusedAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int round = 0; round < 5; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.push_back([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.RunBatch(std::move(tasks));
  }
  EXPECT_EQ(ran.load(), 40);
}

}  // namespace
}  // namespace sqo
