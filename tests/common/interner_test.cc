#include "common/interner.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace sqo {
namespace {

TEST(InternerTest, SameTextSameSymbol) {
  Symbol a = Intern("faculty");
  Symbol b = Intern(std::string("fac") + "ulty");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.str(), "faculty");
  EXPECT_EQ(a.view(), "faculty");
}

TEST(InternerTest, DistinctTextDistinctSymbol) {
  Symbol a = Intern("interner_distinct_a");
  Symbol b = Intern("interner_distinct_b");
  EXPECT_NE(a, b);
  EXPECT_NE(a.id(), b.id());
}

TEST(InternerTest, DefaultSymbolIsEmptyString) {
  Symbol def;
  EXPECT_TRUE(def.empty());
  EXPECT_EQ(def, Intern(""));
  EXPECT_EQ(def.str(), "");
  EXPECT_FALSE(Intern("x").empty());
}

TEST(InternerTest, OrderingIsLexicographicNotInsertionOrder) {
  // Canonical orders downstream (substitution rendering, std::map
  // iteration) must not depend on which string happened to intern first.
  Symbol z = Intern("zzz_order_probe");
  Symbol a = Intern("aaa_order_probe");
  EXPECT_LT(a, z);
  EXPECT_FALSE(z < a);
  EXPECT_FALSE(a < Intern("aaa_order_probe"));  // irreflexive on equals
}

TEST(InternerTest, HashMatchesStdStringHash) {
  // Term/Atom hashes predate interning; Symbol::hash() must agree with
  // std::hash<std::string> so those hash values stayed put.
  for (const char* text : {"person", "faculty", "", "X", "_R1_V"}) {
    EXPECT_EQ(Intern(text).hash(), std::hash<std::string>()(text)) << text;
  }
}

TEST(InternerTest, InternerSizeCountsDistinctStrings) {
  const size_t before = InternerSize();
  Intern("interner_size_probe_1");
  Intern("interner_size_probe_2");
  Intern("interner_size_probe_1");  // duplicate: no growth
  EXPECT_EQ(InternerSize(), before + 2);
}

TEST(InternerTest, SymbolSetMembership) {
  SymbolSet set;
  set.insert(Intern("bindable_x"));
  set.insert(Intern("bindable_y"));
  EXPECT_EQ(set.count(Intern("bindable_x")), 1u);
  EXPECT_EQ(set.count(Intern("bindable_z")), 0u);
  EXPECT_EQ(set.size(), 2u);
}

TEST(InternerTest, ConcurrentInterningIsConsistent) {
  constexpr int kThreads = 8;
  std::vector<Symbol> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &results] {
      for (int i = 0; i < 500; ++i) {
        Intern("concurrent_intern_" + std::to_string(i % 16));
      }
      results[t] = Intern("concurrent_intern_0");
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(results[0], results[t]);
}

}  // namespace
}  // namespace sqo
