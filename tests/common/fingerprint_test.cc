#include "common/fingerprint.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace sqo {
namespace {

Fingerprint128 Sequence(std::initializer_list<uint64_t> values) {
  FingerprintBuilder fb;
  for (uint64_t v : values) fb.Append(v);
  return fb.fingerprint();
}

Fingerprint128 Multiset(std::initializer_list<uint64_t> values) {
  FingerprintBuilder fb;
  for (uint64_t v : values) fb.AppendUnordered(v);
  return fb.fingerprint();
}

TEST(FingerprintTest, AppendIsOrderSensitive) {
  EXPECT_EQ(Sequence({1, 2, 3}), Sequence({1, 2, 3}));
  EXPECT_NE(Sequence({1, 2, 3}), Sequence({3, 2, 1}));
  EXPECT_NE(Sequence({1, 2}), Sequence({1, 2, 0}));
}

TEST(FingerprintTest, AppendUnorderedIsOrderInsensitive) {
  EXPECT_EQ(Multiset({1, 2, 3}), Multiset({3, 1, 2}));
  // ... but still multiset-sensitive: multiplicity matters.
  EXPECT_NE(Multiset({1, 2, 2}), Multiset({1, 1, 2}));
  EXPECT_NE(Multiset({1, 2}), Multiset({1, 2, 2}));
}

TEST(FingerprintTest, CombineUnorderedEqualsUnionFingerprint) {
  // The optimizer accumulates per-predicate-group fingerprints and sums
  // the groups a residue needs; that sum must equal fingerprinting the
  // union multiset directly.
  EXPECT_EQ(CombineUnordered(Multiset({1, 2}), Multiset({3, 4, 4})),
            Multiset({4, 3, 2, 1, 4}));
}

TEST(FingerprintTest, ManyDistinctInputsNoCollision) {
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (uint64_t i = 0; i < 50'000; ++i) {
    Fingerprint128 fp = Sequence({i, i * 31});
    EXPECT_TRUE(seen.emplace(fp.lo, fp.hi).second) << "collision at " << i;
  }
}

TEST(FingerprintTest, LanesAreIndependent) {
  // A value that collides in one 64-bit lane is still separated by the
  // other; at minimum the lanes must not be identical functions.
  Fingerprint128 fp = Sequence({42});
  EXPECT_NE(fp.lo, fp.hi);
}

TEST(FingerprintTest, ComparatorsAndHash) {
  Fingerprint128 a = Sequence({1});
  Fingerprint128 b = Sequence({2});
  EXPECT_TRUE(a == a);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(a < b || b < a);
  std::unordered_set<Fingerprint128, FingerprintHash> set;
  set.insert(a);
  set.insert(b);
  set.insert(a);
  EXPECT_EQ(set.size(), 2u);
}

TEST(FingerprintTest, ToStringIsFixedWidthHex) {
  std::string text = Sequence({7}).ToString();
  EXPECT_EQ(text.size(), 32u);
  EXPECT_EQ(text.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(Fingerprint128{}.ToString(), std::string(32, '0'));
}

}  // namespace
}  // namespace sqo
