#include "translate/schema_translator.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "odl/parser.h"
#include "workload/university.h"

namespace sqo::translate {
namespace {

using datalog::Clause;
using datalog::RelationKind;
using datalog::RelationSignature;

TranslatedSchema University() {
  auto ast = odl::ParseOdl(workload::UniversityOdl());
  EXPECT_TRUE(ast.ok());
  auto schema = odl::Schema::Resolve(*ast);
  EXPECT_TRUE(schema.ok());
  auto translated = TranslateSchema(*schema);
  EXPECT_TRUE(translated.ok()) << translated.status().ToString();
  return std::move(translated).value();
}

size_t CountWithPrefix(const std::vector<Clause>& ics, std::string_view prefix) {
  size_t n = 0;
  for (const Clause& ic : ics) {
    if (sqo::StartsWith(ic.label, prefix)) ++n;
  }
  return n;
}

TEST(SchemaTranslatorTest, Rule1ClassRelations) {
  TranslatedSchema ts = University();
  const RelationSignature* faculty = ts.catalog.Find("faculty");
  ASSERT_NE(faculty, nullptr);
  EXPECT_EQ(faculty->kind, RelationKind::kClass);
  // oid + inherited (name, age, address) + own (salary, rank); simple
  // attributes precede struct attributes within each class, and the
  // superclass prefix is preserved.
  EXPECT_EQ(faculty->attributes,
            (std::vector<std::string>{"oid", "name", "age", "address", "salary",
                                      "rank"}));
  EXPECT_EQ(faculty->display_name, "Faculty");

  const RelationSignature* person = ts.catalog.Find("person");
  ASSERT_NE(person, nullptr);
  EXPECT_EQ(person->attributes,
            (std::vector<std::string>{"oid", "name", "age", "address"}));
}

TEST(SchemaTranslatorTest, Rule2StructRelations) {
  TranslatedSchema ts = University();
  const RelationSignature* address = ts.catalog.Find("address");
  ASSERT_NE(address, nullptr);
  EXPECT_EQ(address->kind, RelationKind::kStructure);
  EXPECT_EQ(address->attributes,
            (std::vector<std::string>{"oid", "street", "city"}));
}

TEST(SchemaTranslatorTest, Rule3RelationshipRelations) {
  TranslatedSchema ts = University();
  const RelationSignature* takes = ts.catalog.Find("takes");
  ASSERT_NE(takes, nullptr);
  EXPECT_EQ(takes->kind, RelationKind::kRelationship);
  EXPECT_EQ(takes->owner, "Student");
  EXPECT_EQ(takes->target, "Section");
  EXPECT_EQ(takes->arity(), 2u);
  EXPECT_FALSE(takes->functional_src_to_dst);  // to-many
  EXPECT_FALSE(takes->functional_dst_to_src);  // inverse to-many

  const RelationSignature* has_ta = ts.catalog.Find("has_ta");
  ASSERT_NE(has_ta, nullptr);
  EXPECT_TRUE(has_ta->functional_src_to_dst);
  EXPECT_TRUE(has_ta->functional_dst_to_src);

  const RelationSignature* is_taught_by = ts.catalog.Find("is_taught_by");
  ASSERT_NE(is_taught_by, nullptr);
  EXPECT_TRUE(is_taught_by->functional_src_to_dst);   // one faculty
  EXPECT_FALSE(is_taught_by->functional_dst_to_src);  // teaches is to-many
}

TEST(SchemaTranslatorTest, Rule4MethodRelations) {
  TranslatedSchema ts = University();
  const RelationSignature* m = ts.catalog.Find("taxes_withheld");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, RelationKind::kMethod);
  EXPECT_EQ(m->owner, "Employee");
  EXPECT_EQ(m->attributes, (std::vector<std::string>{"oid", "rate", "value"}));
}

TEST(SchemaTranslatorTest, OidIdentificationIcs) {
  TranslatedSchema ts = University();
  // Each of the 8 relationships yields a src and a dst membership IC
  // (deduplicated if identical; here all distinct).
  EXPECT_EQ(CountWithPrefix(ts.constraints, "oid_rel:"), 16u);
  // One per struct attribute (address on Person, inherited copies are over
  // the subclass relations too).
  EXPECT_GE(CountWithPrefix(ts.constraints, "oid_struct:"), 1u);
  EXPECT_EQ(CountWithPrefix(ts.constraints, "oid_method:"), 1u);
}

TEST(SchemaTranslatorTest, SubclassIcsSharePrefix) {
  TranslatedSchema ts = University();
  const Clause* subclass = nullptr;
  for (const Clause& ic : ts.constraints) {
    if (ic.label == "subclass:faculty") subclass = &ic;
  }
  ASSERT_NE(subclass, nullptr);
  // employee(Oid, Name, Age, Address, Salary) <- faculty(Oid, Name, Age,
  // Address, Salary, Rank): head args are a prefix of body args.
  const auto& head_args = subclass->head->atom.args();
  const auto& body_args = subclass->body[0].atom.args();
  EXPECT_EQ(subclass->head->atom.predicate(), "employee");
  ASSERT_LT(head_args.size(), body_args.size());
  for (size_t i = 0; i < head_args.size(); ++i) {
    EXPECT_EQ(head_args[i], body_args[i]);
  }
}

TEST(SchemaTranslatorTest, InverseIcsBothDirections) {
  TranslatedSchema ts = University();
  size_t inverse = CountWithPrefix(ts.constraints, "inverse:");
  // 4 inverse pairs × 2 directions.
  EXPECT_EQ(inverse, 8u);
}

TEST(SchemaTranslatorTest, FunctionalityIcs) {
  TranslatedSchema ts = University();
  // To-one relationships: is_taught_by, is_section_of, has_ta, assists.
  EXPECT_EQ(CountWithPrefix(ts.constraints, "fun:"), 4u);
  // One-to-one: has_ta and assists.
  EXPECT_EQ(CountWithPrefix(ts.constraints, "fun_inv:"), 2u);
}

TEST(SchemaTranslatorTest, KeyIcsInherited) {
  TranslatedSchema ts = University();
  // Key name on Person propagates to person, employee, faculty, student, ta.
  EXPECT_EQ(CountWithPrefix(ts.constraints, "key:"), 5u);
  bool found_faculty_key = false;
  for (const Clause& ic : ts.constraints) {
    if (ic.label == "key:faculty.name") found_faculty_key = true;
  }
  EXPECT_TRUE(found_faculty_key);
}

TEST(SchemaTranslatorTest, AttributeFdsPerAttribute) {
  TranslatedSchema ts = University();
  size_t total_attrs = 0;
  for (const auto& [name, sig] : ts.catalog.relations()) {
    if (sig.kind == RelationKind::kClass) total_attrs += sig.arity() - 1;
  }
  EXPECT_EQ(CountWithPrefix(ts.constraints, "attr_fd:"), total_attrs);
}

TEST(SchemaTranslatorTest, TypeMaps) {
  TranslatedSchema ts = University();
  EXPECT_EQ(ts.RelationFor("Faculty"), "faculty");
  EXPECT_EQ(ts.RelationFor("Address"), "address");
  EXPECT_EQ(ts.RelationFor("Nothing"), "");
  EXPECT_EQ(ts.relation_to_type.at("ta"), "TA");
}

TEST(SchemaTranslatorTest, RejectsLowercaseCollision) {
  auto ast = odl::ParseOdl("interface Abc {}; interface ABC {};");
  ASSERT_TRUE(ast.ok());
  auto schema = odl::Schema::Resolve(*ast);
  ASSERT_TRUE(schema.ok());
  EXPECT_FALSE(TranslateSchema(*schema).ok());
}

TEST(SchemaTranslatorTest, ComplexityLinearInSchemaSize) {
  // §4.1: Step 1 is linear. Constraint count grows linearly with classes.
  std::string odl;
  for (int i = 0; i < 30; ++i) {
    odl += "interface C" + std::to_string(i) +
           " { attribute long a; attribute long b; };\n";
  }
  auto ast = odl::ParseOdl(odl);
  ASSERT_TRUE(ast.ok());
  auto schema = odl::Schema::Resolve(*ast);
  ASSERT_TRUE(schema.ok());
  auto ts = TranslateSchema(*schema);
  ASSERT_TRUE(ts.ok());
  // 2 attr FDs per class only (no keys/relationships/methods).
  EXPECT_EQ(ts->constraints.size(), 60u);
}

}  // namespace
}  // namespace sqo::translate
