#include "translate/query_translator.h"

#include <gtest/gtest.h>

#include "odl/parser.h"
#include "oql/parser.h"
#include "workload/university.h"

namespace sqo::translate {
namespace {

using datalog::Literal;
using datalog::Query;

class QueryTranslatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ast = odl::ParseOdl(workload::UniversityOdl());
    ASSERT_TRUE(ast.ok());
    auto schema = odl::Schema::Resolve(*ast);
    ASSERT_TRUE(schema.ok());
    auto translated = TranslateSchema(*schema);
    ASSERT_TRUE(translated.ok());
    schema_ = std::make_unique<TranslatedSchema>(std::move(translated).value());
  }

  sqo::Result<TranslatedQuery> Translate(const std::string& oql) {
    auto parsed = oql::ParseOql(oql);
    if (!parsed.ok()) return parsed.status();
    return TranslateQuery(*schema_, *parsed);
  }

  static size_t CountPredicate(const Query& q, const std::string& pred) {
    size_t n = 0;
    for (const Literal& lit : q.body) {
      if (lit.atom.is_predicate() && lit.atom.predicate() == pred) ++n;
    }
    return n;
  }

  std::unique_ptr<TranslatedSchema> schema_;
};

TEST_F(QueryTranslatorTest, SimpleExtentQuery) {
  auto t = Translate("select x.name from x in Person where x.age < 30");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->query.ToString(),
            "q(Name) :- person(X, Name, Age, _Q3), Age < 30.");
  EXPECT_EQ(t->map.var_to_ident.at("X"), "x");
  EXPECT_EQ(t->map.ident_type.at("x"), "Person");
}

TEST_F(QueryTranslatorTest, ExtentNameAlsoResolves) {
  auto t = Translate("select x.name from x in persons");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(CountPredicate(t->query, "person"), 1u);
}

TEST_F(QueryTranslatorTest, PaperExample2FullTranslation) {
  auto t = Translate(
      "select z.name, w.city\n"
      "from x in Student, y in x.takes, z in y.is_taught_by, w in z.address\n"
      "where x.name = \"john\" and z.taxes_withheld(10%) < 1000");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  const Query& q = t->query;
  // Head: Name (of z) and City — the paper's Q(Name1, City).
  ASSERT_EQ(q.head_args.size(), 2u);
  // Body shape from the paper: student, takes, is_taught_by, faculty,
  // address, name equality, method atom, comparison.
  EXPECT_EQ(CountPredicate(q, "student"), 1u);
  EXPECT_EQ(CountPredicate(q, "takes"), 1u);
  EXPECT_EQ(CountPredicate(q, "is_taught_by"), 1u);
  EXPECT_EQ(CountPredicate(q, "faculty"), 1u);
  EXPECT_EQ(CountPredicate(q, "address"), 1u);
  EXPECT_EQ(CountPredicate(q, "taxes_withheld"), 1u);
  // The section atom is NOT added (lazy class atoms, as in the paper).
  EXPECT_EQ(CountPredicate(q, "section"), 0u);
  // Two comparisons: Name2 = "john" and V < 1000.
  EXPECT_EQ(q.Comparisons().size(), 2u);
  // Method argument 10% became 0.10.
  for (const Literal& lit : q.body) {
    if (lit.atom.is_predicate() && lit.atom.predicate() == "taxes_withheld") {
      EXPECT_EQ(lit.atom.args()[1], datalog::Term::Double(0.10));
    }
  }
}

TEST_F(QueryTranslatorTest, LazyClassAtomOnlyWhenReferenced) {
  // y ranges over sections but nothing reads its attributes.
  auto t = Translate("select x.name from x in Student, y in x.takes");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(CountPredicate(t->query, "section"), 0u);
  // Referencing y.number forces the section atom.
  auto t2 = Translate("select y.number from x in Student, y in x.takes");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(CountPredicate(t2->query, "section"), 1u);
}

TEST_F(QueryTranslatorTest, StructRangeIsEager) {
  auto t = Translate("select w.city from x in Person, w in x.address");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(CountPredicate(t->query, "address"), 1u);
  // The struct OID variable sits inside the person atom at the address
  // position and is shared with the address atom.
  const Query& q = t->query;
  datalog::Term w_var = datalog::Term::Var(t->map.ident_to_var.at("w"));
  bool in_person = false, in_address = false;
  for (const Literal& lit : q.body) {
    if (!lit.atom.is_predicate()) continue;
    if (lit.atom.predicate() == "person" && lit.atom.args()[3] == w_var) {
      in_person = true;
    }
    if (lit.atom.predicate() == "address" && lit.atom.args()[0] == w_var) {
      in_address = true;
    }
  }
  EXPECT_TRUE(in_person);
  EXPECT_TRUE(in_address);
}

TEST_F(QueryTranslatorTest, PathFlatteningIntroducesOneDotAtoms) {
  // x.address.city is flattened through a synthetic identifier.
  auto t = Translate("select x.address.city from x in Person");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(CountPredicate(t->query, "address"), 1u);
  EXPECT_FALSE(t->map.synthetic_idents.empty());
}

TEST_F(QueryTranslatorTest, PathMemoizationSharesTraversals) {
  auto t = Translate(
      "select x.address.city, x.address.street from x in Person");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(CountPredicate(t->query, "address"), 1u);  // shared, not duplicated
}

TEST_F(QueryTranslatorTest, ToOneRelationshipInValuePosition) {
  auto t = Translate("select y.is_taught_by.name from x in Student, y in x.takes");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(CountPredicate(t->query, "is_taught_by"), 1u);
  EXPECT_EQ(CountPredicate(t->query, "faculty"), 1u);
}

TEST_F(QueryTranslatorTest, ToManyRelationshipInValuePositionRejected) {
  auto t = Translate("select x.takes.number from x in Student");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), sqo::StatusCode::kSemanticError);
}

TEST_F(QueryTranslatorTest, ProjectingAnObjectYieldsItsOidVariable) {
  auto t = Translate("select x from x in Person");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->query.head_args.size(), 1u);
  EXPECT_EQ(t->query.head_args[0], datalog::Term::Var("X"));
}

TEST_F(QueryTranslatorTest, ConstructorsFlattenToLeafTerms) {
  auto t = Translate(
      "select list(s.student_id, t.employee_id) from s in Student, t in TA");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->query.head_args.size(), 2u);
}

TEST_F(QueryTranslatorTest, NestedConstructors) {
  auto t = Translate(
      "select struct(a: x.name, b: list(x.age, 1)) from x in Person");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->query.head_args.size(), 3u);
  EXPECT_EQ(t->query.head_args[2], datalog::Term::Int(1));
}

TEST_F(QueryTranslatorTest, MembershipPredicates) {
  auto t = Translate(
      "select x.name from x in Person where x not in Faculty and x in Student");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  bool neg_faculty = false, pos_student = false;
  for (const Literal& lit : t->query.body) {
    if (!lit.atom.is_predicate()) continue;
    if (lit.atom.predicate() == "faculty" && !lit.positive) neg_faculty = true;
    if (lit.atom.predicate() == "student" && lit.positive) pos_student = true;
  }
  EXPECT_TRUE(neg_faculty);
  EXPECT_TRUE(pos_student);
}

TEST_F(QueryTranslatorTest, NotInFromClause) {
  auto t = Translate(
      "select x.name from x in Person, x not in Faculty where x.age < 30");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  size_t negatives = 0;
  for (const Literal& lit : t->query.body) {
    if (!lit.positive) ++negatives;
  }
  EXPECT_EQ(negatives, 1u);
  // Provenance: the negative literal maps back to from entry 1.
  bool mapped = false;
  for (const auto& [body_idx, from_idx] : t->map.body_to_from) {
    if (from_idx == 1) mapped = true;
  }
  EXPECT_TRUE(mapped);
}

TEST_F(QueryTranslatorTest, ProvenanceCoversSurfaceLiterals) {
  auto t = Translate(
      "select z.name from x in Student, y in x.takes, z in y.is_taught_by "
      "where x.name = \"john\"");
  ASSERT_TRUE(t.ok());
  // 3 from entries and 1 where predicate produce provenance entries.
  EXPECT_EQ(t->map.body_to_from.size(), 3u);
  EXPECT_EQ(t->map.body_to_where.size(), 1u);
}

TEST_F(QueryTranslatorTest, AttributeVariableNaming) {
  // Two different owners of the same attribute name get distinct variables.
  auto t = Translate(
      "select z.name, x.name from x in Student, y in x.takes, "
      "z in y.is_taught_by");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->query.head_args.size(), 2u);
  EXPECT_NE(t->query.head_args[0], t->query.head_args[1]);
}

TEST_F(QueryTranslatorTest, ExistsTranslatesToUnprojectedRange) {
  auto t = Translate(
      "select x.name from x in Student "
      "where exists y in x.takes : y.number = \"1\"");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(CountPredicate(t->query, "takes"), 1u);
  EXPECT_EQ(CountPredicate(t->query, "section"), 1u);
  // y is declared but not projected.
  EXPECT_EQ(t->query.head_args.size(), 1u);
  EXPECT_EQ(t->map.ident_type.at("y"), "Section");
}

TEST_F(QueryTranslatorTest, ExistsSameAsFromRange) {
  // ∃ in a conjunctive body is just an unprojected range: both forms give
  // the same DATALOG body (up to provenance).
  auto via_exists = Translate(
      "select x.name from x in Student "
      "where exists y in x.takes : y.number = \"1\"");
  auto via_from = Translate(
      "select x.name from x in Student, y in x.takes "
      "where y.number = \"1\"");
  ASSERT_TRUE(via_exists.ok() && via_from.ok());
  EXPECT_EQ(via_exists->query.CanonicalKey(), via_from->query.CanonicalKey());
}

TEST_F(QueryTranslatorTest, NestedExists) {
  auto t = Translate(
      "select x.name from x in Student where exists y in x.takes : "
      "exists z in y.is_taught_by : z.salary > 50K");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(CountPredicate(t->query, "takes"), 1u);
  EXPECT_EQ(CountPredicate(t->query, "is_taught_by"), 1u);
  EXPECT_EQ(CountPredicate(t->query, "faculty"), 1u);
}

TEST_F(QueryTranslatorTest, ExistsVariableCollisionRejected) {
  auto t = Translate(
      "select x.name from x in Student "
      "where exists x in Student : x.age < 20");
  EXPECT_FALSE(t.ok());
}

TEST_F(QueryTranslatorTest, ExistsLiteralsHaveNoProvenance) {
  auto t = Translate(
      "select x.name from x in Student "
      "where exists y in x.takes : y.number = \"1\"");
  ASSERT_TRUE(t.ok());
  // Only the from entry for x maps back to the surface.
  EXPECT_EQ(t->map.body_to_from.size(), 1u);
  EXPECT_TRUE(t->map.body_to_where.empty());
}

TEST_F(QueryTranslatorTest, Errors) {
  EXPECT_FALSE(Translate("select q.name from x in Person").ok());  // unknown var
  EXPECT_FALSE(Translate("select x from x in Nowhere").ok());      // unknown class
  EXPECT_FALSE(Translate("select x.phone from x in Person").ok()); // no attr
  EXPECT_FALSE(
      Translate("select x from x in Person, x in Student").ok());  // redefined
  EXPECT_FALSE(
      Translate("select x.taxes_withheld() from x in Person").ok());  // no method
  EXPECT_FALSE(Translate("select x.taxes_withheld(1,2) from x in Faculty")
                   .ok());  // arity
  EXPECT_FALSE(
      Translate("select y from y in x.takes").ok());  // base undefined
}

TEST_F(QueryTranslatorTest, MethodInWhereGetsResultVariable) {
  auto t = Translate(
      "select x.name from x in Faculty where x.taxes_withheld(10%) < 1000");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(CountPredicate(t->query, "taxes_withheld"), 1u);
  // The comparison references the method's result variable.
  bool found = false;
  for (const Literal& lit : t->query.body) {
    if (lit.atom.is_comparison() && lit.atom.rhs() == datalog::Term::Int(1000)) {
      found = lit.atom.lhs().is_variable();
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sqo::translate
