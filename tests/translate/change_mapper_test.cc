#include "translate/change_mapper.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "odl/parser.h"
#include "oql/parser.h"
#include "workload/university.h"

namespace sqo::translate {
namespace {

using datalog::Atom;
using datalog::CmpOp;
using datalog::Literal;
using datalog::Query;
using datalog::Term;

class ChangeMapperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ast = odl::ParseOdl(workload::UniversityOdl());
    ASSERT_TRUE(ast.ok());
    auto schema = odl::Schema::Resolve(*ast);
    ASSERT_TRUE(schema.ok());
    auto translated = TranslateSchema(*schema);
    ASSERT_TRUE(translated.ok());
    schema_ = std::make_unique<TranslatedSchema>(std::move(translated).value());
  }

  void Load(const std::string& oql) {
    auto parsed = oql::ParseOql(oql);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    original_oql_ = *parsed;
    auto t = TranslateQuery(*schema_, original_oql_);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    original_ = t->query;
    map_ = t->map;
  }

  sqo::Result<oql::SelectQuery> Apply(const Query& optimized) {
    ChangeMapper mapper(schema_.get(), &map_);
    return mapper.Apply(original_oql_, original_, optimized);
  }

  std::unique_ptr<TranslatedSchema> schema_;
  oql::SelectQuery original_oql_;
  Query original_;
  TranslationMap map_;
};

TEST_F(ChangeMapperTest, DiffQueriesComputesMultisetDifference) {
  auto a = datalog::ParseQueryText("q(X) :- p(X), r(X), X < 3.");
  auto b = datalog::ParseQueryText("q(X) :- p(X), X < 3, s(X).");
  ASSERT_TRUE(a.ok() && b.ok());
  QueryDiff diff = DiffQueries(*a, *b);
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0].atom.predicate(), "r");
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0].atom.predicate(), "s");
}

TEST_F(ChangeMapperTest, DiffRespectsMultiplicity) {
  auto a = datalog::ParseQueryText("q(X) :- p(X), p(X).");
  auto b = datalog::ParseQueryText("q(X) :- p(X).");
  QueryDiff diff = DiffQueries(*a, *b);
  EXPECT_EQ(diff.removed.size(), 1u);
  EXPECT_TRUE(diff.added.empty());
}

TEST_F(ChangeMapperTest, IdentityProducesOriginal) {
  Load("select x.name from x in Person where x.age < 30");
  auto mapped = Apply(original_);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(*mapped, original_oql_);
}

TEST_F(ChangeMapperTest, AddComparisonOnExistingAttributeVariable) {
  Load("select x.name from x in Person where x.age < 30");
  Query optimized = original_;
  // Add Age > 10: Age is the attribute variable of person(..., Age, ...).
  optimized.body.push_back(Literal::Pos(
      Atom::Comparison(CmpOp::kGt, Term::Var("Age"), Term::Int(10))));
  auto mapped = Apply(optimized);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped->where.size(), 2u);
  EXPECT_EQ(mapped->where[1].ToString(), "x.age > 10");
}

TEST_F(ChangeMapperTest, AddComparisonOnAnonymousAttributeVariable) {
  Load("select x.name from x in Faculty");
  Query optimized = original_;
  // The salary slot is an anonymous placeholder; the mapper must find it
  // inside the faculty atom (the paper's "let c(X,...,A,...) be an atom").
  const Term salary_var = original_.body[0].atom.args()[4];
  ASSERT_TRUE(salary_var.is_variable());
  optimized.body.push_back(Literal::Pos(
      Atom::Comparison(CmpOp::kGt, salary_var, Term::Int(40000))));
  auto mapped = Apply(optimized);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped->where.size(), 1u);
  EXPECT_EQ(mapped->where[0].ToString(), "x.salary > 40000");
}

TEST_F(ChangeMapperTest, AddOidEquality) {
  Load(
      "select s.name from s in Student, y in s.takes, z in y.is_taught_by, "
      "t in TA, v in t.takes, w in v.is_taught_by");
  Query optimized = original_;
  optimized.body.push_back(Literal::Pos(
      Atom::Comparison(CmpOp::kEq, Term::Var("Z"), Term::Var("W"))));
  auto mapped = Apply(optimized);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->where.back().ToString(), "z = w");
}

TEST_F(ChangeMapperTest, RemoveWhereComparison) {
  Load("select x.name from x in Person where x.age < 30 and x.name != \"z\"");
  Query optimized = original_;
  // Remove the age comparison (find it by operator).
  for (size_t i = 0; i < optimized.body.size(); ++i) {
    if (optimized.body[i].atom.is_comparison() &&
        optimized.body[i].atom.op() == CmpOp::kLt) {
      optimized.body.erase(optimized.body.begin() + static_cast<long>(i));
      break;
    }
  }
  auto mapped = Apply(optimized);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped->where.size(), 1u);
  EXPECT_EQ(mapped->where[0].ToString(), "x.name != \"z\"");
}

TEST_F(ChangeMapperTest, AddNegatedClassAtomBecomesNotInRange) {
  Load("select x.name from x in Person where x.age < 30");
  Query optimized = original_;
  optimized.body.push_back(Literal::Neg(Atom::Pred(
      "faculty", {Term::Var("X"), Term::Var("_N1"), Term::Var("_N2"),
                  Term::Var("_N3"), Term::Var("_N4"), Term::Var("_N5")})));
  auto mapped = Apply(optimized);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped->from.size(), 2u);
  EXPECT_EQ(mapped->from[1].ToString(), "x not in Faculty");
}

TEST_F(ChangeMapperTest, RemoveFromEntryRange) {
  Load("select x.name from x in Person, x not in Faculty where x.age < 30");
  Query optimized = original_;
  // Remove the negative literal.
  for (size_t i = 0; i < optimized.body.size(); ++i) {
    if (!optimized.body[i].positive) {
      optimized.body.erase(optimized.body.begin() + static_cast<long>(i));
      break;
    }
  }
  auto mapped = Apply(optimized);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->from.size(), 1u);
}

TEST_F(ChangeMapperTest, AddRelationshipWithFreshTargetBecomesRange) {
  Load("select x.name from x in Student, y in x.takes, z in y.is_section_of");
  Query optimized = original_;
  const std::string z_var = map_.ident_to_var.at("z");
  optimized.body.push_back(Literal::Pos(
      Atom::Pred("has_sections", {Term::Var(z_var), Term::Var("_J1")})));
  auto mapped = Apply(optimized);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped->from.size(), 4u);
  EXPECT_EQ(mapped->from[3].ToString(), "w1 in z.has_sections");
}

TEST_F(ChangeMapperTest, AddRelationshipWithBoundTargetBecomesMembership) {
  Load("select x.name from x in Student, y in x.takes");
  Query optimized = original_;
  optimized.body.push_back(Literal::Pos(
      Atom::Pred("is_taken_by", {Term::Var("Y"), Term::Var("X")})));
  auto mapped = Apply(optimized);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped->where.size(), 1u);
  EXPECT_EQ(mapped->where[0].ToString(), "x in y.is_taken_by");
}

TEST_F(ChangeMapperTest, RemoveImplicitLiteralNeedsNoSurfaceEdit) {
  // The faculty atom for z was added lazily; removing it leaves the OQL
  // text unchanged.
  Load(
      "select z.name from x in Student, y in x.takes, z in y.is_taught_by "
      "where z.name = \"a\"");
  Query optimized = original_;
  for (size_t i = 0; i < optimized.body.size(); ++i) {
    if (optimized.body[i].atom.is_predicate() &&
        optimized.body[i].atom.predicate() == "faculty") {
      optimized.body.erase(optimized.body.begin() + static_cast<long>(i));
      break;
    }
  }
  auto mapped = Apply(optimized);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(*mapped, original_oql_);
}

TEST_F(ChangeMapperTest, ConstructorsArePreserved) {
  // §5.3: the list constructor must survive the rewrite.
  Load(
      "select list(s.student_id, t.employee_id) from s in Student, "
      "y in s.takes, z in y.is_taught_by, t in TA, v in t.takes, "
      "w in v.is_taught_by where z.name = w.name");
  Query optimized = original_;
  // Remove the name join, add the OID comparison (paper's Q').
  for (size_t i = 0; i < optimized.body.size(); ++i) {
    if (optimized.body[i].atom.is_comparison()) {
      optimized.body.erase(optimized.body.begin() + static_cast<long>(i));
      break;
    }
  }
  optimized.body.push_back(Literal::Pos(
      Atom::Comparison(CmpOp::kEq, Term::Var("Z"), Term::Var("W"))));
  auto mapped = Apply(optimized);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped->select_list.size(), 1u);
  EXPECT_EQ(mapped->select_list[0].kind, oql::Expr::Kind::kCollection);
  ASSERT_EQ(mapped->where.size(), 1u);
  EXPECT_EQ(mapped->where[0].ToString(), "z = w");
}

TEST_F(ChangeMapperTest, RenderedMethodCallInAddedComparison) {
  Load(
      "select z.name from x in Student, y in x.takes, z in y.is_taught_by "
      "where z.taxes_withheld(10%) < 1000");
  Query optimized = original_;
  // Find the method result variable V and add V > 3000 (the §5.1 witness).
  Term v = Term::Var("V");
  for (const Literal& lit : original_.body) {
    if (lit.atom.is_predicate() && lit.atom.predicate() == "taxes_withheld") {
      v = lit.atom.args().back();
    }
  }
  optimized.body.push_back(
      Literal::Pos(Atom::Comparison(CmpOp::kGt, v, Term::Int(3000))));
  auto mapped = Apply(optimized);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->where.back().ToString(), "z.taxes_withheld(0.1) > 3000");
}

}  // namespace
}  // namespace sqo::translate
