#include "obs/export.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/context.h"
#include "common/failpoint.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace sqo::obs {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DeactivateAll(); }
  void TearDown() override { failpoint::DeactivateAll(); }

  std::string Path(const std::string& suffix) {
    std::string path = ::testing::TempDir() + "sqo_export_" +
                       ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name() +
                       "." + suffix;
    std::remove(path.c_str());
    return path;
  }

  static std::string ReadAll(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  static bool Exists(const std::string& path) {
    return std::ifstream(path).good();
  }
};

// --- Prometheus text format ----------------------------------------------

TEST_F(ExportTest, PrometheusCountersAndSummaries) {
  MetricsRegistry registry;
  registry.Add("journal.recorded", 3);
  for (int i = 0; i < 100; ++i) registry.Record("eval.evaluate", 1'000'000);

  const std::string text = ToPrometheusText(registry);
  // Dotted names are sanitized and namespaced.
  EXPECT_NE(text.find("# TYPE sqo_journal_recorded counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sqo_journal_recorded 3\n"), std::string::npos) << text;
  // Histograms become summaries with quantile labels, in seconds.
  EXPECT_NE(text.find("# TYPE sqo_eval_evaluate_seconds summary\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sqo_eval_evaluate_seconds{quantile=\"0.5\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sqo_eval_evaluate_seconds{quantile=\"0.99\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sqo_eval_evaluate_seconds_count 100\n"),
            std::string::npos)
      << text;
  // 100 × 1ms = 0.1s total.
  EXPECT_NE(text.find("sqo_eval_evaluate_seconds_sum 0.1"), std::string::npos)
      << text;
}

TEST_F(ExportTest, PrometheusNamespaceIsOptional) {
  MetricsRegistry registry;
  registry.Add("c", 1);
  const std::string text = ToPrometheusText(registry, "");
  EXPECT_NE(text.find("# TYPE c counter\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("sqo_"), std::string::npos) << text;
}

TEST_F(ExportTest, PrometheusSanitizesHostileNames) {
  MetricsRegistry registry;
  registry.Add("9weird name-with.bytes", 1);
  const std::string text = ToPrometheusText(registry);
  // Every non-[a-zA-Z0-9_:] byte becomes '_', and the leading digit gets
  // an underscore before the namespace is prepended.
  EXPECT_NE(text.find("sqo__9weird_name_with_bytes 1\n"), std::string::npos)
      << text;
}

// --- One-shot export -----------------------------------------------------

TEST_F(ExportTest, ExportOnceWritesBothFormats) {
  MetricsRegistry registry;
  registry.Add("optimize.alternatives", 4);
  registry.Record("pipeline.total", 2048);

  ExporterOptions options;
  options.json_path = Path("json");
  options.prometheus_path = Path("prom");
  PeriodicExporter exporter(options, [&] { return registry; });

  ASSERT_TRUE(exporter.ExportOnce().ok());
  EXPECT_EQ(exporter.exports(), 1u);
  EXPECT_EQ(exporter.failures(), 0u);

  auto doc = ParseJson(ReadAll(options.json_path));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_DOUBLE_EQ(
      doc->Find("counters")->Find("optimize.alternatives")->number, 4.0);

  const std::string prom = ReadAll(options.prometheus_path);
  EXPECT_NE(prom.find("sqo_optimize_alternatives 4\n"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("sqo_pipeline_total_seconds_count 1\n"),
            std::string::npos)
      << prom;
}

TEST_F(ExportTest, ExportOnceSkipsEmptyPaths) {
  MetricsRegistry registry;
  ExporterOptions options;
  options.prometheus_path = Path("prom");
  PeriodicExporter exporter(options, [&] { return registry; });
  ASSERT_TRUE(exporter.ExportOnce().ok());
  EXPECT_TRUE(Exists(options.prometheus_path));
}

TEST_F(ExportTest, ExportFailpointCountsAndStaysUsable) {
  MetricsRegistry registry;
  ExporterOptions options;
  options.json_path = Path("json");
  PeriodicExporter exporter(options, [&] { return registry; });

  failpoint::Activate("obs.export", failpoint::Action{});
  EXPECT_FALSE(exporter.ExportOnce().ok());
  EXPECT_EQ(exporter.failures(), 1u);
  EXPECT_EQ(exporter.exports(), 0u);
  EXPECT_FALSE(Exists(options.json_path));

  failpoint::Deactivate("obs.export");
  ASSERT_TRUE(exporter.ExportOnce().ok());
  EXPECT_EQ(exporter.exports(), 1u);
  EXPECT_TRUE(Exists(options.json_path));
}

TEST_F(ExportTest, ExportHonorsGovernance) {
  MetricsRegistry registry;
  ExporterOptions options;
  options.json_path = Path("json");
  PeriodicExporter exporter(options, [&] { return registry; });

  ExecutionContext context;
  context.SetDeadlineAfter(std::chrono::milliseconds(0));
  ScopedContext install(&context);
  Status s = exporter.ExportOnce();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  EXPECT_EQ(exporter.failures(), 1u);
  EXPECT_FALSE(Exists(options.json_path));
}

// --- Periodic background exporter ----------------------------------------

TEST_F(ExportTest, PeriodicExportRunsUntilStopped) {
  MetricsRegistry registry;
  registry.Add("c", 1);
  ExporterOptions options;
  options.json_path = Path("json");
  options.period = std::chrono::milliseconds(5);
  PeriodicExporter exporter(options, [&] { return registry; });

  EXPECT_FALSE(exporter.running());
  exporter.Start();
  exporter.Start();  // idempotent
  EXPECT_TRUE(exporter.running());
  while (exporter.exports() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  exporter.Stop();
  exporter.Stop();  // idempotent
  EXPECT_FALSE(exporter.running());
  EXPECT_TRUE(Exists(options.json_path));
}

// The background loop survives failing exports (fail-open): failures are
// counted and the next period tries again.
TEST_F(ExportTest, PeriodicLoopSurvivesFailpoint) {
  MetricsRegistry registry;
  ExporterOptions options;
  options.json_path = Path("json");
  options.period = std::chrono::milliseconds(2);
  PeriodicExporter exporter(options, [&] { return registry; });

  failpoint::Action twice;
  twice.max_trips = 2;
  failpoint::Activate("obs.export", twice);
  exporter.Start();
  while (exporter.exports() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  exporter.Stop();
  EXPECT_EQ(exporter.failures(), 2u);
  EXPECT_GE(exporter.exports(), 1u);
}

// --- QpsMeter ------------------------------------------------------------

TEST_F(ExportTest, QpsMeterSummarizesDistribution) {
  QpsMeter meter;
  for (int i = 0; i < 1000; ++i) meter.Record(1'000'000);
  const auto snap = meter.Summarize();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_GT(snap.elapsed_ns, 0);
  EXPECT_GT(snap.qps, 0.0);
  // Log-bucketed quantiles: within 2× of the true 1ms.
  EXPECT_GE(snap.p50_ns, 500'000);
  EXPECT_LE(snap.p50_ns, 2'000'000);
  EXPECT_GE(snap.p99_ns, snap.p50_ns);
  EXPECT_EQ(snap.max_ns, 1'000'000);
  EXPECT_EQ(snap.mean_ns, 1'000'000);
}

TEST_F(ExportTest, QpsMeterResetClearsSamples) {
  QpsMeter meter;
  meter.Record(100);
  EXPECT_EQ(meter.Summarize().count, 1u);
  meter.Reset();
  const auto snap = meter.Summarize();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.qps, 0.0);
  EXPECT_EQ(snap.max_ns, 0);
}

}  // namespace
}  // namespace sqo::obs
