// End-to-end acceptance test for the observability layer: with a tracer
// installed, one pipeline build + query optimization must produce a span
// tree covering all four Figure-2 steps, with at least one per-residue
// application span — verified by parsing the JSON export, so the exporter
// format is pinned too.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "engine/cost_model.h"
#include "engine/database.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/university.h"

namespace sqo {
namespace {

TEST(PipelineTraceTest, SpanTreeCoversFigure2StepsInJsonExport) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::ScopedTracer install_tracer(&tracer);
  obs::ScopedMetrics install_metrics(&metrics);

  auto pipeline = workload::MakeUniversityPipeline();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto result = pipeline->OptimizeText(
      "select x.name from x in Person where x.age < 30", nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto doc = obs::ParseJson(tracer.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue* spans = doc->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->kind, obs::JsonValue::Kind::kArray);

  std::set<std::string> names;
  size_t residue_spans = 0;
  size_t tagged_hit_or_miss = 0;
  for (const obs::JsonValue& span : spans->items) {
    const obs::JsonValue* name = span.Find("name");
    ASSERT_NE(name, nullptr);
    names.insert(name->string_value);
    // Every exported span must be closed with a non-negative duration.
    const obs::JsonValue* dur = span.Find("dur_ns");
    ASSERT_NE(dur, nullptr);
    EXPECT_GE(dur->number, 0.0) << name->string_value;
    if (name->string_value == "residue.apply") {
      ++residue_spans;
      const obs::JsonValue* tags = span.Find("tags");
      ASSERT_NE(tags, nullptr) << "residue.apply span without tags";
      const obs::JsonValue* outcome = tags->Find("result");
      ASSERT_NE(outcome, nullptr);
      if (outcome->string_value == "hit" || outcome->string_value == "miss") {
        ++tagged_hit_or_miss;
      }
    }
  }

  // All four steps of the paper's Figure-2 architecture.
  EXPECT_TRUE(names.count("step1.translate_schema")) << tracer.ToText();
  EXPECT_TRUE(names.count("step2.translate_query")) << tracer.ToText();
  EXPECT_TRUE(names.count("step3.optimize")) << tracer.ToText();
  EXPECT_TRUE(names.count("step4.map_changes")) << tracer.ToText();
  // Semantic compilation (residue attachment) happens inside Step 1.
  EXPECT_TRUE(names.count("semantic.compile")) << tracer.ToText();
  // At least one per-residue application span, each tagged hit|miss.
  EXPECT_GE(residue_spans, 1u);
  EXPECT_EQ(tagged_hit_or_miss, residue_spans);

  // Optimizer-side counters flowed into the metrics registry.
  EXPECT_GT(metrics.CounterValue("compile.residues_attached"), 0u);
  EXPECT_GT(metrics.CounterValue("optimizer.residues_tried"), 0u);
  EXPECT_GT(metrics.CounterValue("optimizer.alternatives_generated"), 0u);
}

TEST(PipelineTraceTest, ParentIdsFormATree) {
  obs::Tracer tracer;
  obs::ScopedTracer install(&tracer);
  auto pipeline = workload::MakeUniversityPipeline();
  ASSERT_TRUE(pipeline.ok());
  auto result = pipeline->OptimizeText(
      "select x.name from x in Person where x.age < 30", nullptr);
  ASSERT_TRUE(result.ok());

  std::set<uint64_t> seen;
  for (const obs::SpanRecord& span : tracer.spans()) {
    // Parents are recorded before children, so each parent id must have
    // been seen already (or be 0 = root).
    if (span.parent != 0) {
      EXPECT_TRUE(seen.count(span.parent))
          << span.name << " references unseen parent " << span.parent;
    }
    seen.insert(span.id);
  }
}

TEST(PipelineTraceTest, EvaluationExportsStatsToMetrics) {
  auto pipeline = workload::MakeUniversityPipeline();
  ASSERT_TRUE(pipeline.ok());
  engine::Database db(&pipeline->schema());
  workload::GeneratorConfig config;
  config.n_students = 40;
  ASSERT_TRUE(workload::PopulateUniversity(config, *pipeline, &db).ok());

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::ScopedTracer install_tracer(&tracer);
  obs::ScopedMetrics install_metrics(&metrics);

  auto result = pipeline->OptimizeText(
      "select x.name from x in Person where x.age < 30", nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->contradiction);
  ASSERT_TRUE(db.ProfileAlternatives(&*result).ok());
  for (const core::Alternative& alt : result->alternatives) {
    EXPECT_TRUE(alt.evaluated);
    EXPECT_GT(alt.eval_stats.results, 0u);
  }
  // The evaluator exported its counters and traced its spans.
  EXPECT_GT(metrics.CounterValue("eval.objects_fetched"), 0u);
  bool saw_eval_span = false;
  for (const obs::SpanRecord& span : tracer.spans()) {
    if (span.name == "eval.evaluate") saw_eval_span = true;
  }
  EXPECT_TRUE(saw_eval_span);
}

}  // namespace
}  // namespace sqo
