#include "obs/profile.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datalog/parser.h"
#include "engine/database.h"
#include "obs/json.h"
#include "sqo/pipeline.h"
#include "sqo/profile_attribution.h"
#include "workload/university.h"

namespace sqo {
namespace {

core::Pipeline& UniversityPipeline() {
  static auto* pipeline = [] {
    auto built = workload::MakeUniversityPipeline();
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return new core::Pipeline(std::move(built).value());
  }();
  return *pipeline;
}

engine::Database& UniversityDb() {
  static auto* db = [] {
    auto* database = new engine::Database(&UniversityPipeline().schema());
    auto populated =
        workload::PopulateUniversity({}, UniversityPipeline(), database);
    EXPECT_TRUE(populated.ok()) << populated.ToString();
    return database;
  }();
  return *db;
}

/// Optimizes `oql` and returns the full pipeline result (for attribution).
core::PipelineResult Optimize(const std::string& oql) {
  auto result = UniversityPipeline().OptimizeText(oql);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

const obs::ProfileNode* FindEmit(const obs::QueryProfile& profile) {
  for (const obs::ProfileNode& node : profile.nodes) {
    if (node.op == "emit") return &node;
  }
  return nullptr;
}

// --- Row accounting vs EvalStats (the acceptance criterion) --------------

// The emit node sees every tuple the pipeline produced (rows_in) and every
// distinct result it kept (rows_out); both must equal the evaluator's own
// counters for the same run.
TEST(QueryProfileTest, EmitRowsMatchEvalStats) {
  auto result = Optimize(
      "select f.name from f in Faculty where f.salary > 50000");
  auto run = UniversityDb().ProfileQuery(
      result.alternatives[result.best_index].datalog);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const obs::ProfileNode* emit = FindEmit(run->profile);
  ASSERT_NE(emit, nullptr);
  EXPECT_EQ(emit->rows_in, run->stats.tuples_emitted);
  EXPECT_EQ(emit->rows_out, run->stats.results);
  EXPECT_EQ(emit->rows_out, run->rows.size());

  // The profile carries a copy of the same counters.
  EXPECT_EQ(run->profile.stats.tuples_emitted, run->stats.tuples_emitted);
  EXPECT_EQ(run->profile.stats.results, run->stats.results);
}

// Walking the executed pipeline from the emit node to the root, every
// operator's rows_out (bindings passed downstream) must equal its
// successor's rows_in (bindings received) — the chain invariant that makes
// per-node row counts trustworthy.
TEST(QueryProfileTest, ChainRowCountsAreConsistent) {
  // The §5.4 path query: a multi-literal join, so the chain has depth.
  auto result = Optimize(workload::QueryAsrDirect());
  auto run = UniversityDb().ProfileQuery(result.alternatives[0].datalog);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const obs::ProfileNode* emit = FindEmit(run->profile);
  ASSERT_NE(emit, nullptr);
  EXPECT_GT(emit->rows_out, 0u) << run->profile.ToText();

  size_t hops = 0;
  const obs::ProfileNode* node = emit;
  while (node->parent >= 0) {
    const obs::ProfileNode& parent = run->profile.nodes[node->parent];
    EXPECT_EQ(parent.rows_out, node->rows_in)
        << "chain broken between '" << parent.op << " " << parent.relation
        << "' and '" << node->op << " " << node->relation << "'\n"
        << run->profile.ToText();
    node = &parent;
    ++hops;
  }
  EXPECT_GT(hops, 0u);
  // The root operator is entered exactly once.
  EXPECT_EQ(node->rows_in, 1u) << run->profile.ToText();
}

// A membership guard consumed by a scan hangs off that scan node; the
// scan's probes show up as the guard's rows_in.
TEST(QueryProfileTest, ScopeReductionGuardsHangOffTheirScan) {
  auto result = Optimize(workload::QueryScopeReduction());
  ASSERT_FALSE(result.contradiction);
  auto run = UniversityDb().ProfileQuery(
      result.alternatives[result.best_index].datalog);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  for (const obs::ProfileNode& node : run->profile.nodes) {
    if (node.op != "guard") continue;
    ASSERT_GE(node.parent, 0);
    const obs::ProfileNode& scan = run->profile.nodes[node.parent];
    EXPECT_NE(scan.op, "guard");
    EXPECT_GE(node.rows_in, node.rows_out);
  }
}

// --- Timing model --------------------------------------------------------

TEST(QueryProfileTest, TimingAndEstimatesArePopulated) {
  auto result = Optimize(
      "select f.name from f in Faculty where f.salary > 50000");
  auto run = UniversityDb().ProfileQuery(
      result.alternatives[result.best_index].datalog);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  EXPECT_GT(run->profile.total_ns, 0);
  EXPECT_GE(run->profile.planned_cost, 0.0);

  for (const obs::ProfileNode& node : run->profile.nodes) {
    if (node.op.empty()) continue;  // planned but never executed
    // Exclusive time never exceeds inclusive time, and a child's
    // inclusive time is contained in its parent's.
    EXPECT_GE(node.self_ns, 0) << node.op;
    EXPECT_LE(node.self_ns, node.total_ns) << node.op;
    if (node.parent >= 0) {
      EXPECT_LE(node.total_ns, run->profile.nodes[node.parent].total_ns)
          << node.op;
    }
    if (node.literal_index >= 0) {
      EXPECT_GE(node.est_rows, 0.0) << node.op;
    }
  }
}

// --- Rendering -----------------------------------------------------------

TEST(QueryProfileTest, ToTextShowsOperatorsAndRows) {
  auto result = Optimize(
      "select f.name from f in Faculty where f.salary > 50000");
  auto run = UniversityDb().ProfileQuery(
      result.alternatives[result.best_index].datalog);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const std::string text = run->profile.ToText();
  EXPECT_NE(text.find("emit"), std::string::npos) << text;
  EXPECT_NE(text.find("rows="), std::string::npos) << text;
  EXPECT_NE(text.find("faculty"), std::string::npos) << text;
}

TEST(QueryProfileTest, ToJsonParsesAndMirrorsTheTree) {
  auto result = Optimize(
      "select f.name from f in Faculty where f.salary > 50000");
  auto run = UniversityDb().ProfileQuery(
      result.alternatives[result.best_index].datalog);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  core::AnnotateProfile(result, static_cast<size_t>(result.best_index),
                        &run->profile);

  auto doc = obs::ParseJson(run->profile.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue* nodes = doc->Find("nodes");
  ASSERT_NE(nodes, nullptr);
  ASSERT_TRUE(nodes->is_array());
  EXPECT_EQ(nodes->items.size(), run->profile.nodes.size());
  ASSERT_NE(doc->Find("total_ns"), nullptr);
  EXPECT_GT(doc->Find("total_ns")->number, 0.0);
  const obs::JsonValue* stats = doc->Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_DOUBLE_EQ(stats->Find("results")->number,
                   static_cast<double>(run->stats.results));

  // Node objects carry the fields EXPLAIN ANALYZE consumers need.
  const obs::JsonValue& first = nodes->items.front();
  EXPECT_NE(first.Find("op"), nullptr);
  EXPECT_NE(first.Find("rows_in"), nullptr);
  EXPECT_NE(first.Find("rows_out"), nullptr);
  EXPECT_NE(first.Find("total_ns"), nullptr);
  EXPECT_NE(first.Find("attribution"), nullptr);
}

// --- Attribution ---------------------------------------------------------

// Synthetic pipeline result with a known derivation log: attribution is
// deterministic, unlike real optimizer output.
TEST(ProfileAttributionTest, MarksOriginalDerivedAndEliminated) {
  const auto& catalog = UniversityPipeline().schema().catalog;
  // Both queries spell the faculty literal identically (same named
  // arguments, so the parser fills the same anonymous variables) — only
  // the restriction differs, as after a real residue rewrite.
  auto original = datalog::ParseQueryText(
      "q(Name) <- faculty(oid: X, name: Name, salary: Sal, age: Age), "
      "Sal > 50000.",
      &catalog);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  auto rewritten = datalog::ParseQueryText(
      "q(Name) <- faculty(oid: X, name: Name, salary: Sal, age: Age), "
      "Age >= 30.",
      &catalog);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();

  core::PipelineResult result;
  result.original_datalog = *original;
  result.alternatives.resize(2);
  result.alternatives[0].datalog = *original;
  result.alternatives[1].datalog = *rewritten;
  result.alternatives[1].derivation = {
      "add restriction " + rewritten->body[1].atom.ToString() + " [IC4]",
      "remove redundant restriction " + original->body[1].atom.ToString() +
          " (IC1)",
  };

  obs::QueryProfile profile;
  profile.nodes.resize(2);
  profile.nodes[0].literal_index = 0;
  profile.nodes[0].op = "extent-scan";
  profile.nodes[1].literal_index = 1;
  profile.nodes[1].op = "filter";
  core::AnnotateProfile(result, 1, &profile);

  EXPECT_EQ(profile.nodes[0].attribution, "original");
  EXPECT_NE(profile.nodes[1].attribution.find("[IC4]"), std::string::npos)
      << profile.nodes[1].attribution;
  ASSERT_EQ(profile.eliminated.size(), 1u);
  EXPECT_NE(profile.eliminated[0].find("Sal >"), std::string::npos)
      << profile.eliminated[0];
  EXPECT_NE(profile.eliminated[0].find("remove redundant restriction"),
            std::string::npos)
      << profile.eliminated[0];
}

// End-to-end: every executed operator of a real optimized alternative gets
// some attribution; the original alternative is all-"original".
TEST(ProfileAttributionTest, RealPipelineAttributesEveryLiteral) {
  auto result = Optimize(workload::QueryScopeReduction());
  ASSERT_FALSE(result.contradiction);

  auto run = UniversityDb().ProfileQuery(result.alternatives[0].datalog);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  core::AnnotateProfile(result, 0, &run->profile);
  for (const obs::ProfileNode& node : run->profile.nodes) {
    if (node.literal_index < 0 || node.op.empty()) continue;
    EXPECT_EQ(node.attribution, "original")
        << node.op << " " << node.relation;
  }
  EXPECT_TRUE(run->profile.eliminated.empty());

  const size_t best = static_cast<size_t>(result.best_index);
  auto best_run =
      UniversityDb().ProfileQuery(result.alternatives[best].datalog);
  ASSERT_TRUE(best_run.ok()) << best_run.status().ToString();
  core::AnnotateProfile(result, best, &best_run->profile);
  for (const obs::ProfileNode& node : best_run->profile.nodes) {
    if (node.literal_index < 0 || node.op.empty()) continue;
    EXPECT_FALSE(node.attribution.empty())
        << node.op << " " << node.relation;
  }
}

}  // namespace
}  // namespace sqo
