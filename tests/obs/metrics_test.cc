#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <limits>

#include "obs/eval_stats.h"
#include "obs/json.h"

namespace sqo::obs {
namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  registry.Add("optimizer.residues_tried", 3);
  registry.Add("optimizer.residues_tried", 2);
  registry.Add("optimizer.residue_hits");
  EXPECT_EQ(registry.CounterValue("optimizer.residues_tried"), 5u);
  EXPECT_EQ(registry.CounterValue("optimizer.residue_hits"), 1u);
  EXPECT_EQ(registry.CounterValue("absent"), 0u);
}

TEST(MetricsRegistryTest, HistogramSummaries) {
  MetricsRegistry registry;
  for (int i = 1; i <= 100; ++i) {
    registry.Record("pipeline.optimize", i * 1000);
  }
  auto it = registry.histograms().find("pipeline.optimize");
  ASSERT_NE(it, registry.histograms().end());
  const auto summary = it->second.Summarize();
  EXPECT_EQ(summary.count, 100u);
  EXPECT_EQ(summary.max_ns, 100000);
  EXPECT_EQ(summary.sum_ns, 5050 * 1000);
  // Log-bucketed quantiles are approximate: p50 of 1k..100k must land
  // within a factor of 2 of 50k, and p95 within a factor of 2 of 95k.
  EXPECT_GE(summary.p50_ns, 25000);
  EXPECT_LE(summary.p50_ns, 100000);
  EXPECT_GE(summary.p95_ns, summary.p50_ns);
  EXPECT_LE(summary.p95_ns, 190000);
}

TEST(MetricsRegistryTest, EmptyHistogramSummary) {
  DurationHistogram h;
  const auto summary = h.Summarize();
  EXPECT_EQ(summary.count, 0u);
  EXPECT_EQ(summary.p50_ns, 0);
  EXPECT_EQ(summary.max_ns, 0);
}

TEST(DurationHistogramTest, EmptyQuantilesAreZero) {
  DurationHistogram h;
  EXPECT_EQ(h.QuantileNs(0.0), 0);
  EXPECT_EQ(h.QuantileNs(0.5), 0);
  EXPECT_EQ(h.QuantileNs(0.99), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(DurationHistogramTest, SingleSampleDominatesEveryQuantile) {
  DurationHistogram h;
  h.Record(1000);
  const auto s = h.Summarize();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum_ns, 1000);
  EXPECT_EQ(s.max_ns, 1000);
  // Every quantile lands in the one occupied bucket: within 2× of the
  // sample, never above the recorded maximum.
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_GE(h.QuantileNs(q), 500) << q;
    EXPECT_LE(h.QuantileNs(q), 1000) << q;
  }
  EXPECT_EQ(s.p50_ns, s.p99_ns);
}

TEST(DurationHistogramTest, NegativeSamplesClampToZero) {
  DurationHistogram h;
  h.Record(-5);
  const auto s = h.Summarize();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum_ns, 0);
  EXPECT_EQ(s.max_ns, 0);
  EXPECT_EQ(s.p50_ns, 0);
}

TEST(DurationHistogramTest, OverflowBucketHoldsHugeSamples) {
  DurationHistogram h;
  h.Record(std::numeric_limits<int64_t>::max());
  const auto s = h.Summarize();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.max_ns, std::numeric_limits<int64_t>::max());
  // The top bucket's midpoint is clamped to the recorded maximum.
  EXPECT_GT(s.p99_ns, 0);
  EXPECT_LE(s.p99_ns, s.max_ns);
}

TEST(DurationHistogramTest, MergeFromCombinesDisjointBuckets) {
  DurationHistogram small;
  DurationHistogram large;
  for (int i = 0; i < 100; ++i) small.Record(10);
  for (int i = 0; i < 100; ++i) large.Record(1'000'000'000);

  small.MergeFrom(large);
  const auto s = small.Summarize();
  EXPECT_EQ(s.count, 200u);
  EXPECT_EQ(s.sum_ns, 100 * 10 + int64_t{100} * 1'000'000'000);
  EXPECT_EQ(s.max_ns, 1'000'000'000);
  // Half the mass is tiny, half is huge: p50 stays in the small bucket,
  // p90 lands in the large one (each within the 2× bucket error).
  EXPECT_LE(s.p50_ns, 20);
  EXPECT_GE(s.p90_ns, 500'000'000);
  EXPECT_LE(s.p90_ns, 1'000'000'000);
}

TEST(DurationHistogramTest, SummaryReportsTailQuantiles) {
  DurationHistogram h;
  // 90 fast samples and a 10% slow tail: p99 must see the tail's bucket
  // while p90 stays with the crowd.
  for (int i = 0; i < 90; ++i) h.Record(1000);
  for (int i = 0; i < 10; ++i) h.Record(1'000'000);
  const auto s = h.Summarize();
  EXPECT_LE(s.p90_ns, 2000);
  EXPECT_GE(s.p99_ns, 500'000);
  EXPECT_GE(s.p99_ns, s.p90_ns);
  EXPECT_GE(s.p95_ns, s.p50_ns);
}

TEST(DurationHistogramTest, ToJsonCarriesAllQuantiles) {
  MetricsRegistry registry;
  for (int i = 0; i < 10; ++i) registry.Record("d", 4096);
  auto doc = ParseJson(registry.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* hist = doc->Find("histograms")->Find("d");
  ASSERT_NE(hist, nullptr);
  for (const char* field : {"count", "sum_ns", "p50_ns", "p90_ns", "p95_ns",
                            "p99_ns", "max_ns"}) {
    EXPECT_NE(hist->Find(field), nullptr) << field;
  }
}

TEST(MetricsFreeFunctionsTest, NoopWithoutRegistry) {
  ASSERT_EQ(CurrentMetrics(), nullptr);
  Count("nothing");  // must not crash
  { ScopedTimer timer("nothing"); }
}

TEST(MetricsFreeFunctionsTest, RouteThroughInstalledRegistry) {
  MetricsRegistry registry;
  {
    ScopedMetrics install(&registry);
    Count("optimizer.applied.asr");
    Count("optimizer.applied.asr", 2);
    { ScopedTimer timer("eval.evaluate"); }
  }
  EXPECT_EQ(CurrentMetrics(), nullptr);
  EXPECT_EQ(registry.CounterValue("optimizer.applied.asr"), 3u);
  auto it = registry.histograms().find("eval.evaluate");
  ASSERT_NE(it, registry.histograms().end());
  EXPECT_EQ(it->second.Summarize().count, 1u);
}

TEST(MetricsRegistryTest, ToJsonParses) {
  MetricsRegistry registry;
  registry.Add("compile.residues_attached", 129);
  registry.Record("step.dur", 2048);
  auto value = ParseJson(registry.ToJson());
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  const JsonValue* counters = value->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("compile.residues_attached")->number,
                   129.0);
  const JsonValue* hist = value->Find("histograms");
  ASSERT_NE(hist, nullptr);
  const JsonValue* step = hist->Find("step.dur");
  ASSERT_NE(step, nullptr);
  EXPECT_DOUBLE_EQ(step->Find("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(step->Find("max_ns")->number, 2048.0);
}

TEST(EvalStatsExportTest, ExportsEveryFieldWithPrefix) {
  EvalStats stats;
  stats.objects_fetched = 10;
  stats.extent_scans = 1;
  stats.index_probes = 2;
  stats.relationship_traversals = 3;
  stats.method_invocations = 4;
  stats.comparisons = 5;
  stats.negation_checks = 6;
  stats.tuples_emitted = 7;
  stats.results = 8;

  MetricsRegistry registry;
  stats.ExportTo(&registry);
  stats.ExportTo(&registry);  // accumulates
  EXPECT_EQ(registry.CounterValue("eval.objects_fetched"), 20u);
  EXPECT_EQ(registry.CounterValue("eval.extent_scans"), 2u);
  EXPECT_EQ(registry.CounterValue("eval.index_probes"), 4u);
  EXPECT_EQ(registry.CounterValue("eval.relationship_traversals"), 6u);
  EXPECT_EQ(registry.CounterValue("eval.method_invocations"), 8u);
  EXPECT_EQ(registry.CounterValue("eval.comparisons"), 10u);
  EXPECT_EQ(registry.CounterValue("eval.negation_checks"), 12u);
  EXPECT_EQ(registry.CounterValue("eval.tuples_emitted"), 14u);
  EXPECT_EQ(registry.CounterValue("eval.results"), 16u);
  stats.ExportTo(nullptr);  // tolerated
}

}  // namespace
}  // namespace sqo::obs
