#include "obs/json.h"

#include <gtest/gtest.h>

namespace sqo::obs {
namespace {

TEST(JsonWriterTest, NestedObjectsAndArrays) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("q\"1\"");
  w.Key("count");
  w.Int(-3);
  w.Key("items");
  w.BeginArray();
  w.Int(1);
  w.Double(2.5);
  w.Bool(true);
  w.Null();
  w.BeginObject();
  w.Key("k");
  w.UInt(7);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.TakeString(),
            "{\"name\":\"q\\\"1\\\"\",\"count\":-3,"
            "\"items\":[1,2.5,true,null,{\"k\":7}]}");
}

TEST(JsonWriterTest, EscapesControlCharacters) {
  JsonWriter w;
  w.BeginArray();
  w.String("a\nb\tc\x01");
  w.EndArray();
  EXPECT_EQ(w.TakeString(), "[\"a\\nb\\tc\\u0001\"]");
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("spans");
  w.BeginArray();
  w.BeginObject();
  w.Key("id");
  w.Int(1);
  w.Key("name");
  w.String("step3.optimize");
  w.EndObject();
  w.EndArray();
  w.Key("ok");
  w.Bool(true);
  w.EndObject();

  auto value = ParseJson(w.TakeString());
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  ASSERT_EQ(value->kind, JsonValue::Kind::kObject);
  const JsonValue* spans = value->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(spans->items.size(), 1u);
  const JsonValue* name = spans->items[0].Find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->string_value, "step3.optimize");
  const JsonValue* ok = value->Find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->bool_value);
}

TEST(JsonParseTest, ParsesNumbersStringsEscapes) {
  auto value = ParseJson(R"({"a": -1.5e2, "b": "xA\n", "c": [null]})");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_DOUBLE_EQ(value->Find("a")->number, -150.0);
  EXPECT_EQ(value->Find("b")->string_value, "xA\n");
  EXPECT_EQ(value->Find("c")->items[0].kind, JsonValue::Kind::kNull);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("").ok());
}

}  // namespace
}  // namespace sqo::obs
