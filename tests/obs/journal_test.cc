#include "obs/journal.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/context.h"
#include "common/failpoint.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace sqo::obs {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DeactivateAll(); }
  void TearDown() override { failpoint::DeactivateAll(); }

  /// Per-test output path (fresh on every run, so parallel ctest shards
  /// never share a file).
  std::string Path() {
    std::string path = ::testing::TempDir() + "sqo_journal_" +
                       ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name() +
                       ".jsonl";
    std::remove(path.c_str());
    return path;
  }

  static QueryEvent Event(const std::string& query, int64_t duration_ns) {
    QueryEvent event;
    event.query = query;
    event.fingerprint = "deadbeef";
    event.duration_ns = duration_ns;
    return event;
  }

  static std::vector<std::string> Lines(const std::string& path) {
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }
};

TEST_F(JournalTest, RecordAssignsIncreasingSequences) {
  QueryJournal journal;
  EXPECT_EQ(journal.Record(Event("a", 1)), 1u);
  EXPECT_EQ(journal.Record(Event("b", 1)), 2u);
  auto events = journal.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].query, "a");
  EXPECT_EQ(events[1].sequence, 2u);
}

TEST_F(JournalTest, RingOverwritesOldestWhenFull) {
  QueryJournal journal({.capacity = 4});
  for (int i = 0; i < 6; ++i) journal.Record(Event("q" + std::to_string(i), 1));
  auto events = journal.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().sequence, 3u);  // 1 and 2 were evicted
  EXPECT_EQ(events.back().sequence, 6u);
  const auto counters = journal.counters();
  EXPECT_EQ(counters.recorded, 6u);
  EXPECT_EQ(counters.overwritten, 2u);
}

TEST_F(JournalTest, SlowThresholdKeepsPayloadsForOffendersOnly) {
  QueryJournal journal({.capacity = 8, .slow_threshold_ns = 1000});
  QueryEvent fast = Event("fast", 500);
  fast.profile_json = "{\"nodes\":[]}";
  fast.trace_json = "{}";
  QueryEvent slow = Event("slow", 2000);
  slow.profile_json = "{\"nodes\":[]}";
  slow.trace_json = "{}";
  journal.Record(fast);
  journal.Record(slow);

  auto events = journal.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].slow);
  EXPECT_TRUE(events[0].profile_json.empty());
  EXPECT_TRUE(events[0].trace_json.empty());
  EXPECT_TRUE(events[1].slow);
  EXPECT_EQ(events[1].profile_json, "{\"nodes\":[]}");
  EXPECT_EQ(journal.counters().slow, 1u);
}

TEST_F(JournalTest, ZeroThresholdDisablesSlowCapture) {
  QueryJournal journal;  // slow_threshold_ns = 0
  QueryEvent event = Event("q", 1 << 30);
  event.profile_json = "{}";
  journal.Record(event);
  auto events = journal.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].slow);
  EXPECT_TRUE(events[0].profile_json.empty());
}

TEST_F(JournalTest, ThresholdIsAdjustableAtRuntime) {
  QueryJournal journal;
  EXPECT_EQ(journal.slow_threshold_ns(), 0);
  journal.set_slow_threshold_ns(250);
  EXPECT_EQ(journal.slow_threshold_ns(), 250);
  journal.Record(Event("q", 300));
  EXPECT_TRUE(journal.Snapshot().back().slow);
}

TEST_F(JournalTest, FlushAppendsJsonlAndIsIncremental) {
  const std::string path = Path();
  QueryJournal journal;
  journal.Record(Event("first", 10));
  journal.Record(Event("second", 20));
  ASSERT_TRUE(journal.Flush(path).ok());
  EXPECT_EQ(Lines(path).size(), 2u);

  // Nothing new: the file stays as-is.
  ASSERT_TRUE(journal.Flush(path).ok());
  EXPECT_EQ(Lines(path).size(), 2u);

  // New events append; already-flushed ones are never rewritten.
  journal.Record(Event("third", 30));
  ASSERT_TRUE(journal.Flush(path).ok());
  auto lines = Lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(journal.counters().flushed, 3u);

  // Every line is one self-contained JSON object.
  for (const std::string& line : lines) {
    auto doc = ParseJson(line);
    ASSERT_TRUE(doc.ok()) << line;
    ASSERT_NE(doc->Find("query"), nullptr);
    ASSERT_NE(doc->Find("seq"), nullptr);
  }
}

TEST_F(JournalTest, FlushFailpointIsFailOpen) {
  const std::string path = Path();
  QueryJournal journal;
  journal.Record(Event("a", 1));
  journal.Record(Event("b", 2));

  failpoint::Activate("journal.flush", failpoint::Action{});
  EXPECT_FALSE(journal.Flush(path).ok());
  EXPECT_TRUE(Lines(path).empty());
  EXPECT_EQ(journal.counters().flush_failures, 1u);
  EXPECT_EQ(journal.counters().flushed, 0u);
  // The journal stays fully usable: events retained, recording works.
  EXPECT_EQ(journal.Snapshot().size(), 2u);
  journal.Record(Event("c", 3));

  // Disarmed, the next flush writes everything the failed one left behind.
  failpoint::Deactivate("journal.flush");
  ASSERT_TRUE(journal.Flush(path).ok());
  EXPECT_EQ(Lines(path).size(), 3u);
  EXPECT_EQ(journal.counters().flushed, 3u);
}

TEST_F(JournalTest, FlushHonorsGovernance) {
  const std::string path = Path();
  QueryJournal journal;
  journal.Record(Event("a", 1));
  {
    ExecutionContext context;
    context.SetDeadlineAfter(std::chrono::milliseconds(0));
    ScopedContext install(&context);
    Status s = journal.Flush(path);
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  }
  EXPECT_EQ(journal.counters().flush_failures, 1u);
  EXPECT_TRUE(Lines(path).empty());
  // Without the expired context the same flush succeeds (fail-open).
  ASSERT_TRUE(journal.Flush(path).ok());
  EXPECT_EQ(Lines(path).size(), 1u);
}

TEST_F(JournalTest, RecordCountsIntoInstalledMetrics) {
  MetricsRegistry metrics;
  ScopedMetrics install(&metrics);
  QueryJournal journal({.capacity = 8, .slow_threshold_ns = 10});
  journal.Record(Event("fast", 1));
  journal.Record(Event("slow", 100));
  EXPECT_EQ(metrics.CounterValue("journal.recorded"), 2u);
  EXPECT_EQ(metrics.CounterValue("journal.slow"), 1u);
}

TEST_F(JournalTest, ToJsonlRoundTripsEventFields) {
  QueryEvent event = Event("select 1", 42);
  event.sequence = 7;
  event.status = "ok";
  event.degraded = true;
  event.chosen_alternative = 2;
  event.n_alternatives = 5;
  event.stats.results = 9;
  auto doc = ParseJson(QueryJournal::ToJsonl(event));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_DOUBLE_EQ(doc->Find("seq")->number, 7.0);
  EXPECT_DOUBLE_EQ(doc->Find("duration_ns")->number, 42.0);
  EXPECT_EQ(doc->Find("degraded")->kind, JsonValue::Kind::kBool);
  EXPECT_TRUE(doc->Find("degraded")->bool_value);
  EXPECT_DOUBLE_EQ(doc->Find("chosen_alternative")->number, 2.0);
}

}  // namespace
}  // namespace sqo::obs
