#include "obs/trace.h"

#include <gtest/gtest.h>

#include "obs/json.h"

namespace sqo::obs {
namespace {

TEST(TracerTest, RecordsNestedSpansWithParents) {
  Tracer tracer;
  uint64_t outer = tracer.BeginSpan("outer");
  uint64_t inner = tracer.BeginSpan("inner");
  tracer.EndSpan(inner);
  tracer.EndSpan(outer);

  ASSERT_EQ(tracer.spans().size(), 2u);
  const SpanRecord& o = tracer.spans()[0];
  const SpanRecord& i = tracer.spans()[1];
  EXPECT_EQ(o.name, "outer");
  EXPECT_EQ(o.parent, 0u);
  EXPECT_EQ(i.name, "inner");
  EXPECT_EQ(i.parent, o.id);
  EXPECT_GE(o.dur_ns, i.dur_ns);
  EXPECT_GE(i.dur_ns, 0);
}

TEST(TracerTest, EndSpanClosesForgottenDescendants) {
  Tracer tracer;
  uint64_t outer = tracer.BeginSpan("outer");
  tracer.BeginSpan("leaked");
  tracer.EndSpan(outer);  // must close "leaked" too
  for (const SpanRecord& s : tracer.spans()) {
    EXPECT_GE(s.dur_ns, 0) << s.name << " left open";
  }
}

TEST(TracerTest, DoubleEndIsIgnored) {
  Tracer tracer;
  uint64_t a = tracer.BeginSpan("a");
  tracer.EndSpan(a);
  tracer.EndSpan(a);  // no effect
  uint64_t b = tracer.BeginSpan("b");
  tracer.EndSpan(b);
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[1].parent, 0u);
}

TEST(SpanTest, NoopWithoutInstalledTracer) {
  ASSERT_EQ(CurrentTracer(), nullptr);
  Span span("orphan");
  EXPECT_FALSE(span.active());
  span.Tag("k", "v");  // must not crash
}

TEST(SpanTest, RaiiSpansNestThroughInstalledTracer) {
  Tracer tracer;
  {
    ScopedTracer install(&tracer);
    Span outer("outer");
    outer.Tag("phase", "step3");
    outer.Tag("count", int64_t{42});
    { Span inner("inner"); }
  }
  ASSERT_EQ(CurrentTracer(), nullptr);
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[0].name, "outer");
  EXPECT_EQ(tracer.spans()[1].parent, tracer.spans()[0].id);
  const auto& tags = tracer.spans()[0].tags;
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0].first, "phase");
  EXPECT_EQ(tags[0].second, "step3");
  EXPECT_EQ(tags[1].second, "42");
}

TEST(TracerTest, ToJsonParsesAndCarriesTags) {
  Tracer tracer;
  {
    ScopedTracer install(&tracer);
    Span span("residue.apply");
    span.Tag("result", "hit");
  }
  auto value = ParseJson(tracer.ToJson());
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  const JsonValue* spans = value->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->items.size(), 1u);
  const JsonValue& s = spans->items[0];
  EXPECT_EQ(s.Find("name")->string_value, "residue.apply");
  EXPECT_GE(s.Find("dur_ns")->number, 0.0);
  const JsonValue* tags = s.Find("tags");
  ASSERT_NE(tags, nullptr);
  EXPECT_EQ(tags->Find("result")->string_value, "hit");
}

TEST(TracerTest, ToTextIndentsChildren) {
  Tracer tracer;
  uint64_t outer = tracer.BeginSpan("outer");
  uint64_t inner = tracer.BeginSpan("inner");
  tracer.EndSpan(inner);
  tracer.EndSpan(outer);
  const std::string text = tracer.ToText();
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("  inner"), std::string::npos);
}

TEST(TracerTest, ClearResets) {
  Tracer tracer;
  tracer.EndSpan(tracer.BeginSpan("x"));
  tracer.Clear();
  EXPECT_TRUE(tracer.spans().empty());
  tracer.EndSpan(tracer.BeginSpan("y"));
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].id, 1u);
}

}  // namespace
}  // namespace sqo::obs
