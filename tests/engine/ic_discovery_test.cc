#include "engine/ic_discovery.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "datalog/parser.h"
#include "engine/constraint_checker.h"
#include "sqo/optimizer.h"
#include "sqo/semantic_compiler.h"
#include "workload/university.h"

namespace sqo::engine {
namespace {

class IcDiscoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pipeline = workload::MakeUniversityPipeline();
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    pipeline_ = std::make_unique<core::Pipeline>(std::move(pipeline).value());
    db_ = std::make_unique<Database>(&pipeline_->schema());
    workload::GeneratorConfig config;
    config.n_students = 50;
    config.n_faculty = 10;
    ASSERT_TRUE(workload::PopulateUniversity(config, *pipeline_, db_.get()).ok());
  }

  std::unique_ptr<core::Pipeline> pipeline_;
  std::unique_ptr<Database> db_;
};

TEST_F(IcDiscoveryTest, DiscoversFacultySalaryRange) {
  auto discovered = DiscoverConstraints(*db_);
  const datalog::Clause* min_ic = nullptr;
  for (const datalog::Clause& ic : discovered) {
    if (ic.label == "discovered:range:faculty.salary:min") min_ic = &ic;
  }
  ASSERT_NE(min_ic, nullptr);
  // The generator draws salaries from [45K, 120K], so the mined lower bound
  // is at least 45K — strictly stronger than the declared IC1 (> 40K).
  ASSERT_TRUE(min_ic->head.has_value());
  EXPECT_EQ(min_ic->head->atom.op(), datalog::CmpOp::kGe);
  EXPECT_GE(min_ic->head->atom.rhs().constant().AsNumeric(), 45000.0);
}

TEST_F(IcDiscoveryTest, DiscoversNameKey) {
  auto discovered = DiscoverConstraints(*db_);
  bool person_name_key = false;
  for (const datalog::Clause& ic : discovered) {
    if (ic.label == "discovered:key:person.name") person_name_key = true;
  }
  EXPECT_TRUE(person_name_key);
}

TEST_F(IcDiscoveryTest, NoKeyForRepeatingAttribute) {
  auto discovered = DiscoverConstraints(*db_);
  for (const datalog::Clause& ic : discovered) {
    // Ages repeat across persons; rank repeats across faculty.
    EXPECT_NE(ic.label, "discovered:key:person.age");
    EXPECT_NE(ic.label, "discovered:key:faculty.rank");
  }
}

TEST_F(IcDiscoveryTest, AllDiscoveredConstraintsHoldOnTheData) {
  auto discovered = DiscoverConstraints(*db_);
  ASSERT_FALSE(discovered.empty());
  auto report = CheckConstraints(*db_, discovered, /*max_violations=*/4);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const Violation& v : report->violations) ADD_FAILURE() << v.ToString();
  EXPECT_TRUE(report->skipped.empty());
}

TEST_F(IcDiscoveryTest, SmallExtentsAreSkipped) {
  DiscoveryOptions options;
  options.min_extent = 1000000;
  EXPECT_TRUE(DiscoverConstraints(*db_, options).empty());
}

TEST_F(IcDiscoveryTest, OptionsDisableFamilies) {
  DiscoveryOptions no_keys;
  no_keys.keys = false;
  for (const datalog::Clause& ic : DiscoverConstraints(*db_, no_keys)) {
    EXPECT_FALSE(sqo::StartsWith(ic.label, "discovered:key:")) << ic.label;
  }
  DiscoveryOptions no_ranges;
  no_ranges.ranges = false;
  for (const datalog::Clause& ic : DiscoverConstraints(*db_, no_ranges)) {
    EXPECT_FALSE(sqo::StartsWith(ic.label, "discovered:range:")) << ic.label;
  }
}

TEST_F(IcDiscoveryTest, DiscoveredIcsDriveSqo) {
  // Compile a fresh semantic catalog from the *discovered* constraints only
  // and verify they enable contradiction detection — SQO with zero declared
  // application knowledge.
  auto discovered = DiscoverConstraints(*db_);
  auto compiled = core::CompileSemantics(&pipeline_->schema(), discovered, {});
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  core::Optimizer optimizer(&*compiled);
  // Query for faculty below the mined salary floor: contradiction.
  auto query = datalog::ParseQueryText(
      "q(X) :- faculty(oid: X, salary: S), S < 40K.",
      &pipeline_->schema().catalog);
  ASSERT_TRUE(query.ok());
  auto outcome = optimizer.Optimize(*query);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->contradiction);
}

}  // namespace
}  // namespace sqo::engine
