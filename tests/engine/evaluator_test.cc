#include "engine/evaluator.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "engine/database.h"
#include "odl/parser.h"
#include "workload/university.h"

namespace sqo::engine {
namespace {

using sqo::Value;

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pipeline = workload::MakeUniversityPipeline();
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    pipeline_ = std::make_unique<core::Pipeline>(std::move(pipeline).value());
    db_ = std::make_unique<Database>(&pipeline_->schema());

    workload::GeneratorConfig config;
    config.n_plain_persons = 10;
    config.n_students = 20;
    config.n_faculty = 4;
    config.n_courses = 3;
    config.sections_per_course = 2;
    ASSERT_TRUE(workload::PopulateUniversity(config, *pipeline_, db_.get()).ok());
  }

  datalog::Query ParseQ(const std::string& text) {
    auto q = datalog::ParseQueryText(text, &pipeline_->schema().catalog);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  std::vector<std::vector<Value>> Run(const std::string& text,
                                      EvalStats* stats = nullptr) {
    auto rows = db_->Run(ParseQ(text), stats);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? *rows : std::vector<std::vector<Value>>{};
  }

  std::unique_ptr<core::Pipeline> pipeline_;
  std::unique_ptr<Database> db_;
};

TEST_F(EvaluatorTest, ExtentScanProjectsAttributes) {
  auto rows = Run("q(N) :- faculty(oid: X, name: N).");
  EXPECT_EQ(rows.size(), 4u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.size(), 1u);
    EXPECT_EQ(row[0].kind(), sqo::ValueKind::kString);
  }
}

TEST_F(EvaluatorTest, SubclassMembersVisibleInSuperExtent) {
  auto persons = Run("q(X) :- person(oid: X).");
  auto students = Run("q(X) :- student(oid: X).");
  auto faculty = Run("q(X) :- faculty(oid: X).");
  auto tas = Run("q(X) :- ta(oid: X).");
  EXPECT_EQ(persons.size(),
            10u + 20u + 4u + 6u);  // plain + students + faculty + TAs
  EXPECT_EQ(students.size(), 26u);  // students + TAs
  EXPECT_EQ(faculty.size(), 4u);
  EXPECT_EQ(tas.size(), 6u);
}

TEST_F(EvaluatorTest, ComparisonFiltersRows) {
  auto rows = Run("q(N, A) :- person(oid: X, name: N, age: A), A >= 31.");
  for (const auto& row : rows) {
    EXPECT_GE(row[1].AsNumeric(), 31);
  }
  auto all = Run("q(N, A) :- person(oid: X, name: N, age: A).");
  EXPECT_LT(rows.size(), all.size());
}

TEST_F(EvaluatorTest, SelectionPushdownUsesKeyIndex) {
  EvalStats stats;
  auto rows = Run("q(X) :- student(oid: X, name: N), N = \"john\".", &stats);
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ(stats.index_probes, 1u);
  EXPECT_EQ(stats.extent_scans, 0u);
  EXPECT_LE(stats.objects_fetched, 2u);
}

TEST_F(EvaluatorTest, RelationshipJoin) {
  auto rows = Run(
      "q(N, Num) :- student(oid: X, name: N), takes(X, Y), "
      "section(oid: Y, number: Num), N = \"john\".");
  EXPECT_FALSE(rows.empty());
}

TEST_F(EvaluatorTest, ReverseTraversal) {
  // dst bound, src free: uses backward adjacency.
  auto rows = Run(
      "q(S) :- section(oid: Y, number: \"0.0\"), is_taken_by(Y, S).");
  auto rows2 = Run(
      "q(S) :- section(oid: Y, number: \"0.0\"), takes(S, Y).");
  EXPECT_EQ(rows.size(), rows2.size());
  EXPECT_FALSE(rows.empty());
}

TEST_F(EvaluatorTest, MethodInvocation) {
  auto rows = Run(
      "q(V) :- faculty(oid: X), taxes_withheld(X, 10%, V).");
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) {
    // Faculty salaries exceed 40K, so withheld > 4000.
    EXPECT_GT(row[0].AsNumeric(), 4000);
  }
}

TEST_F(EvaluatorTest, MethodResultFilter) {
  auto rows = Run(
      "q(V) :- faculty(oid: X), taxes_withheld(X, 10%, V), V < 1000.");
  EXPECT_TRUE(rows.empty());
}

TEST_F(EvaluatorTest, NegatedClassAtomAntiJoin) {
  auto all = Run("q(X) :- person(oid: X).");
  auto non_faculty = Run("q(X) :- person(oid: X), not faculty(oid: X).");
  EXPECT_EQ(non_faculty.size(), all.size() - 4u);
}

TEST_F(EvaluatorTest, MembershipGuardSkipsFetches) {
  EvalStats guarded, unguarded;
  Run("q(X) :- person(oid: X), not faculty(oid: X).", &guarded);
  Run("q(X) :- person(oid: X).", &unguarded);
  // With the guard, faculty members are never fetched.
  EXPECT_EQ(guarded.objects_fetched + 4u, unguarded.objects_fetched);
  EXPECT_GT(guarded.negation_checks, 0u);
}

TEST_F(EvaluatorTest, NegatedRelationshipAtom) {
  // Sections nobody takes: none, since TAs take every section.
  auto rows = Run("q(Y) :- section(oid: Y), not is_taken_by(Y, _).");
  EXPECT_TRUE(rows.empty());
}

TEST_F(EvaluatorTest, DistinctDeduplicates) {
  // Ages repeat across persons; distinct collapses them.
  EvalStats stats;
  auto rows = Run("q(A) :- person(oid: X, age: A).", &stats);
  EXPECT_LT(rows.size(), stats.tuples_emitted);
  EXPECT_EQ(rows.size(), stats.results);
}

TEST_F(EvaluatorTest, BagSemanticsWhenDistinctOff) {
  EvalOptions options;
  options.distinct = false;
  Evaluator evaluator(&db_->store(), options);
  EvalStats stats;
  auto rows = evaluator.Evaluate(ParseQ("q(A) :- person(oid: X, age: A)."),
                                 &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), stats.tuples_emitted);
}

TEST_F(EvaluatorTest, ConstantInHead) {
  auto rows = Run("q(X, 1) :- faculty(oid: X).");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][1], Value::Int(1));
}

TEST_F(EvaluatorTest, GroundAtomAsExistenceCheck) {
  auto rows = Run("q(1) :- faculty(oid: X, name: \"prof_31\").");
  // prof names are prof_<counter>; whether this one exists depends on the
  // counter, so just check the query runs and yields 0 or 1 rows.
  EXPECT_LE(rows.size(), 1u);
}

TEST_F(EvaluatorTest, UnsafeQueryRejected) {
  auto result = db_->Run(ParseQ("q(X) :- person(oid: X, age: A), B < A."));
  EXPECT_FALSE(result.ok());
}

TEST_F(EvaluatorTest, UnknownRelationRejected) {
  auto q = datalog::ParseQueryText("q(X) :- nothing(X).");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(db_->Run(*q).ok());
}

TEST_F(EvaluatorTest, UnorderableComparisonRejected) {
  auto result = db_->Run(ParseQ(
      "q(X) :- person(oid: X, name: N, age: A), N < A."));
  EXPECT_FALSE(result.ok());
}

TEST_F(EvaluatorTest, ExplicitOrderOverridesPlanner) {
  datalog::Query q = ParseQ("q(N) :- person(oid: X, name: N, age: A), A < 30.");
  Evaluator evaluator(&db_->store());
  std::vector<size_t> order = {0, 1};
  auto rows = evaluator.Evaluate(q, nullptr, &order);
  ASSERT_TRUE(rows.ok());
  std::vector<size_t> bad_order = {0};
  EXPECT_FALSE(evaluator.Evaluate(q, nullptr, &bad_order).ok());
}

TEST_F(EvaluatorTest, AsrBehavesLikeRelationship) {
  auto via_path = Run(
      "q(X, W) :- student(oid: X), takes(X, Y), is_section_of(Y, Z), "
      "has_sections(Z, V), has_ta(V, W).");
  auto via_asr = Run("q(X, W) :- student(oid: X), asr_student_ta(X, W).");
  EXPECT_EQ(via_path.size(), via_asr.size());
}

}  // namespace
}  // namespace sqo::engine
