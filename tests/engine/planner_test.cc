#include "engine/planner.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "engine/database.h"
#include "workload/university.h"

namespace sqo::engine {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pipeline = workload::MakeUniversityPipeline();
    ASSERT_TRUE(pipeline.ok());
    pipeline_ = std::make_unique<core::Pipeline>(std::move(pipeline).value());
    db_ = std::make_unique<Database>(&pipeline_->schema());
    workload::GeneratorConfig config;
    config.n_students = 50;
    ASSERT_TRUE(workload::PopulateUniversity(config, *pipeline_, db_.get()).ok());
  }

  datalog::Query ParseQ(const std::string& text) {
    auto q = datalog::ParseQueryText(text, &pipeline_->schema().catalog);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  std::unique_ptr<core::Pipeline> pipeline_;
  std::unique_ptr<Database> db_;
};

TEST_F(PlannerTest, OrderCoversAllLiteralsExactlyOnce) {
  datalog::Query q = ParseQ(
      "q(N) :- student(oid: X, name: N), takes(X, Y), is_taught_by(Y, Z), "
      "faculty(oid: Z, salary: S), S > 50K.");
  Plan plan = PlanQuery(q, db_->store());
  ASSERT_EQ(plan.order.size(), q.body.size());
  std::set<size_t> seen(plan.order.begin(), plan.order.end());
  EXPECT_EQ(seen.size(), q.body.size());
}

TEST_F(PlannerTest, ComparisonsPlacedAfterBindings) {
  datalog::Query q = ParseQ(
      "q(N) :- S > 50K, faculty(oid: Z, name: N, salary: S).");
  Plan plan = PlanQuery(q, db_->store());
  // The comparison (index 0) must come after the faculty atom (index 1).
  ASSERT_EQ(plan.order.size(), 2u);
  EXPECT_EQ(plan.order[0], 1u);
  EXPECT_EQ(plan.order[1], 0u);
}

TEST_F(PlannerTest, SelectiveConstantStartsThePlan) {
  datalog::Query q = ParseQ(
      "q(Num) :- student(oid: X, name: N), takes(X, Y), "
      "section(oid: Y, number: Num), N = \"john\".");
  Plan plan = PlanQuery(q, db_->store());
  // The student atom (index-probeable thanks to constant pushdown on the
  // name key) is the first *relation* access in the plan; the constant
  // equality itself may be placed before it as a free filter.
  for (size_t i = 0; i < plan.order.size(); ++i) {
    const datalog::Literal& lit = q.body[plan.order[i]];
    if (!lit.atom.is_predicate()) continue;
    EXPECT_EQ(lit.atom.predicate(), "student");
    EXPECT_NE(plan.steps[i].find("index probe"), std::string::npos)
        << plan.ToString();
    break;
  }
}

TEST_F(PlannerTest, SmallerExtentPreferredWithoutBindings) {
  datalog::Query q = ParseQ("q(X, Y) :- person(oid: X), faculty(oid: Y).");
  Plan plan = PlanQuery(q, db_->store());
  // Faculty (20) is much smaller than person (120+): scan it first.
  EXPECT_EQ(q.body[plan.order[0]].atom.predicate(), "faculty");
}

TEST_F(PlannerTest, NegationAfterItsVariableIsBound) {
  datalog::Query q = ParseQ(
      "q(X) :- not faculty(oid: X), person(oid: X).");
  Plan plan = PlanQuery(q, db_->store());
  EXPECT_EQ(plan.order[0], 1u);  // person first
  EXPECT_EQ(plan.order[1], 0u);
}

TEST_F(PlannerTest, GuardedScanEstimatedCheaper) {
  datalog::Query guarded = ParseQ(
      "q(X) :- person(oid: X), not faculty(oid: X).");
  datalog::Query plain = ParseQ("q(X) :- person(oid: X).");
  Plan guarded_plan = PlanQuery(guarded, db_->store());
  Plan plain_plan = PlanQuery(plain, db_->store());
  // The guard shrinks the scan estimate below scan + separate anti-join.
  EXPECT_LT(guarded_plan.cost, plain_plan.cost * 1.5);
  EXPECT_NE(guarded_plan.ToString().find("guarded"), std::string::npos);
}

TEST_F(PlannerTest, BoundRelationshipTraversalCheaperThanPairScan) {
  datalog::Query bound = ParseQ(
      "q(Y) :- student(oid: X, name: \"john\"), takes(X, Y).");
  datalog::Query unbound = ParseQ("q(X, Y) :- takes(X, Y).");
  EXPECT_LT(PlanQuery(bound, db_->store()).cost,
            PlanQuery(unbound, db_->store()).cost);
}

TEST_F(PlannerTest, UnplaceableLiteralFallsBackToTextualOrder) {
  // B and C never bound: the planner still covers every literal.
  datalog::Query q = ParseQ("q(X) :- person(oid: X), B < C.");
  Plan plan = PlanQuery(q, db_->store());
  EXPECT_EQ(plan.order.size(), 2u);
}

TEST_F(PlannerTest, CardinalityEstimatePositive) {
  datalog::Query q = ParseQ("q(X) :- person(oid: X, age: A), A < 30.");
  Plan plan = PlanQuery(q, db_->store());
  EXPECT_GT(plan.cardinality, 0.0);
  EXPECT_GT(plan.cost, 0.0);
}

TEST_F(PlannerTest, PlanToStringListsSteps) {
  datalog::Query q = ParseQ("q(X) :- person(oid: X, age: A), A < 30.");
  Plan plan = PlanQuery(q, db_->store());
  std::string s = plan.ToString();
  EXPECT_NE(s.find("extent scan person"), std::string::npos);
  EXPECT_NE(s.find("filter"), std::string::npos);
}

}  // namespace
}  // namespace sqo::engine
