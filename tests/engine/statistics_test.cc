#include "engine/statistics.h"

#include <gtest/gtest.h>

namespace sqo::engine {
namespace {

EvalStats MakeStats(uint64_t base) {
  EvalStats s;
  s.objects_fetched = base + 1;
  s.extent_scans = base + 2;
  s.index_probes = base + 3;
  s.relationship_traversals = base + 4;
  s.method_invocations = base + 5;
  s.comparisons = base + 6;
  s.negation_checks = base + 7;
  s.tuples_emitted = base + 8;
  s.results = base + 9;
  return s;
}

TEST(EvalStatsTest, DefaultsToZero) {
  EvalStats s;
  EXPECT_EQ(s.objects_fetched, 0u);
  EXPECT_EQ(s.extent_scans, 0u);
  EXPECT_EQ(s.index_probes, 0u);
  EXPECT_EQ(s.relationship_traversals, 0u);
  EXPECT_EQ(s.method_invocations, 0u);
  EXPECT_EQ(s.comparisons, 0u);
  EXPECT_EQ(s.negation_checks, 0u);
  EXPECT_EQ(s.tuples_emitted, 0u);
  EXPECT_EQ(s.results, 0u);
}

TEST(EvalStatsTest, PlusEqualsAccumulatesEveryField) {
  EvalStats a = MakeStats(10);
  const EvalStats b = MakeStats(100);
  EvalStats& ref = (a += b);
  EXPECT_EQ(&ref, &a);
  EXPECT_EQ(a.objects_fetched, 112u);
  EXPECT_EQ(a.extent_scans, 114u);
  EXPECT_EQ(a.index_probes, 116u);
  EXPECT_EQ(a.relationship_traversals, 118u);
  EXPECT_EQ(a.method_invocations, 120u);
  EXPECT_EQ(a.comparisons, 122u);
  EXPECT_EQ(a.negation_checks, 124u);
  EXPECT_EQ(a.tuples_emitted, 126u);
  EXPECT_EQ(a.results, 128u);
}

TEST(EvalStatsTest, ResetZeroesEveryField) {
  EvalStats s = MakeStats(50);
  s.Reset();
  EXPECT_EQ(s.objects_fetched, 0u);
  EXPECT_EQ(s.results, 0u);
  EXPECT_EQ(s.ToString(), EvalStats().ToString());
}

TEST(EvalStatsTest, ToStringNamesEveryCounter) {
  const std::string text = MakeStats(0).ToString();
  EXPECT_EQ(text,
            "fetched=1 scans=2 probes=3 traversals=4 methods=5 "
            "comparisons=6 negchecks=7 emitted=8 results=9");
}

}  // namespace
}  // namespace sqo::engine
