#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "engine/database.h"
#include "engine/evaluator.h"
#include "obs/metrics.h"
#include "workload/university.h"

namespace sqo::engine {
namespace {

using sqo::Value;

/// Order-insensitive canonical form of a result set, for differential
/// comparison between evaluation strategies.
std::multiset<std::string> Canon(const std::vector<std::vector<Value>>& rows) {
  std::multiset<std::string> out;
  for (const auto& row : rows) {
    std::string line;
    for (const Value& v : row) line += v.ToString() + "|";
    out.insert(std::move(line));
  }
  return out;
}

class LazyIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pipeline = workload::MakeUniversityPipeline();
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    pipeline_ = std::make_unique<core::Pipeline>(std::move(pipeline).value());
    db_ = std::make_unique<Database>(&pipeline_->schema());

    workload::GeneratorConfig config;
    config.n_plain_persons = 20;
    config.n_students = 60;
    config.n_faculty = 8;
    config.n_courses = 5;
    config.sections_per_course = 3;
    ASSERT_TRUE(workload::PopulateUniversity(config, *pipeline_, db_.get()).ok());
  }

  datalog::Query ParseQ(const std::string& text) {
    auto q = datalog::ParseQueryText(text, &pipeline_->schema().catalog);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  size_t AgePos() const {
    const datalog::RelationSignature* sig =
        pipeline_->schema().catalog.Find("person");
    return *sig->AttributeIndex("age");
  }

  std::unique_ptr<core::Pipeline> pipeline_;
  std::unique_ptr<Database> db_;
};

TEST_F(LazyIndexTest, BuildsOnFirstProbeAndAnswersLookups) {
  ObjectStore& store = db_->store();
  const size_t age_pos = AgePos();
  const sqo::Oid first = store.Extent("person").front();
  auto age = store.AttributeOf("person", first, age_pos);
  ASSERT_TRUE(age.ok());

  obs::MetricsRegistry metrics;
  obs::ScopedMetrics install(&metrics);
  bool built = false;
  const std::vector<sqo::Oid>* oids =
      store.LazyIndexLookup("person", age_pos, *age, 16, &built);
  ASSERT_TRUE(built);
  ASSERT_NE(oids, nullptr);
  EXPECT_NE(std::find(oids->begin(), oids->end(), first), oids->end());
  EXPECT_EQ(metrics.CounterValue("index.lazy_builds"), 1u);

  // Second probe reuses the built index.
  store.LazyIndexLookup("person", age_pos, *age, 16, &built);
  EXPECT_TRUE(built);
  EXPECT_EQ(metrics.CounterValue("index.lazy_builds"), 1u);
}

TEST_F(LazyIndexTest, MutationDeltaMaintainsLazyIndex) {
  ObjectStore& store = db_->store();
  const size_t age_pos = AgePos();
  const sqo::Oid first = store.Extent("person").front();
  auto old_age = store.AttributeOf("person", first, age_pos);
  ASSERT_TRUE(old_age.ok());

  bool built = false;
  store.LazyIndexLookup("person", age_pos, *old_age, 16, &built);
  ASSERT_TRUE(built);

  ASSERT_TRUE(store.UpdateAttribute(first, "age", Value::Int(999)).ok());

  // The update was delta-applied in place (no drop/rebuild): the index
  // reflects the new value and the old entry is gone.
  const std::vector<sqo::Oid>* updated =
      store.LazyIndexLookup("person", age_pos, Value::Int(999), 16, &built);
  ASSERT_TRUE(built);
  ASSERT_NE(updated, nullptr);
  EXPECT_NE(std::find(updated->begin(), updated->end(), first), updated->end());
  const std::vector<sqo::Oid>* stale =
      store.LazyIndexLookup("person", age_pos, *old_age, 16, &built);
  if (stale != nullptr) {
    EXPECT_EQ(std::find(stale->begin(), stale->end(), first), stale->end());
  }
}

TEST_F(LazyIndexTest, SmallExtentsAreNotIndexed) {
  ObjectStore& store = db_->store();
  bool built = true;
  const std::vector<sqo::Oid>* oids = store.LazyIndexLookup(
      "person", AgePos(), Value::Int(30), 1'000'000'000, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(oids, nullptr);
}

TEST_F(LazyIndexTest, EqualitySelectionUsesLazyIndexInsteadOfScan) {
  // `age` has no explicit index; with auto-indexing the constant selection
  // probes instead of scanning the person extent.
  const std::string text = "q(X) :- person(oid: X, age: A), A = 31.";
  EvalOptions indexed;
  EvalOptions linear;
  linear.auto_index = false;
  EvalStats stats_indexed, stats_linear;
  auto rows_indexed = db_->Run(ParseQ(text), &stats_indexed, indexed);
  auto rows_linear = db_->Run(ParseQ(text), &stats_linear, linear);
  ASSERT_TRUE(rows_indexed.ok());
  ASSERT_TRUE(rows_linear.ok());
  EXPECT_EQ(Canon(*rows_indexed), Canon(*rows_linear));
  EXPECT_EQ(stats_indexed.extent_scans, 0u);
  EXPECT_GT(stats_indexed.index_probes, 0u);
  EXPECT_GT(stats_linear.extent_scans, 0u);
  EXPECT_LT(stats_indexed.objects_fetched, stats_linear.objects_fetched);
}

TEST_F(LazyIndexTest, DifferentialAcrossEqualityQueries) {
  const char* queries[] = {
      // Constant selection on an unindexed attribute.
      "q(X) :- person(oid: X, age: A), A = 40.",
      // Constant selection matching the TA salary cohort.
      "q(N) :- employee(oid: X, name: N, salary: S), S = 18000.0.",
      // Join on a shared attribute: the second atom probes per binding.
      "q(N, M) :- faculty(oid: X, name: N, age: A), "
      "person(oid: Y, name: M, age: A).",
      // Relationship join plus selection.
      "q(N, Num) :- student(oid: X, name: N, age: A), A = 20, takes(X, Y), "
      "section(oid: Y, number: Num).",
  };
  for (const char* text : queries) {
    EvalOptions indexed;
    EvalOptions linear;
    linear.auto_index = false;
    auto rows_indexed = db_->Run(ParseQ(text), nullptr, indexed);
    auto rows_linear = db_->Run(ParseQ(text), nullptr, linear);
    ASSERT_TRUE(rows_indexed.ok()) << text;
    ASSERT_TRUE(rows_linear.ok()) << text;
    EXPECT_EQ(Canon(*rows_indexed), Canon(*rows_linear)) << text;
  }
}

TEST_F(LazyIndexTest, WorkloadAlternativesIdenticalWithAndWithoutIndexes) {
  // Every alternative of every paper query must return the same result set
  // under indexed and linear evaluation — and across alternatives, since
  // they are semantically equivalent.
  const std::string queries[] = {
      workload::QueryScopeReduction(),
      workload::QueryJoinElimination(),
      workload::QueryAsrDirect(),
      workload::QueryAsrIndirect(),
  };
  for (const std::string& oql : queries) {
    auto result = pipeline_->OptimizeText(oql);
    ASSERT_TRUE(result.ok()) << oql;
    ASSERT_FALSE(result->contradiction);
    ASSERT_FALSE(result->alternatives.empty());
    EvalOptions indexed;
    EvalOptions linear;
    linear.auto_index = false;
    std::multiset<std::string> reference;
    bool have_reference = false;
    for (const core::Alternative& alt : result->alternatives) {
      auto rows_indexed = db_->Run(alt.datalog, nullptr, indexed);
      auto rows_linear = db_->Run(alt.datalog, nullptr, linear);
      ASSERT_TRUE(rows_indexed.ok()) << alt.datalog.ToString();
      ASSERT_TRUE(rows_linear.ok()) << alt.datalog.ToString();
      EXPECT_EQ(Canon(*rows_indexed), Canon(*rows_linear))
          << alt.datalog.ToString();
      if (!have_reference) {
        reference = Canon(*rows_indexed);
        have_reference = true;
      } else {
        EXPECT_EQ(Canon(*rows_indexed), reference) << alt.datalog.ToString();
      }
    }
  }
}

TEST(ResultDedupTest, DistinguishesValuesContainingSeparatorByte) {
  // Regression: result dedup used to key on ToString() joined with '\x1f',
  // so the pairs ("a\x1f", "b") and ("a", "\x1fb") collapsed into one. The
  // hashed structural dedup must keep all combinations distinct.
  auto pipeline = workload::MakeUniversityPipeline();
  ASSERT_TRUE(pipeline.ok());
  Database db(&pipeline->schema());
  const std::string sep = "\x1f";
  for (const std::string& name : {std::string("a") + sep, std::string("b"),
                                  std::string("a"), sep + "b"}) {
    auto oid = db.store().CreateObject("Person", {{"name", Value::String(name)}});
    ASSERT_TRUE(oid.ok()) << oid.status().ToString();
  }
  auto q = datalog::ParseQueryText(
      "q(N, M) :- person(oid: X, name: N), person(oid: Y, name: M).",
      &pipeline->schema().catalog);
  ASSERT_TRUE(q.ok());
  auto rows = db.Run(*q);
  ASSERT_TRUE(rows.ok());
  // 4 × 4 distinct (N, M) pairs — a collision-prone dedup reports 15.
  EXPECT_EQ(rows->size(), 16u);
}

}  // namespace
}  // namespace sqo::engine
