#include "engine/object_store.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "odl/parser.h"
#include "workload/university.h"

namespace sqo::engine {
namespace {

using sqo::Value;

class ObjectStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ast = odl::ParseOdl(workload::UniversityOdl());
    ASSERT_TRUE(ast.ok());
    auto schema = odl::Schema::Resolve(*ast);
    ASSERT_TRUE(schema.ok());
    auto translated = translate::TranslateSchema(*schema);
    ASSERT_TRUE(translated.ok());
    schema_ = std::make_unique<translate::TranslatedSchema>(
        std::move(translated).value());
    store_ = std::make_unique<ObjectStore>(schema_.get());
  }

  sqo::Oid MustCreate(const std::string& cls,
                      const std::map<std::string, Value>& attrs) {
    auto oid = store_->CreateObject(cls, attrs);
    EXPECT_TRUE(oid.ok()) << oid.status().ToString();
    return *oid;
  }

  std::unique_ptr<translate::TranslatedSchema> schema_;
  std::unique_ptr<ObjectStore> store_;
};

TEST_F(ObjectStoreTest, CreateObjectAndReadBack) {
  sqo::Oid oid = MustCreate(
      "Person", {{"name", Value::String("ann")}, {"age", Value::Int(25)}});
  ASSERT_TRUE(oid.valid());
  auto row = store_->RowAs("person", oid);
  ASSERT_TRUE(row.has_value());
  ASSERT_EQ(row->size(), 4u);
  EXPECT_EQ((*row)[0], Value::FromOid(oid));
  EXPECT_EQ((*row)[1], Value::String("ann"));
  EXPECT_EQ((*row)[2], Value::Int(25));
  EXPECT_TRUE((*row)[3].is_null());  // address not set
}

TEST_F(ObjectStoreTest, SubclassInstanceInAncestorExtents) {
  sqo::Oid prof = MustCreate("Faculty", {{"name", Value::String("kim")},
                                         {"age", Value::Int(40)},
                                         {"salary", Value::Double(50000)}});
  EXPECT_TRUE(store_->IsMember("faculty", prof));
  EXPECT_TRUE(store_->IsMember("employee", prof));
  EXPECT_TRUE(store_->IsMember("person", prof));
  EXPECT_FALSE(store_->IsMember("student", prof));
  EXPECT_EQ(store_->ExtentSize("person"), 1u);
  EXPECT_EQ(store_->ExtentSize("faculty"), 1u);
}

TEST_F(ObjectStoreTest, RowAsSuperclassIsPrefix) {
  sqo::Oid prof = MustCreate("Faculty", {{"name", Value::String("kim")},
                                         {"age", Value::Int(40)},
                                         {"salary", Value::Double(50000)},
                                         {"rank", Value::String("full")}});
  auto as_person = store_->RowAs("person", prof);
  auto as_faculty = store_->RowAs("faculty", prof);
  ASSERT_TRUE(as_person.has_value());
  ASSERT_TRUE(as_faculty.has_value());
  EXPECT_EQ(as_person->size(), 4u);
  EXPECT_EQ(as_faculty->size(), 6u);
  for (size_t i = 0; i < as_person->size(); ++i) {
    EXPECT_EQ((*as_person)[i], (*as_faculty)[i]);
  }
}

TEST_F(ObjectStoreTest, CreateStructAndLink) {
  auto addr = store_->CreateStruct(
      "Address", {{"street", Value::String("1 Main")},
                  {"city", Value::String("cp")}});
  ASSERT_TRUE(addr.ok());
  sqo::Oid person = MustCreate(
      "Person", {{"name", Value::String("b")}, {"address", Value::FromOid(*addr)}});
  auto row = store_->RowAs("person", person);
  EXPECT_EQ((*row)[3], Value::FromOid(*addr));
  EXPECT_TRUE(store_->IsMember("address", *addr));
}

TEST_F(ObjectStoreTest, AttributeNamesCaseInsensitive) {
  auto oid = store_->CreateObject("Person", {{"Name", Value::String("c")}});
  ASSERT_TRUE(oid.ok());
  auto row = store_->RowAs("person", *oid);
  EXPECT_EQ((*row)[1], Value::String("c"));
}

TEST_F(ObjectStoreTest, CreateRejectsUnknownClassOrAttribute) {
  EXPECT_FALSE(store_->CreateObject("Nothing", {}).ok());
  EXPECT_FALSE(store_->CreateObject("Person", {{"phone", Value::Int(1)}}).ok());
  EXPECT_FALSE(store_->CreateStruct("Person", {}).ok());   // class, not struct
  EXPECT_FALSE(store_->CreateObject("Address", {}).ok());  // struct, not class
}

TEST_F(ObjectStoreTest, RelateMaintainsInverse) {
  sqo::Oid student = MustCreate("Student", {{"name", Value::String("s")}});
  sqo::Oid section = MustCreate("Section", {{"number", Value::String("1")}});
  ASSERT_TRUE(store_->Relate("takes", student, section).ok());
  ASSERT_EQ(store_->Neighbors("takes", student).size(), 1u);
  EXPECT_EQ(store_->Neighbors("takes", student)[0], section);
  // Inverse is maintained automatically.
  ASSERT_EQ(store_->Neighbors("is_taken_by", section).size(), 1u);
  EXPECT_EQ(store_->Neighbors("is_taken_by", section)[0], student);
  EXPECT_EQ(store_->ReverseNeighbors("takes", section).size(), 1u);
}

TEST_F(ObjectStoreTest, RelateIdempotent) {
  sqo::Oid student = MustCreate("Student", {{"name", Value::String("s")}});
  sqo::Oid section = MustCreate("Section", {});
  ASSERT_TRUE(store_->Relate("takes", student, section).ok());
  ASSERT_TRUE(store_->Relate("takes", student, section).ok());
  EXPECT_EQ(store_->PairCount("takes"), 1u);
}

TEST_F(ObjectStoreTest, RelateChecksEndpointClasses) {
  sqo::Oid person = MustCreate("Person", {{"name", Value::String("p")}});
  sqo::Oid section = MustCreate("Section", {});
  // A plain person is not a Student.
  EXPECT_FALSE(store_->Relate("takes", person, section).ok());
  EXPECT_FALSE(store_->Relate("takes", section, person).ok());
  EXPECT_FALSE(store_->Relate("no_such_rel", person, section).ok());
}

TEST_F(ObjectStoreTest, CardinalityEnforcedForToOne) {
  sqo::Oid ta = MustCreate("TA", {{"name", Value::String("t")}});
  sqo::Oid s1 = MustCreate("Section", {});
  sqo::Oid s2 = MustCreate("Section", {});
  ASSERT_TRUE(store_->Relate("assists", ta, s1).ok());
  // assists is one-to-one: a second section for the same TA is rejected.
  EXPECT_FALSE(store_->Relate("assists", ta, s2).ok());
  // And a second TA for the same section is rejected.
  sqo::Oid ta2 = MustCreate("TA", {{"name", Value::String("t2")}});
  EXPECT_FALSE(store_->Relate("assists", ta2, s1).ok());
}

TEST_F(ObjectStoreTest, SubclassObjectsUsableThroughInheritedRelationships) {
  sqo::Oid ta = MustCreate("TA", {{"name", Value::String("t")}});
  sqo::Oid section = MustCreate("Section", {});
  // takes is declared on Student; a TA is a Student.
  EXPECT_TRUE(store_->Relate("takes", ta, section).ok());
}

TEST_F(ObjectStoreTest, IndexLookupAndMaintenance) {
  ASSERT_TRUE(store_->CreateIndex("person", "name").ok());
  sqo::Oid a = MustCreate("Person", {{"name", Value::String("ann")}});
  MustCreate("Person", {{"name", Value::String("bob")}});
  ASSERT_TRUE(store_->HasIndex("person", 1));
  const auto* hits = store_->IndexLookup("person", 1, Value::String("ann"));
  ASSERT_NE(hits, nullptr);
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], a);
  EXPECT_EQ(store_->IndexLookup("person", 1, Value::String("zed")), nullptr);
  EXPECT_EQ(store_->IndexDistinct("person", 1), 2u);
}

TEST_F(ObjectStoreTest, IndexOnSuperclassSeesSubclassInstances) {
  ASSERT_TRUE(store_->CreateIndex("person", "name").ok());
  sqo::Oid prof = MustCreate("Faculty", {{"name", Value::String("kim")}});
  const auto* hits = store_->IndexLookup("person", 1, Value::String("kim"));
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ((*hits)[0], prof);
}

TEST_F(ObjectStoreTest, IndexRejectsBadTargets) {
  EXPECT_FALSE(store_->CreateIndex("takes", "src").ok());
  EXPECT_FALSE(store_->CreateIndex("person", "oid").ok());
  EXPECT_FALSE(store_->CreateIndex("person", "phone").ok());
}

TEST_F(ObjectStoreTest, MethodRegistrationAndInvocation) {
  ASSERT_TRUE(store_
                  ->RegisterMethod(
                      "taxes_withheld",
                      [](const ObjectStore& s, sqo::Oid receiver,
                         const std::vector<Value>& args) -> sqo::Result<Value> {
                        auto pos = s.schema().catalog.Find("employee")
                                       ->AttributeIndex("salary");
                        SQO_ASSIGN_OR_RETURN(
                            Value salary, s.AttributeOf("employee", receiver, *pos));
                        return Value::Double(salary.AsNumeric() *
                                             args[0].AsNumeric());
                      })
                  .ok());
  sqo::Oid prof = MustCreate("Faculty", {{"name", Value::String("k")},
                                         {"salary", Value::Double(50000)}});
  auto result = store_->InvokeMethod("taxes_withheld", prof, {Value::Double(0.1)});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, Value::Double(5000));
  EXPECT_FALSE(store_->RegisterMethod("nope", nullptr).ok());
  EXPECT_FALSE(store_->InvokeMethod("unregistered", prof, {}).ok());
}

TEST_F(ObjectStoreTest, MaterializeAsrComputesPathJoin) {
  // Build a tiny student → section → course → section' → TA world.
  sqo::Oid student = MustCreate("Student", {{"name", Value::String("s")}});
  sqo::Oid course = MustCreate("Course", {});
  sqo::Oid sec1 = MustCreate("Section", {});
  sqo::Oid sec2 = MustCreate("Section", {});
  sqo::Oid ta = MustCreate("TA", {{"name", Value::String("t")}});
  ASSERT_TRUE(store_->Relate("has_sections", course, sec1).ok());
  ASSERT_TRUE(store_->Relate("has_sections", course, sec2).ok());
  ASSERT_TRUE(store_->Relate("takes", student, sec1).ok());
  ASSERT_TRUE(store_->Relate("assists", ta, sec2).ok());

  std::vector<core::AsrDefinition> registry;
  ASSERT_TRUE(
      core::RegisterAsr(workload::UniversityAsr(), schema_.get(), &registry).ok());
  ASSERT_TRUE(store_->Materialize(registry[0]).ok());
  // student takes sec1, sec1 in course, course has sec2, sec2 has ta.
  const auto& pairs = store_->Pairs("asr_student_ta");
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, student);
  EXPECT_EQ(pairs[0].second, ta);
  // Re-materialization refreshes rather than duplicates.
  ASSERT_TRUE(store_->Materialize(registry[0]).ok());
  EXPECT_EQ(store_->Pairs("asr_student_ta").size(), 1u);
}

TEST_F(ObjectStoreTest, FanoutStatistics) {
  sqo::Oid student = MustCreate("Student", {{"name", Value::String("s")}});
  sqo::Oid s1 = MustCreate("Section", {});
  sqo::Oid s2 = MustCreate("Section", {});
  ASSERT_TRUE(store_->Relate("takes", student, s1).ok());
  ASSERT_TRUE(store_->Relate("takes", student, s2).ok());
  EXPECT_DOUBLE_EQ(store_->AvgFanout("takes"), 2.0);
  EXPECT_DOUBLE_EQ(store_->AvgReverseFanout("takes"), 1.0);
  EXPECT_DOUBLE_EQ(store_->AvgFanout("nothing"), 0.0);
}

TEST_F(ObjectStoreTest, UnrelateRemovesBothDirections) {
  sqo::Oid student = MustCreate("Student", {{"name", Value::String("s")}});
  sqo::Oid section = MustCreate("Section", {});
  ASSERT_TRUE(store_->Relate("takes", student, section).ok());
  ASSERT_TRUE(store_->Unrelate("takes", student, section).ok());
  EXPECT_TRUE(store_->Neighbors("takes", student).empty());
  EXPECT_TRUE(store_->Neighbors("is_taken_by", section).empty());
  EXPECT_EQ(store_->PairCount("takes"), 0u);
  // Idempotent; unknown relationship rejected.
  EXPECT_TRUE(store_->Unrelate("takes", student, section).ok());
  EXPECT_FALSE(store_->Unrelate("nope", student, section).ok());
}

TEST_F(ObjectStoreTest, UnrelateFreesToOneSlot) {
  sqo::Oid ta = MustCreate("TA", {{"name", Value::String("t")}});
  sqo::Oid s1 = MustCreate("Section", {});
  sqo::Oid s2 = MustCreate("Section", {});
  ASSERT_TRUE(store_->Relate("assists", ta, s1).ok());
  EXPECT_FALSE(store_->Relate("assists", ta, s2).ok());
  ASSERT_TRUE(store_->Unrelate("assists", ta, s1).ok());
  EXPECT_TRUE(store_->Relate("assists", ta, s2).ok());
}

TEST_F(ObjectStoreTest, UpdateAttributeMaintainsIndexes) {
  ASSERT_TRUE(store_->CreateIndex("person", "name").ok());
  sqo::Oid p = MustCreate("Person", {{"name", Value::String("before")}});
  ASSERT_TRUE(store_->UpdateAttribute(p, "name", Value::String("after")).ok());
  EXPECT_EQ(store_->IndexLookup("person", 1, Value::String("before")), nullptr);
  const auto* hits = store_->IndexLookup("person", 1, Value::String("after"));
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ((*hits)[0], p);
  auto row = store_->RowAs("person", p);
  EXPECT_EQ((*row)[1], Value::String("after"));
}

TEST_F(ObjectStoreTest, UpdateAttributeMaintainsSubclassIndexes) {
  ASSERT_TRUE(store_->CreateIndex("faculty", "salary").ok());
  sqo::Oid prof = MustCreate("Faculty", {{"name", Value::String("k")},
                                         {"salary", Value::Double(50000)}});
  ASSERT_TRUE(
      store_->UpdateAttribute(prof, "salary", Value::Double(60000)).ok());
  EXPECT_EQ(store_->IndexLookup("faculty", 4, Value::Double(50000)), nullptr);
  ASSERT_NE(store_->IndexLookup("faculty", 4, Value::Double(60000)), nullptr);
}

TEST_F(ObjectStoreTest, UpdateAttributeErrors) {
  sqo::Oid p = MustCreate("Person", {{"name", Value::String("x")}});
  EXPECT_FALSE(store_->UpdateAttribute(sqo::Oid(9999), "name",
                                       Value::String("y")).ok());
  EXPECT_FALSE(store_->UpdateAttribute(p, "phone", Value::Int(1)).ok());
  EXPECT_FALSE(store_->UpdateAttribute(p, "oid", Value::Int(1)).ok());
}

TEST_F(ObjectStoreTest, DeleteObjectScrubsEverything) {
  ASSERT_TRUE(store_->CreateIndex("person", "name").ok());
  sqo::Oid student = MustCreate("Student", {{"name", Value::String("gone")}});
  sqo::Oid section = MustCreate("Section", {});
  ASSERT_TRUE(store_->Relate("takes", student, section).ok());
  ASSERT_TRUE(store_->DeleteObject(student).ok());
  EXPECT_FALSE(store_->IsMember("student", student));
  EXPECT_FALSE(store_->IsMember("person", student));
  EXPECT_EQ(store_->ExtentSize("student"), 0u);
  EXPECT_EQ(store_->IndexLookup("person", 1, Value::String("gone")), nullptr);
  EXPECT_TRUE(store_->Neighbors("is_taken_by", section).empty());
  EXPECT_EQ(store_->PairCount("takes"), 0u);
  EXPECT_FALSE(store_->RowAs("student", student).has_value());
  EXPECT_FALSE(store_->DeleteObject(student).ok());  // already gone
}

TEST_F(ObjectStoreTest, LazyIndexDeltaScopedToMutatedRelation) {
  // Two lazily built indexes over disjoint relations: mutations against
  // one must delta-apply to that index only, never rebuild or touch the
  // other (the old clear-on-write scheme invalidated everything).
  for (int i = 0; i < 20; ++i) {
    MustCreate("Person", {{"name", Value::String("p" + std::to_string(i))},
                          {"age", Value::Int(20 + i)}});
    MustCreate("Course", {{"cname", Value::String("c" + std::to_string(i))}});
  }
  bool built = false;
  ASSERT_NE(store_->LazyIndexLookup("person", 2, Value::Int(25), 16, &built),
            nullptr);
  ASSERT_TRUE(built);
  ASSERT_NE(store_->LazyIndexLookup("course", 1, Value::String("c3"), 16,
                                    &built),
            nullptr);
  ASSERT_TRUE(built);

  obs::MetricsRegistry metrics;
  obs::ScopedMetrics install(&metrics);
  // A course mutation delta-applies to the course index only.
  const sqo::Oid course = store_->Extent("course").front();
  ASSERT_TRUE(
      store_->UpdateAttribute(course, "cname", Value::String("renamed")).ok());
  EXPECT_EQ(metrics.CounterValue("index.delta_applies"), 1u);
  EXPECT_EQ(metrics.CounterValue("index.full_rebuilds"), 0u);

  // The person index is untouched: probing it is not a (re)build.
  const auto* hits =
      store_->LazyIndexLookup("person", 2, Value::Int(25), 16, &built);
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(metrics.CounterValue("index.lazy_builds"), 0u);
  EXPECT_EQ(metrics.CounterValue("index.full_rebuilds"), 0u);
  // The course index reflects the delta without a rebuild.
  const auto* renamed =
      store_->LazyIndexLookup("course", 1, Value::String("renamed"), 16,
                              &built);
  ASSERT_NE(renamed, nullptr);
  EXPECT_EQ((*renamed)[0], course);
  EXPECT_EQ(store_->LazyIndexLookup("course", 1, Value::String("c0"), 16,
                                    &built),
            nullptr);
  EXPECT_EQ(metrics.CounterValue("index.lazy_builds"), 0u);
}

TEST_F(ObjectStoreTest, RelationshipChurnKeepsAttributeIndexes) {
  for (int i = 0; i < 20; ++i) {
    MustCreate("Student", {{"name", Value::String("s" + std::to_string(i))},
                           {"age", Value::Int(20)}});
  }
  sqo::Oid section = MustCreate("Section", {});
  bool built = false;
  ASSERT_NE(store_->LazyIndexLookup("student", 2, Value::Int(20), 16, &built),
            nullptr);
  ASSERT_TRUE(built);

  obs::MetricsRegistry metrics;
  obs::ScopedMetrics install(&metrics);
  const sqo::Oid student = store_->Extent("student").front();
  ASSERT_TRUE(store_->Relate("takes", student, section).ok());
  ASSERT_TRUE(store_->Unrelate("takes", student, section).ok());
  // Pair churn is invisible to attribute indexes: no deltas, no rebuilds,
  // and the next probe reuses the built index.
  ASSERT_NE(store_->LazyIndexLookup("student", 2, Value::Int(20), 16, &built),
            nullptr);
  EXPECT_EQ(metrics.CounterValue("index.lazy_builds"), 0u);
  EXPECT_EQ(metrics.CounterValue("index.full_rebuilds"), 0u);
}

TEST_F(ObjectStoreTest, AsrMaintainedIncrementallyOnInsert) {
  sqo::Oid student = MustCreate("Student", {{"name", Value::String("s")}});
  sqo::Oid course = MustCreate("Course", {});
  sqo::Oid sec1 = MustCreate("Section", {});
  sqo::Oid sec2 = MustCreate("Section", {});
  sqo::Oid ta = MustCreate("TA", {{"name", Value::String("t")}});
  ASSERT_TRUE(store_->Relate("has_sections", course, sec1).ok());
  ASSERT_TRUE(store_->Relate("has_sections", course, sec2).ok());
  ASSERT_TRUE(store_->Relate("takes", student, sec1).ok());

  std::vector<core::AsrDefinition> registry;
  ASSERT_TRUE(
      core::RegisterAsr(workload::UniversityAsr(), schema_.get(), &registry).ok());
  ASSERT_TRUE(store_->Materialize(registry[0]).ok());
  EXPECT_TRUE(store_->Pairs("asr_student_ta").empty());  // no TA yet

  // Completing the path AFTER materialization delta-extends the ASR.
  obs::MetricsRegistry metrics;
  obs::ScopedMetrics install(&metrics);
  ASSERT_TRUE(store_->Relate("assists", ta, sec2).ok());
  const auto& pairs = store_->Pairs("asr_student_ta");
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, student);
  EXPECT_EQ(pairs[0].second, ta);
  EXPECT_GE(metrics.CounterValue("asr.delta_pairs"), 1u);

  // A second student joining the prefix extends it again.
  sqo::Oid student2 = MustCreate("Student", {{"name", Value::String("u")}});
  ASSERT_TRUE(store_->Relate("takes", student2, sec1).ok());
  EXPECT_EQ(store_->Pairs("asr_student_ta").size(), 2u);
  // Fresh throughout: inserts never mark the ASR stale.
  for (const auto& asr : store_->AsrStates()) EXPECT_FALSE(asr.stale);
}

TEST_F(ObjectStoreTest, AsrMarkedStaleOnErase) {
  sqo::Oid student = MustCreate("Student", {{"name", Value::String("s")}});
  sqo::Oid course = MustCreate("Course", {});
  sqo::Oid sec1 = MustCreate("Section", {});
  sqo::Oid sec2 = MustCreate("Section", {});
  sqo::Oid ta = MustCreate("TA", {{"name", Value::String("t")}});
  ASSERT_TRUE(store_->Relate("has_sections", course, sec1).ok());
  ASSERT_TRUE(store_->Relate("has_sections", course, sec2).ok());
  ASSERT_TRUE(store_->Relate("takes", student, sec1).ok());
  ASSERT_TRUE(store_->Relate("assists", ta, sec2).ok());

  std::vector<core::AsrDefinition> registry;
  ASSERT_TRUE(
      core::RegisterAsr(workload::UniversityAsr(), schema_.get(), &registry).ok());
  ASSERT_TRUE(store_->Materialize(registry[0]).ok());
  ASSERT_EQ(store_->Pairs("asr_student_ta").size(), 1u);
  for (const auto& asr : store_->AsrStates()) EXPECT_FALSE(asr.stale);

  obs::MetricsRegistry metrics;
  obs::ScopedMetrics install(&metrics);
  ASSERT_TRUE(store_->Unrelate("takes", student, sec1).ok());
  bool stale = false;
  for (const auto& asr : store_->AsrStates()) stale |= asr.stale;
  EXPECT_TRUE(stale);
  EXPECT_GE(metrics.CounterValue("asr.marked_stale"), 1u);

  // Re-materializing restores freshness.
  ASSERT_TRUE(store_->Materialize(registry[0]).ok());
  for (const auto& asr : store_->AsrStates()) EXPECT_FALSE(asr.stale);
}

TEST_F(ObjectStoreTest, StaleAsrLazilyRebuildsOnNextAccess) {
  // The erase "counting problem": instead of serving a stale extent (and
  // an SQO-A019 warning) until someone re-materializes by hand, the first
  // access after an erase rebuilds the extent in place.
  sqo::Oid student = MustCreate("Student", {{"name", Value::String("s")}});
  sqo::Oid course = MustCreate("Course", {});
  sqo::Oid sec1 = MustCreate("Section", {});
  sqo::Oid sec2 = MustCreate("Section", {});
  sqo::Oid ta = MustCreate("TA", {{"name", Value::String("t")}});
  ASSERT_TRUE(store_->Relate("has_sections", course, sec1).ok());
  ASSERT_TRUE(store_->Relate("has_sections", course, sec2).ok());
  ASSERT_TRUE(store_->Relate("takes", student, sec1).ok());
  ASSERT_TRUE(store_->Relate("assists", ta, sec2).ok());

  std::vector<core::AsrDefinition> registry;
  ASSERT_TRUE(
      core::RegisterAsr(workload::UniversityAsr(), schema_.get(), &registry).ok());
  ASSERT_TRUE(store_->Materialize(registry[0]).ok());
  ASSERT_EQ(store_->Pairs("asr_student_ta").size(), 1u);

  obs::MetricsRegistry metrics;
  obs::ScopedMetrics install(&metrics);
  ASSERT_TRUE(store_->Unrelate("takes", student, sec1).ok());

  // The access itself heals: the broken path's pair is gone, the ASR is
  // fresh again, and the rebuild was counted.
  EXPECT_TRUE(store_->Pairs("asr_student_ta").empty());
  for (const auto& asr : store_->AsrStates()) EXPECT_FALSE(asr.stale);
  EXPECT_GE(metrics.CounterValue("asr.lazy_rebuilds"), 1u);

  // Delta maintenance resumes on the rebuilt extent: re-completing the
  // path re-derives the pair without another rebuild.
  const uint64_t rebuilds = metrics.CounterValue("asr.lazy_rebuilds");
  ASSERT_TRUE(store_->Relate("takes", student, sec1).ok());
  EXPECT_EQ(store_->Pairs("asr_student_ta").size(), 1u);
  EXPECT_EQ(metrics.CounterValue("asr.lazy_rebuilds"), rebuilds);
}

TEST_F(ObjectStoreTest, NeighborAccessAlsoTriggersTheLazyRebuild) {
  sqo::Oid student = MustCreate("Student", {{"name", Value::String("s")}});
  sqo::Oid course = MustCreate("Course", {});
  sqo::Oid sec1 = MustCreate("Section", {});
  sqo::Oid sec2 = MustCreate("Section", {});
  sqo::Oid ta = MustCreate("TA", {{"name", Value::String("t")}});
  ASSERT_TRUE(store_->Relate("has_sections", course, sec1).ok());
  ASSERT_TRUE(store_->Relate("has_sections", course, sec2).ok());
  ASSERT_TRUE(store_->Relate("takes", student, sec1).ok());
  ASSERT_TRUE(store_->Relate("assists", ta, sec2).ok());

  std::vector<core::AsrDefinition> registry;
  ASSERT_TRUE(
      core::RegisterAsr(workload::UniversityAsr(), schema_.get(), &registry).ok());
  ASSERT_TRUE(store_->Materialize(registry[0]).ok());
  ASSERT_EQ(store_->Neighbors("asr_student_ta", student).size(), 1u);

  obs::MetricsRegistry metrics;
  obs::ScopedMetrics install(&metrics);
  ASSERT_TRUE(store_->Unrelate("assists", ta, sec2).ok());
  EXPECT_TRUE(store_->Neighbors("asr_student_ta", student).empty());
  EXPECT_TRUE(store_->ReverseNeighbors("asr_student_ta", ta).empty());
  for (const auto& asr : store_->AsrStates()) EXPECT_FALSE(asr.stale);
  EXPECT_GE(metrics.CounterValue("asr.lazy_rebuilds"), 1u);
}

TEST_F(ObjectStoreTest, RefreshStaleAsrsRebuildsEagerly) {
  // The epoch publisher's hook: refresh everything stale up front so a
  // replica handed to concurrent readers never rebuilds under their feet.
  sqo::Oid student = MustCreate("Student", {{"name", Value::String("s")}});
  sqo::Oid course = MustCreate("Course", {});
  sqo::Oid sec1 = MustCreate("Section", {});
  sqo::Oid sec2 = MustCreate("Section", {});
  sqo::Oid ta = MustCreate("TA", {{"name", Value::String("t")}});
  ASSERT_TRUE(store_->Relate("has_sections", course, sec1).ok());
  ASSERT_TRUE(store_->Relate("has_sections", course, sec2).ok());
  ASSERT_TRUE(store_->Relate("takes", student, sec1).ok());
  ASSERT_TRUE(store_->Relate("assists", ta, sec2).ok());

  std::vector<core::AsrDefinition> registry;
  ASSERT_TRUE(
      core::RegisterAsr(workload::UniversityAsr(), schema_.get(), &registry).ok());
  ASSERT_TRUE(store_->Materialize(registry[0]).ok());

  obs::MetricsRegistry metrics;
  obs::ScopedMetrics install(&metrics);
  ASSERT_TRUE(store_->Unrelate("takes", student, sec1).ok());
  store_->RefreshStaleAsrs();
  for (const auto& asr : store_->AsrStates()) EXPECT_FALSE(asr.stale);
  EXPECT_GE(metrics.CounterValue("asr.lazy_rebuilds"), 1u);
  EXPECT_TRUE(store_->Pairs("asr_student_ta").empty());

  // Idempotent and free when nothing is stale.
  const uint64_t rebuilds = metrics.CounterValue("asr.lazy_rebuilds");
  store_->RefreshStaleAsrs();
  EXPECT_EQ(metrics.CounterValue("asr.lazy_rebuilds"), rebuilds);
}

}  // namespace
}  // namespace sqo::engine
