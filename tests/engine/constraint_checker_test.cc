#include "engine/constraint_checker.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "workload/university.h"

namespace sqo::engine {
namespace {

using sqo::Value;

class ConstraintCheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pipeline = workload::MakeUniversityPipeline();
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    pipeline_ = std::make_unique<core::Pipeline>(std::move(pipeline).value());
    db_ = std::make_unique<Database>(&pipeline_->schema());
    workload::GeneratorConfig config;
    config.n_plain_persons = 10;
    config.n_students = 20;
    config.n_faculty = 4;
    config.n_courses = 3;
    ASSERT_TRUE(workload::PopulateUniversity(config, *pipeline_, db_.get()).ok());
  }

  std::vector<datalog::Clause> ParseIcs(const std::string& text) {
    auto parsed =
        datalog::ParseProgram(text, &pipeline_->schema().catalog);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    return *parsed;
  }

  std::unique_ptr<core::Pipeline> pipeline_;
  std::unique_ptr<Database> db_;
};

TEST_F(ConstraintCheckerTest, GeneratedDataSatisfiesAllCompiledIcs) {
  // The strongest consistency statement in the repository: every IC the
  // semantic compiler knows about — structural, user-declared and derived —
  // holds on the generated database. This is the precondition for SQO
  // soundness.
  auto report = CheckConstraints(*db_, pipeline_->compiled().all_ics,
                                 /*max_violations=*/4);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const Violation& v : report->violations) ADD_FAILURE() << v.ToString();
  // The only unverifiable constraints involve computed method receivers.
  for (const std::string& label : report->skipped) {
    EXPECT_NE(label.find("taxes_withheld"), std::string::npos) << label;
  }
}

TEST_F(ConstraintCheckerTest, DetectsEvaluableHeadViolation) {
  // Plant a 20-year-old professor: IC4 (faculty age >= 30) must fire.
  auto prof = db_->store().CreateObject(
      "Faculty", {{"name", Value::String("imposter")},
                  {"age", Value::Int(20)},
                  {"salary", Value::Double(90000)}});
  ASSERT_TRUE(prof.ok());
  auto violations = CheckConstraints(
      *db_, ParseIcs("IC4: Age >= 30 <- faculty(oid: X, age: Age)."));
  ASSERT_TRUE(violations.ok());
  ASSERT_EQ(violations->violations.size(), 1u);
  EXPECT_EQ(violations->violations[0].ic_label, "IC4");
  EXPECT_NE(violations->violations[0].description.find("20"), std::string::npos);
}

TEST_F(ConstraintCheckerTest, DetectsKeyViolation) {
  // Two faculty with the same name: the key IC (X1 = X2) fails.
  auto a = db_->store().CreateObject(
      "Faculty", {{"name", Value::String("dup")},
                  {"age", Value::Int(50)},
                  {"salary", Value::Double(90000)}});
  auto b = db_->store().CreateObject(
      "Faculty", {{"name", Value::String("dup")},
                  {"age", Value::Int(51)},
                  {"salary", Value::Double(91000)}});
  ASSERT_TRUE(a.ok() && b.ok());
  auto violations = CheckConstraints(
      *db_,
      ParseIcs("key: X1 = X2 <- faculty(oid: X1, name: N), "
               "faculty(oid: X2, name: N)."));
  ASSERT_TRUE(violations.ok());
  EXPECT_FALSE(violations->violations.empty());
}

TEST_F(ConstraintCheckerTest, DetectsMissingPositiveHeadTuple) {
  // IC9 pattern: every section of a taken course must have a TA. Create a
  // taken course with a TA-less section.
  auto& store = db_->store();
  auto course = store.CreateObject("Course", {{"cname", Value::String("x")}});
  auto sec1 = store.CreateObject("Section", {{"number", Value::String("x.1")}});
  auto sec2 = store.CreateObject("Section", {{"number", Value::String("x.2")}});
  auto student = store.CreateObject("Student", {{"name", Value::String("zz")}});
  ASSERT_TRUE(store.Relate("has_sections", *course, *sec1).ok());
  ASSERT_TRUE(store.Relate("has_sections", *course, *sec2).ok());
  ASSERT_TRUE(store.Relate("takes", *student, *sec1).ok());
  auto violations = CheckConstraints(
      *db_,
      ParseIcs("IC9: has_ta(V, W) <- takes(X, Y), is_section_of(Y, Z), "
               "has_sections(Z, V)."),
      /*max_violations=*/64);
  ASSERT_TRUE(violations.ok());
  // sec1 and sec2 both lack TAs (IC9 ranges over all sections of the
  // course that the student's taken section belongs to).
  EXPECT_GE(violations->violations.size(), 2u);
}

TEST_F(ConstraintCheckerTest, DetectsNegatedHeadViolation) {
  // Plant a 25-year-old faculty member, then check the contrapositive
  // IC6' directly: ¬faculty(X,...) ← person(X, ..., Age), Age < 30.
  auto prof = db_->store().CreateObject(
      "Faculty", {{"name", Value::String("young")},
                  {"age", Value::Int(25)},
                  {"salary", Value::Double(80000)}});
  ASSERT_TRUE(prof.ok());
  auto violations = CheckConstraints(
      *db_,
      ParseIcs("IC6p: not faculty(oid: X) <- person(oid: X, age: Age), "
               "Age < 30."),
      /*max_violations=*/64);
  ASSERT_TRUE(violations.ok());
  EXPECT_FALSE(violations->violations.empty());
}

TEST_F(ConstraintCheckerTest, DenialDetectsAnyBodyMatch) {
  auto violations = CheckConstraints(
      *db_, ParseIcs("nofaculty: <- faculty(oid: X)."), 4);
  ASSERT_TRUE(violations.ok());
  EXPECT_EQ(violations->violations.size(), 4u);  // capped
}

TEST_F(ConstraintCheckerTest, MaxViolationsCapsOutput) {
  auto violations = CheckConstraints(
      *db_, ParseIcs("cap: Age > 200 <- person(oid: X, age: Age)."), 3);
  ASSERT_TRUE(violations.ok());
  EXPECT_EQ(violations->violations.size(), 3u);
}

TEST_F(ConstraintCheckerTest, FactsImposeNoObligation) {
  auto violations = CheckConstraints(
      *db_, ParseIcs("monotone(taxes_withheld, salary, increasing)."));
  ASSERT_TRUE(violations.ok());
  EXPECT_TRUE(violations->violations.empty());
}

TEST_F(ConstraintCheckerTest, MethodBodyIcsAreCheckable) {
  // The derived IC3 holds on the generated data (faculty taxes at 10%
  // exceed 3000).
  auto violations = CheckConstraints(
      *db_,
      ParseIcs("IC3: Value > 3000 <- taxes_withheld(X, 10%, Value), "
               "faculty(oid: X)."));
  ASSERT_TRUE(violations.ok()) << violations.status().ToString();
  EXPECT_TRUE(violations->violations.empty());
}

}  // namespace
}  // namespace sqo::engine
