#include "engine/database.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "workload/university.h"

namespace sqo::engine {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pipeline = workload::MakeUniversityPipeline();
    ASSERT_TRUE(pipeline.ok());
    pipeline_ = std::make_unique<core::Pipeline>(std::move(pipeline).value());
    db_ = std::make_unique<Database>(&pipeline_->schema());
  }

  datalog::Query ParseQ(const std::string& text) {
    auto q = datalog::ParseQueryText(text, &pipeline_->schema().catalog);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  std::unique_ptr<core::Pipeline> pipeline_;
  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, CreateKeyIndexesCoversDeclaringClassAndSubclasses) {
  ASSERT_TRUE(db_->CreateKeyIndexes().ok());
  // Key `name` is declared on Person; position 1 in every subclass relation.
  for (const char* rel : {"person", "employee", "faculty", "student", "ta"}) {
    EXPECT_TRUE(db_->store().HasIndex(rel, 1)) << rel;
  }
  // Course has no keys.
  EXPECT_FALSE(db_->store().HasIndex("course", 1));
}

TEST_F(DatabaseTest, RunOnEmptyDatabase) {
  auto rows = db_->Run(ParseQ("q(X) :- person(oid: X)."));
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(DatabaseTest, MaxTuplesGuardTrips) {
  workload::GeneratorConfig config;
  config.n_students = 30;
  ASSERT_TRUE(workload::PopulateUniversity(config, *pipeline_, db_.get()).ok());
  EvalOptions options;
  options.max_tuples = 5;
  auto rows = db_->Run(ParseQ("q(X) :- person(oid: X)."), nullptr, options);
  EXPECT_FALSE(rows.ok());
  options.max_tuples = 0;  // unlimited
  EXPECT_TRUE(db_->Run(ParseQ("q(X) :- person(oid: X)."), nullptr, options).ok());
}

TEST_F(DatabaseTest, StatsAccumulateAcrossRuns) {
  workload::GeneratorConfig config;
  config.n_students = 10;
  ASSERT_TRUE(workload::PopulateUniversity(config, *pipeline_, db_.get()).ok());
  EvalStats stats;
  ASSERT_TRUE(db_->Run(ParseQ("q(X) :- faculty(oid: X)."), &stats).ok());
  const uint64_t first = stats.objects_fetched;
  ASSERT_TRUE(db_->Run(ParseQ("q(X) :- faculty(oid: X)."), &stats).ok());
  EXPECT_EQ(stats.objects_fetched, 2 * first);
  EvalStats other;
  other += stats;
  EXPECT_EQ(other.objects_fetched, stats.objects_fetched);
  EXPECT_NE(stats.ToString().find("fetched="), std::string::npos);
}

}  // namespace
}  // namespace sqo::engine
