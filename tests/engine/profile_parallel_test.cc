#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/context.h"
#include "engine/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/university.h"

namespace sqo::engine {
namespace {

void ExpectStatsEqual(const obs::EvalStats& a, const obs::EvalStats& b,
                      size_t index) {
  EXPECT_EQ(a.objects_fetched, b.objects_fetched) << "alternative " << index;
  EXPECT_EQ(a.extent_scans, b.extent_scans) << "alternative " << index;
  EXPECT_EQ(a.index_probes, b.index_probes) << "alternative " << index;
  EXPECT_EQ(a.relationship_traversals, b.relationship_traversals)
      << "alternative " << index;
  EXPECT_EQ(a.method_invocations, b.method_invocations)
      << "alternative " << index;
  EXPECT_EQ(a.comparisons, b.comparisons) << "alternative " << index;
  EXPECT_EQ(a.negation_checks, b.negation_checks) << "alternative " << index;
  EXPECT_EQ(a.tuples_emitted, b.tuples_emitted) << "alternative " << index;
  EXPECT_EQ(a.results, b.results) << "alternative " << index;
}

/// Total work of one alternative — the deterministic "best" criterion the
/// differential test compares across profiling modes.
uint64_t Work(const obs::EvalStats& s) {
  return s.objects_fetched + s.relationship_traversals + s.comparisons +
         s.negation_checks + s.method_invocations;
}

class ProfileParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pipeline = workload::MakeUniversityPipeline();
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    pipeline_ = std::make_unique<core::Pipeline>(std::move(pipeline).value());
    db_ = std::make_unique<Database>(&pipeline_->schema());

    workload::GeneratorConfig config;
    config.n_plain_persons = 20;
    config.n_students = 50;
    config.n_faculty = 6;
    config.n_courses = 4;
    config.sections_per_course = 3;
    ASSERT_TRUE(workload::PopulateUniversity(config, *pipeline_, db_.get()).ok());
  }

  core::PipelineResult Optimize(const std::string& oql) {
    auto result = pipeline_->OptimizeText(oql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->contradiction);
    return *result;
  }

  std::unique_ptr<core::Pipeline> pipeline_;
  std::unique_ptr<Database> db_;
};

TEST_F(ProfileParallelTest, ParallelMatchesSerialPerAlternative) {
  for (const std::string& oql : {workload::QueryScopeReduction(),
                                 workload::QueryAsrIndirect()}) {
    core::PipelineResult serial = Optimize(oql);
    core::PipelineResult parallel = serial;

    EvalOptions serial_options;
    serial_options.profile_threads = 1;
    EvalOptions parallel_options;
    parallel_options.profile_threads = 4;

    ASSERT_TRUE(db_->ProfileAlternatives(&serial, serial_options).ok());
    ASSERT_TRUE(db_->ProfileAlternatives(&parallel, parallel_options).ok());

    ASSERT_EQ(serial.alternatives.size(), parallel.alternatives.size());
    size_t best_serial = 0, best_parallel = 0;
    for (size_t i = 0; i < serial.alternatives.size(); ++i) {
      EXPECT_TRUE(serial.alternatives[i].evaluated);
      EXPECT_TRUE(parallel.alternatives[i].evaluated);
      ExpectStatsEqual(serial.alternatives[i].eval_stats,
                       parallel.alternatives[i].eval_stats, i);
      if (Work(serial.alternatives[i].eval_stats) <
          Work(serial.alternatives[best_serial].eval_stats)) {
        best_serial = i;
      }
      if (Work(parallel.alternatives[i].eval_stats) <
          Work(parallel.alternatives[best_parallel].eval_stats)) {
        best_parallel = i;
      }
    }
    EXPECT_EQ(best_serial, best_parallel);
  }
}

TEST_F(ProfileParallelTest, ParallelTasksCounterAndMergedMetrics) {
  core::PipelineResult result = Optimize(workload::QueryScopeReduction());
  ASSERT_GT(result.alternatives.size(), 1u);

  obs::MetricsRegistry metrics;
  obs::ScopedMetrics install(&metrics);
  EvalOptions options;
  options.profile_threads = 4;
  ASSERT_TRUE(db_->ProfileAlternatives(&result, options).ok());

  EXPECT_EQ(metrics.CounterValue("profile.parallel_tasks"),
            result.alternatives.size());
  // Worker-side registries merged back: evaluator counters are visible.
  EXPECT_GT(metrics.CounterValue("eval.objects_fetched"), 0u);
  EXPECT_GT(metrics.CounterValue("eval.results"), 0u);
}

TEST_F(ProfileParallelTest, InstalledTracerForcesSerialProfiling) {
  core::PipelineResult result = Optimize(workload::QueryScopeReduction());

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::ScopedTracer install_tracer(&tracer);
  obs::ScopedMetrics install_metrics(&metrics);
  EvalOptions options;
  options.profile_threads = 4;
  ASSERT_TRUE(db_->ProfileAlternatives(&result, options).ok());

  EXPECT_EQ(metrics.CounterValue("profile.parallel_tasks"), 0u);
  bool saw_eval_span = false;
  for (const obs::SpanRecord& span : tracer.spans()) {
    if (span.name == "eval.evaluate") saw_eval_span = true;
  }
  EXPECT_TRUE(saw_eval_span);
}

TEST_F(ProfileParallelTest, ExpiredDeadlineReachesEveryTask) {
  core::PipelineResult result = Optimize(workload::QueryScopeReduction());

  ExecutionContext context;
  context.ExpireDeadlineNow();
  ScopedContext install(&context);
  EvalOptions options;
  options.profile_threads = 4;
  sqo::Status status = db_->ProfileAlternatives(&result, options);
  EXPECT_FALSE(status.ok());
  for (const core::Alternative& alt : result.alternatives) {
    EXPECT_FALSE(alt.evaluated);
  }
}

}  // namespace
}  // namespace sqo::engine
