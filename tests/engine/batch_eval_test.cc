// Differential suite for the set-at-a-time batch evaluator: for the same
// plan, the batch engine must produce exactly the tuple-at-a-time
// fallback's result set, row for row and in the same order — across
// extents, comparisons, joins, negation, method atoms, guards, ASRs and
// the distinct / max_tuples edge cases, on several generator seeds. Plus
// a concurrent-read test over the persistent lazy-index structures (the
// TSan target: `ctest -L perf` is the tsan preset's suite).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datalog/parser.h"
#include "engine/database.h"
#include "engine/evaluator.h"
#include "obs/metrics.h"
#include "workload/university.h"

namespace sqo::engine {
namespace {

using Rows = std::vector<std::vector<sqo::Value>>;

struct World {
  std::unique_ptr<core::Pipeline> pipeline;
  std::unique_ptr<Database> db;
};

World MakeWorld(uint64_t seed) {
  World world;
  auto pipeline = workload::MakeUniversityPipeline();
  EXPECT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  world.pipeline = std::make_unique<core::Pipeline>(std::move(pipeline).value());
  world.db = std::make_unique<Database>(&world.pipeline->schema());
  workload::GeneratorConfig config;
  config.seed = seed;
  config.n_plain_persons = 10;
  config.n_students = 30;
  config.n_faculty = 5;
  config.n_courses = 4;
  config.sections_per_course = 2;
  config.takes_per_student = 3;
  sqo::Status populated =
      workload::PopulateUniversity(config, *world.pipeline, world.db.get());
  EXPECT_TRUE(populated.ok()) << populated.ToString();
  return world;
}

datalog::Query Parse(const World& world, const std::string& text) {
  auto q = datalog::ParseQueryText(text, &world.pipeline->schema().catalog);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
  return *q;
}

/// Runs `text` through both engines under `base` options and asserts
/// identical rows in identical order (or the same error).
void ExpectSameRows(const World& world, const std::string& text,
                    EvalOptions base = {}) {
  const datalog::Query query = Parse(world, text);
  EvalOptions batch = base;
  batch.batch = true;
  EvalOptions tuple = base;
  tuple.batch = false;
  auto batch_rows = world.db->Run(query, nullptr, batch);
  auto tuple_rows = world.db->Run(query, nullptr, tuple);
  ASSERT_EQ(batch_rows.ok(), tuple_rows.ok())
      << text << ": batch="
      << (batch_rows.ok() ? "ok" : batch_rows.status().ToString())
      << " tuple="
      << (tuple_rows.ok() ? "ok" : tuple_rows.status().ToString());
  if (!batch_rows.ok()) {
    EXPECT_EQ(batch_rows.status().code(), tuple_rows.status().code()) << text;
    return;
  }
  EXPECT_EQ(*batch_rows, *tuple_rows) << text;
}

// The workload coverage set: every operator the evaluator implements.
const char* kQueries[] = {
    // Extent scans and projection.
    "q(X) :- student(oid: X).",
    "q(N, A) :- person(oid: X, name: N, age: A).",
    // Comparisons (index-free filter, bound-vs-bound, constant fold).
    "q(N, A) :- person(oid: X, name: N, age: A), A >= 31.",
    "q(X) :- person(oid: X, age: A), A < 25, A > 17.",
    // Key-index probe.
    "q(X) :- student(oid: X, name: N), N = \"john\".",
    // Attribute equi-join via shared variable (the hash-join path).
    "q(X, Y) :- student(oid: X, age: A), ta(oid: Y, age: A).",
    "q(X, Y) :- person(oid: X, age: A), faculty(oid: Y, age: A).",
    // Relationship traversal, forward and reverse, and pair scans.
    "q(N, Num) :- student(oid: X, name: N), takes(X, Y), "
    "section(oid: Y, number: Num), N = \"john\".",
    "q(S) :- section(oid: Y, number: \"0.0\"), is_taken_by(Y, S).",
    "q(X, Y) :- takes(X, Y).",
    // Multi-hop path join (§5.4) and its ASR fold.
    "q(X, W) :- student(oid: X), takes(X, Y), is_section_of(Y, Z), "
    "has_sections(Z, V), has_ta(V, W).",
    "q(X, W) :- student(oid: X), asr_student_ta(X, W).",
    // Negation (anti-join), with and without extra free variables.
    "q(X) :- student(oid: X), not takes(X, Y).",
    "q(X) :- person(oid: X), not faculty(oid: X).",
    "q(X) :- student(oid: X, age: A), not ta(oid: Y, age: A).",
    // Method atoms (bound and compared results).
    "q(V) :- faculty(oid: X), taxes_withheld(X, 10%, V).",
    "q(V) :- faculty(oid: X), taxes_withheld(X, 10%, V), V < 1000.",
    // Mixed: join + negation + comparison.
    "q(N) :- student(oid: X, name: N, age: A), A > 18, not takes(X, Y).",
};

TEST(BatchEvalDifferential, IdenticalResultsAcrossSeeds) {
  for (uint64_t seed : {42u, 7u, 1234u}) {
    World world = MakeWorld(seed);
    for (const char* text : kQueries) {
      ExpectSameRows(world, text);
    }
  }
}

TEST(BatchEvalDifferential, DistinctOff) {
  World world = MakeWorld(42);
  EvalOptions options;
  options.distinct = false;
  for (const char* text : kQueries) {
    ExpectSameRows(world, text, options);
  }
}

TEST(BatchEvalDifferential, AutoIndexOff) {
  // Forces the batch engine's transient hash joins against the tuple
  // engine's guarded extent scans — the two strategies must agree.
  World world = MakeWorld(42);
  EvalOptions options;
  options.auto_index = false;
  for (const char* text : kQueries) {
    ExpectSameRows(world, text, options);
  }
}

TEST(BatchEvalDifferential, MaxTuplesEdgeCases) {
  World world = MakeWorld(42);
  const char* text = "q(X, Y) :- student(oid: X), takes(X, Y).";
  const datalog::Query query = Parse(world, text);
  EvalOptions tuple;
  tuple.batch = false;
  auto full = world.db->Run(query, nullptr, tuple);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->size(), 2u);
  for (uint64_t limit : {uint64_t{1}, uint64_t{2}, full->size() - 1}) {
    EvalOptions options;
    options.max_tuples = limit;
    options.batch = true;
    auto batch_rows = world.db->Run(query, nullptr, options);
    options.batch = false;
    auto tuple_rows = world.db->Run(query, nullptr, options);
    // Both engines must overflow identically...
    ASSERT_EQ(batch_rows.ok(), tuple_rows.ok()) << "limit=" << limit;
    if (!batch_rows.ok()) {
      EXPECT_EQ(batch_rows.status().code(), sqo::StatusCode::kResourceExhausted);
      EXPECT_EQ(tuple_rows.status().code(), sqo::StatusCode::kResourceExhausted);
    }
  }
  // ...and a limit equal to the result size succeeds in both.
  EvalOptions exact;
  exact.max_tuples = full->size();
  exact.batch = true;
  auto batch_rows = world.db->Run(query, nullptr, exact);
  ASSERT_TRUE(batch_rows.ok()) << batch_rows.status().ToString();
  EXPECT_EQ(*batch_rows, *full);
}

TEST(BatchEvalDifferential, UnsafeQueriesFailAlike) {
  World world = MakeWorld(42);
  // Comparison over a variable no positive atom binds.
  ExpectSameRows(world, "q(X) :- student(oid: X), Z > 5.");
}

TEST(BatchEvalDifferential, StatsAgreeOnIndexedSelection) {
  // Counter-level parity on the single-binding paths: a key probe looks
  // identical from either engine.
  World world = MakeWorld(42);
  const datalog::Query query =
      Parse(world, "q(X) :- student(oid: X, name: N), N = \"john\".");
  EvalStats batch_stats;
  EvalStats tuple_stats;
  EvalOptions options;
  options.batch = true;
  ASSERT_TRUE(world.db->Run(query, &batch_stats, options).ok());
  options.batch = false;
  ASSERT_TRUE(world.db->Run(query, &tuple_stats, options).ok());
  EXPECT_EQ(batch_stats.index_probes, tuple_stats.index_probes);
  EXPECT_EQ(batch_stats.extent_scans, tuple_stats.extent_scans);
  EXPECT_EQ(batch_stats.objects_fetched, tuple_stats.objects_fetched);
  EXPECT_EQ(batch_stats.results, tuple_stats.results);
}

TEST(BatchEvalConcurrency, ParallelReadsOverLazyIndexes) {
  // Concurrent batch evaluations sharing one store: every thread probes
  // (and the first ones race to build) the persistent secondary index on
  // student.age. Run under TSan via the perf-label preset.
  World world = MakeWorld(42);
  const datalog::Query query =
      Parse(world, "q(X) :- student(oid: X, age: A), A = 21.");
  const datalog::Query join = Parse(
      world, "q(X, Y) :- student(oid: X, age: A), ta(oid: Y, age: A).");
  Rows expected;
  {
    auto rows = world.db->Run(query);
    ASSERT_TRUE(rows.ok());
    expected = *rows;
  }
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        EvalOptions options;
        options.batch = (t % 2 == 0);
        auto rows = world.db->Run(query, nullptr, options);
        if (!rows.ok() || *rows != expected) ++failures[t];
        auto joined = world.db->Run(join, nullptr, options);
        if (!joined.ok()) ++failures[t];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace sqo::engine
