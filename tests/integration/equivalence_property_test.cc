// Property suite: for a corpus of OQL queries, every rewriting the
// optimizer produces must return exactly the same answer set as the
// original — the defining property of *semantic* query optimization. Runs
// as a parameterized sweep over queries × generator seeds.

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/database.h"
#include "workload/university.h"

namespace sqo {
namespace {

struct Case {
  const char* label;
  const char* oql;
};

std::ostream& operator<<(std::ostream& os, const Case& c) {
  return os << c.label;
}

constexpr Case kQueries[] = {
    {"scope", "select x.name from x in Person where x.age < 30"},
    {"scope_high", "select x.name from x in Person where x.age >= 40"},
    {"faculty_salary", "select x.name from x in Faculty where x.salary > 50K"},
    {"implied_restriction",
     "select x.name from x in Faculty where x.salary > 20K"},
    {"join2", "select y.number from x in Student, y in x.takes "
              "where x.name = \"john\""},
    {"join3",
     "select z.name from x in Student, y in x.takes, z in y.is_taught_by"},
    {"key_join",
     "select list(s.student_id, t.employee_id) from s in Student, "
     "y in s.takes, z in y.is_taught_by, t in TA, v in t.takes, "
     "w in v.is_taught_by where z.name = w.name"},
    {"asr_path",
     "select w from x in Student, y in x.takes, z in y.is_section_of, "
     "v in z.has_sections, w in v.has_ta where x.name = \"james\""},
    {"asr_prefix",
     "select v from x in Student, y in x.takes, z in y.is_section_of, "
     "v in z.has_sections where x.name = \"johnson\""},
    {"struct_path",
     "select w.city from x in Person, w in x.address"},
    {"not_in",
     "select x.name from x in Person, x not in Student where x.age < 50"},
    {"method",
     "select x.name from x in Faculty where x.taxes_withheld(10%) > 5000"},
    {"ta_double_role",
     "select t.employee_id from t in TA, y in t.takes"},
    {"exists_simple",
     "select x.name from x in Student "
     "where exists y in x.takes : y.number != \"zz\""},
    {"exists_faculty",
     "select x.name from x in Person "
     "where x.age < 30 and exists s in Student : s.name = x.name"},
};

class EquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<Case, int>> {};

TEST_P(EquivalenceSweep, AllRewritingsPreserveAnswers) {
  const auto& [c, seed] = GetParam();

  auto pipeline = workload::MakeUniversityPipeline();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  engine::Database db(&pipeline->schema());
  workload::GeneratorConfig config;
  config.seed = static_cast<uint64_t>(seed);
  config.n_plain_persons = 30;
  config.n_students = 60;
  config.n_faculty = 8;
  config.n_courses = 5;
  config.sections_per_course = 3;
  ASSERT_TRUE(workload::PopulateUniversity(config, *pipeline, &db).ok());

  auto result = pipeline->OptimizeText(c.oql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto canonical = [](std::vector<std::vector<Value>> rows) {
    std::vector<std::string> rendered;
    rendered.reserve(rows.size());
    for (const auto& row : rows) {
      std::string s;
      for (const Value& v : row) s += v.ToString() + "|";
      rendered.push_back(std::move(s));
    }
    std::sort(rendered.begin(), rendered.end());
    return rendered;
  };

  auto rows_orig = db.Run(result->original_datalog);
  ASSERT_TRUE(rows_orig.ok()) << rows_orig.status().ToString();
  auto expected = canonical(*rows_orig);

  if (result->contradiction) {
    // A detected contradiction must mean the query is genuinely empty.
    EXPECT_TRUE(expected.empty())
        << c.label << ": contradiction claimed but query has answers";
    return;
  }

  for (const core::Alternative& alt : result->alternatives) {
    auto rows_alt = db.Run(alt.datalog);
    ASSERT_TRUE(rows_alt.ok())
        << c.label << ": " << rows_alt.status().ToString() << "\n"
        << alt.datalog.ToString();
    EXPECT_EQ(canonical(*rows_alt), expected)
        << c.label << " seed " << seed << "\nrewriting: "
        << alt.datalog.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, EquivalenceSweep,
    ::testing::Combine(::testing::ValuesIn(kQueries), ::testing::Values(1, 7)),
    [](const ::testing::TestParamInfo<std::tuple<Case, int>>& info) {
      return std::string(std::get<0>(info.param).label) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace sqo
