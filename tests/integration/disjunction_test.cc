// Disjunctive queries (`or` in the where clause): parsing into a union of
// conjunctive queries, per-disjunct optimization, and the disjunct
// elimination that contradictions enable.

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/database.h"
#include "oql/parser.h"
#include "workload/university.h"

namespace sqo {
namespace {

TEST(DisjunctiveParsing, SplitsOnOr) {
  auto queries = oql::ParseOqlDisjunctive(
      "select x.name from x in Person "
      "where x.age < 20 and x.name != \"q\" or x.age > 60");
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  ASSERT_EQ(queries->size(), 2u);
  EXPECT_EQ((*queries)[0].where.size(), 2u);
  EXPECT_EQ((*queries)[1].where.size(), 1u);
  // Shared select and from.
  EXPECT_EQ((*queries)[0].select_list, (*queries)[1].select_list);
  EXPECT_EQ((*queries)[0].from, (*queries)[1].from);
}

TEST(DisjunctiveParsing, NoOrYieldsOneQuery) {
  auto queries = oql::ParseOqlDisjunctive(
      "select x from x in Person where x.age < 20");
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries->size(), 1u);
}

TEST(DisjunctiveParsing, SingleQueryEntryRejectsOr) {
  auto q = oql::ParseOql(
      "select x from x in Person where x.age < 20 or x.age > 60");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kUnsupported);
}

class DisjunctionPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pipeline = workload::MakeUniversityPipeline();
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    pipeline_ = std::make_unique<core::Pipeline>(std::move(pipeline).value());
    db_ = std::make_unique<engine::Database>(&pipeline_->schema());
    workload::GeneratorConfig config;
    config.n_students = 40;
    ASSERT_TRUE(
        workload::PopulateUniversity(config, *pipeline_, db_.get()).ok());
  }

  std::vector<std::string> Union(const core::DisjunctiveResult& result) {
    std::vector<std::string> out;
    for (size_t i : result.live) {
      const auto& best = result.disjuncts[i]
                             .alternatives[result.disjuncts[i].best_index];
      auto rows = db_->Run(best.datalog);
      EXPECT_TRUE(rows.ok()) << rows.status().ToString();
      for (const auto& row : *rows) {
        std::string s;
        for (const Value& v : row) s += v.ToString() + "|";
        out.push_back(std::move(s));
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  std::unique_ptr<core::Pipeline> pipeline_;
  std::unique_ptr<engine::Database> db_;
};

TEST_F(DisjunctionPipelineTest, BothDisjunctsLive) {
  auto result = pipeline_->OptimizeDisjunctiveText(
      "select x.name from x in Person where x.age < 25 or x.age > 60");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->disjuncts.size(), 2u);
  EXPECT_EQ(result->live.size(), 2u);
}

TEST_F(DisjunctionPipelineTest, ContradictoryDisjunctEliminated) {
  // Faculty taxes at 10% cannot be below 1000 (derived IC3): that disjunct
  // is eliminated, leaving only the salary disjunct.
  auto result = pipeline_->OptimizeDisjunctiveText(
      "select x.name from x in Faculty "
      "where x.taxes_withheld(10%) < 1000 or x.salary > 100K");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->disjuncts.size(), 2u);
  ASSERT_EQ(result->live.size(), 1u);
  EXPECT_EQ(result->live[0], 1u);
  EXPECT_TRUE(result->disjuncts[0].contradiction);
}

TEST_F(DisjunctionPipelineTest, AllDisjunctsEliminated) {
  auto result = pipeline_->OptimizeDisjunctiveText(
      "select x.name from x in Faculty "
      "where x.taxes_withheld(10%) < 1000 or x.age < 20");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->all_eliminated());
}

TEST_F(DisjunctionPipelineTest, UnionMatchesDisjunctwiseEvaluation) {
  // Reference: evaluate the two conjunctive queries directly and union.
  auto result = pipeline_->OptimizeDisjunctiveText(
      "select x.name from x in Person where x.age < 25 or x.age > 60");
  ASSERT_TRUE(result.ok());
  auto optimized_union = Union(*result);

  std::vector<std::string> reference;
  for (const char* q :
       {"select x.name from x in Person where x.age < 25",
        "select x.name from x in Person where x.age > 60"}) {
    auto one = pipeline_->OptimizeText(q);
    ASSERT_TRUE(one.ok());
    auto rows = db_->Run(one->original_datalog);
    ASSERT_TRUE(rows.ok());
    for (const auto& row : *rows) {
      std::string s;
      for (const Value& v : row) s += v.ToString() + "|";
      reference.push_back(std::move(s));
    }
  }
  std::sort(reference.begin(), reference.end());
  reference.erase(std::unique(reference.begin(), reference.end()),
                  reference.end());
  EXPECT_EQ(optimized_union, reference);
}

TEST_F(DisjunctionPipelineTest, EliminationPreservesAnswers) {
  // The eliminated disjunct really contributes nothing: the union over live
  // disjuncts equals the union with the contradictory one brute-forced.
  auto result = pipeline_->OptimizeDisjunctiveText(
      "select x.name from x in Faculty "
      "where x.taxes_withheld(10%) < 1000 or x.salary > 100K");
  ASSERT_TRUE(result.ok());
  auto live_union = Union(*result);

  auto dead = db_->Run(result->disjuncts[0].original_datalog);
  ASSERT_TRUE(dead.ok());
  EXPECT_TRUE(dead->empty());
}

}  // namespace
}  // namespace sqo
