#include "workload/fuzz.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace sqo::workload {
namespace {

// Iteration count and seed are env-tunable so CI tiers and soak runs can
// scale the same binary (mirrors crash_loop_test): SQO_VERIFY_FUZZ_ITERS,
// SQO_VERIFY_FUZZ_SEED.
uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

// The differential oracle: every alternative of every random query must
// return the original's answers on an IC-satisfying store. A mismatch
// means the optimizer or the verifier is wrong — hard failure either way.
TEST(VerifyFuzzTest, DifferentialOracleFindsNoMismatch) {
  FuzzConfig config;
  config.iterations = EnvOr("SQO_VERIFY_FUZZ_ITERS", 2);
  config.seed = EnvOr("SQO_VERIFY_FUZZ_SEED", 13);
  auto report = RunDifferentialFuzz(config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->mismatches, 0u) << report->Summary();
  EXPECT_GT(report->alternatives, 0u) << report->Summary();
  // On the default seeds the bounded chase proves every optimizer
  // rewriting, including restrictions from the fuzz-added ICs whose
  // constants never reach the solver's node table (the missing-constant
  // bridging fix). Env-overridden soak runs may legitimately surface
  // incompleteness, which is a counter, not a failure.
  if (std::getenv("SQO_VERIFY_FUZZ_ITERS") == nullptr &&
      std::getenv("SQO_VERIFY_FUZZ_SEED") == nullptr) {
    EXPECT_EQ(report->verifier_rejects, 0u) << report->Summary();
  }
}

// An inflated residue guard (IC1's Salary > 40K doubled) must be caught
// independently by BOTH oracles: the static verifier (SQO-A015 against the
// clean catalog) and answer divergence on the populated store.
TEST(VerifyFuzzTest, MutatedGuardCaughtByBothOracles) {
  auto probe = ProbeCorruptedResidue(1, ResidueCorruption::kMutateGuard);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_GT(probe->alternatives, 0u) << probe->description;
  EXPECT_TRUE(probe->verifier_flagged) << probe->description;
  EXPECT_TRUE(probe->answers_differ) << probe->description;
}

// Dropping a contrapositive's remainder literal makes scope reduction fire
// without its precondition — again both oracles must flag it.
TEST(VerifyFuzzTest, DroppedRemainderCaughtByBothOracles) {
  auto probe =
      ProbeCorruptedResidue(1, ResidueCorruption::kDropRemainderLiteral);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_GT(probe->alternatives, 0u) << probe->description;
  EXPECT_TRUE(probe->verifier_flagged) << probe->description;
  EXPECT_TRUE(probe->answers_differ) << probe->description;
}

}  // namespace
}  // namespace sqo::workload
