// Soundness property for the residue engine: every consequence the
// optimizer derives for a query must actually hold on every answer of that
// query, for every database the generator can produce. This is the
// semantic core of the residue method — "a residue is intuitively a
// formula that is true for any query containing a relation name to which
// the residue is attached" (§2) — checked by evaluation rather than proof.

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "engine/database.h"
#include "sqo/optimizer.h"
#include "workload/university.h"

namespace sqo {
namespace {

using datalog::Literal;
using datalog::Query;
using datalog::Term;

struct Case {
  const char* label;
  const char* datalog;  // query in the IC dialect
  // Whether the query is expected to yield evaluable (comparison)
  // consequences; queries anchored only on structural ICs yield predicate
  // consequences, which the equivalence suite covers instead.
  bool expect_evaluable = true;
};

std::ostream& operator<<(std::ostream& os, const Case& c) {
  return os << c.label;
}

constexpr Case kQueries[] = {
    {"faculty_invariants",
     "q(X, S, A) :- faculty(oid: X, salary: S, age: A).", true},
    {"method_bound",
     "q(Z, V) :- faculty(oid: Z), taxes_withheld(Z, 10%, V).", true},
    {"key_equality",
     "q(X1, X2) :- faculty(oid: X1, name: N1), faculty(oid: X2, name: N2), "
     "N1 = N2.",
     true},
    {"faculty_path",
     "q(X, Y, S) :- faculty(oid: X, salary: S), teaches(X, Y), S > 41K.",
     true},
    {"asr_with_path",
     "q(X, W, Y) :- asr_student_ta(X, W), takes(X, Y).", false},
    {"one_to_one",
     "q(V, W1, W2) :- has_ta(V, W1), has_ta(V, W2).", true},
    {"upcast",
     "q(X, A, S) :- faculty(oid: X, age: A, salary: S), "
     "person(oid: X, age: A).",
     true},
};

class ConsequenceSoundness
    : public ::testing::TestWithParam<std::tuple<Case, int>> {};

TEST_P(ConsequenceSoundness, EveryConsequenceHoldsOnEveryAnswer) {
  const auto& [c, seed] = GetParam();

  auto pipeline = workload::MakeUniversityPipeline();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  engine::Database db(&pipeline->schema());
  workload::GeneratorConfig config;
  config.seed = static_cast<uint64_t>(seed);
  config.n_students = 40;
  config.n_faculty = 6;
  config.n_courses = 4;
  ASSERT_TRUE(workload::PopulateUniversity(config, *pipeline, &db).ok());

  auto query = datalog::ParseQueryText(c.datalog, &pipeline->schema().catalog);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  core::Optimizer optimizer(&pipeline->compiled());
  std::vector<core::Consequence> consequences =
      optimizer.ImpliedConsequences(*query);
  ASSERT_FALSE(consequences.empty()) << "expected some consequences for "
                                     << c.label;

  // Evaluate the query once, projecting every variable, so each
  // consequence can be checked per answer row.
  const std::vector<std::string> vars = query->Variables();
  Query full = *query;
  full.head_args.clear();
  for (const std::string& v : vars) full.head_args.push_back(Term::Var(v));
  auto rows = db.Run(full);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();

  size_t checked = 0;
  for (const core::Consequence& consequence : consequences) {
    if (consequence.is_denial) {
      EXPECT_TRUE(rows->empty())
          << c.label << ": denial consequence [" << consequence.source
          << "] but the query has answers";
      continue;
    }
    const Literal& lit = consequence.literal;
    if (!lit.positive || !lit.atom.is_comparison()) continue;
    // Only check consequences fully over the query's variables.
    std::vector<std::string> cvars;
    lit.atom.CollectVariables(&cvars);
    bool over_query = true;
    for (const std::string& v : cvars) {
      if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
        over_query = false;
      }
    }
    if (!over_query) continue;
    ++checked;

    for (const auto& row : *rows) {
      auto value_of = [&](const Term& t) -> Value {
        if (t.is_constant()) return t.constant();
        auto it = std::find(vars.begin(), vars.end(), t.var_name());
        return row[static_cast<size_t>(it - vars.begin())];
      };
      const Value lhs = value_of(lit.atom.lhs());
      const Value rhs = value_of(lit.atom.rhs());
      bool holds;
      if (lit.atom.op() == datalog::CmpOp::kEq ||
          lit.atom.op() == datalog::CmpOp::kNe) {
        holds = datalog::EvalCmp(lit.atom.op(), lhs.Equals(rhs) ? 0 : 1);
      } else {
        auto cmp = lhs.Compare(rhs);
        ASSERT_TRUE(cmp.has_value())
            << c.label << ": unorderable consequence " << lit.ToString();
        holds = datalog::EvalCmp(lit.atom.op(), *cmp);
      }
      EXPECT_TRUE(holds) << c.label << ": consequence " << lit.ToString()
                         << " [" << consequence.source
                         << "] fails on an answer (lhs=" << lhs.ToString()
                         << ", rhs=" << rhs.ToString() << ")";
      if (!holds) break;
    }
  }
  if (c.expect_evaluable) {
    EXPECT_GT(checked, 0u) << c.label
                           << ": no checkable evaluable consequences";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ConsequenceSoundness,
    ::testing::Combine(::testing::ValuesIn(kQueries),
                       ::testing::Values(3, 11, 29)),
    [](const ::testing::TestParamInfo<std::tuple<Case, int>>& info) {
      return std::string(std::get<0>(info.param).label) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace sqo
