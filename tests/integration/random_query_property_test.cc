// Randomized equivalence fuzzing: generate syntactically valid OQL queries
// from a small grammar over the university schema, optimize each, and
// check that every produced rewriting returns exactly the original answer
// set. Complements the curated corpus in equivalence_property_test.cc with
// breadth: random join chains, restrictions, negations and projections.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "engine/database.h"
#include "workload/university.h"

namespace sqo {
namespace {

/// Deterministic random OQL generator over the Figure-1 schema. Each range
/// variable tracks its class so relationship steps stay type-correct.
class QueryGen {
 public:
  explicit QueryGen(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    vars_.clear();
    from_.clear();
    where_.clear();

    // Root range over a random extent.
    static const char* kClasses[] = {"Person",  "Student", "Faculty",
                                     "TA",      "Course",  "Section",
                                     "Employee"};
    std::string root_class = kClasses[Pick(7)];
    AddVar(root_class);

    // 0–3 relationship hops from random existing variables.
    const int hops = Pick(4);
    for (int i = 0; i < hops; ++i) {
      const size_t base = Pick(vars_.size());
      auto rel = RandomRelationship(vars_[base].cls);
      if (!rel.has_value()) continue;
      std::string var = AddVar(rel->second);
      from_.back() = var + " in " + vars_[base].name + "." + rel->first;
    }

    // 0–2 attribute restrictions.
    const int restrictions = Pick(3);
    for (int i = 0; i < restrictions; ++i) {
      const size_t v = Pick(vars_.size());
      where_.push_back(RandomRestriction(vars_[v]));
    }

    // Occasionally exclude a subclass (valid `not in`).
    if (Pick(4) == 0) {
      for (const Var& v : vars_) {
        auto sub = SubclassOf(v.cls);
        if (sub.has_value()) {
          from_.push_back(v.name + " not in " + *sub);
          break;
        }
      }
    }

    // Project 1–2 expressions.
    std::vector<std::string> select;
    select.push_back(RandomProjection(vars_[Pick(vars_.size())]));
    if (Pick(2) == 0) {
      select.push_back(RandomProjection(vars_[Pick(vars_.size())]));
    }

    std::string oql = "select " + select[0];
    for (size_t i = 1; i < select.size(); ++i) oql += ", " + select[i];
    oql += " from " + from_[0];
    for (size_t i = 1; i < from_.size(); ++i) oql += ", " + from_[i];
    if (!where_.empty()) {
      oql += " where " + where_[0];
      for (size_t i = 1; i < where_.size(); ++i) oql += " and " + where_[i];
    }
    return oql;
  }

 private:
  struct Var {
    std::string name;
    std::string cls;
  };

  size_t Pick(size_t n) { return std::uniform_int_distribution<size_t>(0, n - 1)(rng_); }

  std::string AddVar(const std::string& cls) {
    std::string name = "v" + std::to_string(vars_.size());
    vars_.push_back({name, cls});
    from_.push_back(name + " in " + cls);
    return name;
  }

  /// A relationship visible on `cls` (declared or inherited), with target.
  std::optional<std::pair<std::string, std::string>> RandomRelationship(
      const std::string& cls) {
    // (class, relationship, target) triples of the university schema.
    static const struct {
      const char* cls;
      const char* rel;
      const char* target;
    } kRels[] = {
        {"Student", "takes", "Section"},      {"TA", "takes", "Section"},
        {"TA", "assists", "Section"},         {"Faculty", "teaches", "Section"},
        {"Course", "has_sections", "Section"}, {"Section", "is_taken_by", "Student"},
        {"Section", "is_taught_by", "Faculty"}, {"Section", "is_section_of", "Course"},
        {"Section", "has_ta", "TA"},
    };
    std::vector<std::pair<std::string, std::string>> candidates;
    for (const auto& r : kRels) {
      if (cls == r.cls) candidates.emplace_back(r.rel, r.target);
    }
    if (candidates.empty()) return std::nullopt;
    return candidates[Pick(candidates.size())];
  }

  static std::optional<std::string> SubclassOf(const std::string& cls) {
    if (cls == "Person") return "Faculty";
    if (cls == "Student") return "TA";
    if (cls == "Employee") return "Faculty";
    return std::nullopt;
  }

  std::string RandomRestriction(const Var& v) {
    struct AttrInfo {
      const char* cls;
      const char* attr;
      int lo, hi;
    };
    // Numeric attributes with plausible constant ranges.
    static const AttrInfo kAttrs[] = {
        {"Person", "age", 10, 90},    {"Student", "age", 10, 90},
        {"Faculty", "age", 10, 90},   {"TA", "age", 10, 90},
        {"Employee", "age", 10, 90},  {"Faculty", "salary", 30000, 130000},
        {"Employee", "salary", 30000, 130000},
    };
    std::vector<AttrInfo> candidates;
    for (const auto& a : kAttrs) {
      if (v.cls == a.cls) candidates.push_back(a);
    }
    if (candidates.empty()) {
      // Fall back to a name disequality, valid on every class but Course /
      // Section (which have other string attributes).
      if (v.cls == "Course") return v.name + ".cname != \"nope\"";
      if (v.cls == "Section") return v.name + ".number != \"nope\"";
      return v.name + ".name != \"nope\"";
    }
    const AttrInfo a = candidates[Pick(candidates.size())];
    static const char* kOps[] = {"<", "<=", ">", ">=", "!="};
    const char* op = kOps[Pick(5)];
    const int c = a.lo + static_cast<int>(Pick(static_cast<size_t>(a.hi - a.lo)));
    return std::string(v.name) + "." + a.attr + " " + op + " " +
           std::to_string(c);
  }

  std::string RandomProjection(const Var& v) {
    if (Pick(3) == 0) return v.name;  // project the object itself
    if (v.cls == "Course") return v.name + ".cname";
    if (v.cls == "Section") return v.name + ".number";
    return v.name + ".name";
  }

  std::mt19937_64 rng_;
  std::vector<Var> vars_;
  std::vector<std::string> from_;
  std::vector<std::string> where_;
};

class RandomQuerySweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomQuerySweep, RewritingsPreserveAnswers) {
  static core::Pipeline* pipeline = [] {
    auto p = workload::MakeUniversityPipeline();
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return new core::Pipeline(std::move(p).value());
  }();
  static engine::Database* db = [] {
    auto* d = new engine::Database(&pipeline->schema());
    workload::GeneratorConfig config;
    config.n_plain_persons = 20;
    config.n_students = 40;
    config.n_faculty = 6;
    config.n_courses = 4;
    EXPECT_TRUE(workload::PopulateUniversity(config, *pipeline, d).ok());
    return d;
  }();

  QueryGen gen(static_cast<uint64_t>(GetParam()) * 0x9e3779b9u + 1);
  for (int i = 0; i < 8; ++i) {
    const std::string oql = gen.Generate();
    SCOPED_TRACE(oql);
    auto result = pipeline->OptimizeText(oql);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    auto canonical = [](std::vector<std::vector<Value>> rows) {
      std::vector<std::string> out;
      for (const auto& row : rows) {
        std::string s;
        for (const Value& v : row) s += v.ToString() + "|";
        out.push_back(std::move(s));
      }
      std::sort(out.begin(), out.end());
      return out;
    };

    auto rows_orig = db->Run(result->original_datalog);
    ASSERT_TRUE(rows_orig.ok()) << rows_orig.status().ToString();
    auto expected = canonical(*rows_orig);

    if (result->contradiction) {
      EXPECT_TRUE(expected.empty()) << "claimed contradiction has answers";
      continue;
    }
    for (const core::Alternative& alt : result->alternatives) {
      auto rows = db->Run(alt.datalog);
      ASSERT_TRUE(rows.ok())
          << rows.status().ToString() << "\n" << alt.datalog.ToString();
      EXPECT_EQ(canonical(*rows), expected) << alt.datalog.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQuerySweep, ::testing::Range(1, 13));

}  // namespace
}  // namespace sqo
