// End-to-end reproduction of the paper's §5 applications: each test drives
// the full Figure-2 pipeline (OQL → DATALOG → SQO → OQL) and evaluates the
// queries on a synthetic database, asserting both the *shape* of the
// optimization the paper describes and answer-set equivalence.

#include <gtest/gtest.h>

#include "engine/cost_model.h"
#include "engine/database.h"
#include "workload/university.h"

namespace sqo {
namespace {

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pipeline = workload::MakeUniversityPipeline();
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    pipeline_ = std::make_unique<core::Pipeline>(std::move(pipeline).value());
    db_ = std::make_unique<engine::Database>(&pipeline_->schema());
    workload::GeneratorConfig config;
    ASSERT_TRUE(workload::PopulateUniversity(config, *pipeline_, db_.get()).ok());
    cost_model_ = std::make_unique<engine::EngineCostModel>(&db_->store());
  }

  core::PipelineResult Optimize(const std::string& oql) {
    auto result = pipeline_->OptimizeText(oql, cost_model_.get());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::unique_ptr<core::Pipeline> pipeline_;
  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<engine::EngineCostModel> cost_model_;
};

TEST_F(PaperExamplesTest, Section51ContradictionDetection) {
  core::PipelineResult result = Optimize(workload::QueryExample2());
  ASSERT_TRUE(result.contradiction);
  // The derived IC3 (from IC1 + monotonicity + point fact) produced the
  // conflicting V > 3000 against the query's V < 1000.
  EXPECT_NE(result.contradiction_reason.find("> 3000"), std::string::npos)
      << result.contradiction_reason;
  // Cross-check with the engine: the query really is empty.
  engine::EvalStats stats;
  auto rows = db_->Run(result.original_datalog, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  EXPECT_GT(stats.objects_fetched + stats.method_invocations, 0u)
      << "evaluating the unoptimized query does real work SQO avoids";
}

TEST_F(PaperExamplesTest, Section52ScopeReduction) {
  core::PipelineResult result = Optimize(workload::QueryScopeReduction());
  ASSERT_FALSE(result.contradiction);

  // The cost model picks the scope-reduced variant.
  const core::Alternative& best = result.alternatives[result.best_index];
  bool has_not_faculty = false;
  for (const datalog::Literal& lit : best.datalog.body) {
    if (!lit.positive && lit.atom.predicate() == "faculty") {
      has_not_faculty = true;
    }
  }
  EXPECT_TRUE(has_not_faculty) << best.datalog.ToString();

  // Step 4 renders the paper's exact OQL.
  ASSERT_TRUE(best.oql_ok) << best.oql_error;
  bool rendered = false;
  for (const oql::FromEntry& entry : best.oql.from) {
    if (!entry.positive && entry.domain.front().base == "Faculty") {
      rendered = true;
    }
  }
  EXPECT_TRUE(rendered) << best.oql.ToString();

  // Equivalence + the claimed benefit: fewer objects fetched.
  engine::EvalStats before, after;
  auto rows_before = db_->Run(result.original_datalog, &before);
  auto rows_after = db_->Run(best.datalog, &after);
  ASSERT_TRUE(rows_before.ok() && rows_after.ok());
  EXPECT_EQ(rows_before->size(), rows_after->size());
  EXPECT_LT(after.objects_fetched, before.objects_fetched);
}

TEST_F(PaperExamplesTest, Section53JoinEliminationViaKey) {
  core::PipelineResult result = Optimize(workload::QueryJoinElimination());
  ASSERT_FALSE(result.contradiction);

  const core::Alternative& best = result.alternatives[result.best_index];
  // The best variant compares faculty OIDs instead of joining through two
  // distinct faculty objects: both is_taught_by atoms share one target.
  {
    std::vector<datalog::Term> taught_targets;
    for (const datalog::Literal& lit : best.datalog.body) {
      if (lit.atom.is_predicate() && lit.atom.predicate() == "is_taught_by") {
        taught_targets.push_back(lit.atom.args()[1]);
      }
    }
    ASSERT_EQ(taught_targets.size(), 2u);
    EXPECT_EQ(taught_targets[0], taught_targets[1]) << best.datalog.ToString();
  }
  // And some alternative removes the name join entirely (the fully reduced
  // §5.3 rewrite).
  bool some_without_name_join = false;
  for (const core::Alternative& alt : result.alternatives) {
    bool name_join = false;
    for (const datalog::Literal& lit : alt.datalog.body) {
      if (lit.atom.is_comparison() && lit.atom.lhs().is_variable() &&
          lit.atom.rhs().is_variable() &&
          lit.atom.lhs().var_name().rfind("Name", 0) == 0 &&
          lit.atom.rhs().var_name().rfind("Name", 0) == 0) {
        name_join = true;
      }
    }
    bool merged = false;
    std::vector<datalog::Term> taught_targets;
    for (const datalog::Literal& lit : alt.datalog.body) {
      if (lit.atom.is_predicate() && lit.atom.predicate() == "is_taught_by") {
        taught_targets.push_back(lit.atom.args()[1]);
      }
    }
    merged = taught_targets.size() == 2 && taught_targets[0] == taught_targets[1];
    if (!name_join && merged) some_without_name_join = true;
  }
  EXPECT_TRUE(some_without_name_join);

  // The list constructor survives Step 4 (the paper's §5.3 point).
  ASSERT_TRUE(best.oql_ok) << best.oql_error;
  ASSERT_EQ(best.oql.select_list.size(), 1u);
  EXPECT_EQ(best.oql.select_list[0].kind, oql::Expr::Kind::kCollection);

  // Equivalence + benefit: fewer object fetches.
  engine::EvalStats before, after;
  auto rows_before = db_->Run(result.original_datalog, &before);
  auto rows_after = db_->Run(best.datalog, &after);
  ASSERT_TRUE(rows_before.ok() && rows_after.ok());
  EXPECT_EQ(rows_before->size(), rows_after->size());
  EXPECT_LT(after.objects_fetched, before.objects_fetched);
}

TEST_F(PaperExamplesTest, Section54AsrJoinElimination) {
  core::PipelineResult result = Optimize(workload::QueryAsrDirect());
  ASSERT_FALSE(result.contradiction);

  // The paper's Q': student(X, Name), asr(X, W), Name = "james".
  const core::Alternative* folded = nullptr;
  for (const core::Alternative& alt : result.alternatives) {
    bool has_asr = false, has_path = false;
    for (const datalog::Literal& lit : alt.datalog.body) {
      if (!lit.atom.is_predicate()) continue;
      if (lit.atom.predicate() == "asr_student_ta") has_asr = true;
      if (lit.atom.predicate() == "takes" ||
          lit.atom.predicate() == "has_sections") {
        has_path = true;
      }
    }
    if (has_asr && !has_path &&
        (folded == nullptr ||
         alt.datalog.body.size() < folded->datalog.body.size())) {
      folded = &alt;
    }
  }
  ASSERT_NE(folded, nullptr) << "§5.4 Q' fold missing";
  // The paper's Q': student atom + asr atom + the name restriction.
  EXPECT_EQ(folded->datalog.body.size(), 3u) << folded->datalog.ToString();

  engine::EvalStats before, after;
  auto rows_before = db_->Run(result.original_datalog, &before);
  auto rows_after = db_->Run(folded->datalog, &after);
  ASSERT_TRUE(rows_before.ok() && rows_after.ok());
  EXPECT_EQ(rows_before->size(), rows_after->size());
  // The fold eliminates three joins' worth of traversals.
  EXPECT_LT(after.relationship_traversals, before.relationship_traversals);
}

TEST_F(PaperExamplesTest, Section54AsrJoinIntroduction) {
  core::PipelineResult result = Optimize(workload::QueryAsrIndirect());
  ASSERT_FALSE(result.contradiction);

  // The paper's Q1': student(X, Name), asr(X, W), has_ta(V, W), restriction.
  const core::Alternative* q1_prime = nullptr;
  for (const core::Alternative& alt : result.alternatives) {
    bool has_asr = false, has_ta = false, has_path = false;
    for (const datalog::Literal& lit : alt.datalog.body) {
      if (!lit.atom.is_predicate()) continue;
      if (lit.atom.predicate() == "asr_student_ta") has_asr = true;
      if (lit.atom.predicate() == "has_ta") has_ta = true;
      if (lit.atom.predicate() == "takes") has_path = true;
    }
    if (has_asr && has_ta && !has_path) q1_prime = &alt;
  }
  ASSERT_NE(q1_prime, nullptr) << "§5.4 Q1' missing";

  engine::EvalStats before, after;
  auto rows_before = db_->Run(result.original_datalog, &before);
  auto rows_after = db_->Run(q1_prime->datalog, &after);
  ASSERT_TRUE(rows_before.ok() && rows_after.ok());
  EXPECT_EQ(rows_before->size(), rows_after->size());
}

TEST_F(PaperExamplesTest, EveryMappableAlternativeRoundTripsThroughOql) {
  // Step 4 output re-parses and re-translates to an equivalent query.
  for (const std::string& query :
       {workload::QueryScopeReduction(), workload::QueryJoinElimination(),
        workload::QueryAsrDirect()}) {
    core::PipelineResult result = Optimize(query);
    auto rows_orig = db_->Run(result.original_datalog);
    ASSERT_TRUE(rows_orig.ok());
    for (const core::Alternative& alt : result.alternatives) {
      if (!alt.oql_ok) continue;
      auto rows_alt = db_->Run(alt.datalog);
      ASSERT_TRUE(rows_alt.ok()) << alt.datalog.ToString();
      EXPECT_EQ(rows_orig->size(), rows_alt->size())
          << "alternative changed the answers:\n"
          << alt.datalog.ToString();
    }
  }
}

}  // namespace
}  // namespace sqo
