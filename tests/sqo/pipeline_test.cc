#include "sqo/pipeline.h"

#include <gtest/gtest.h>

#include "oql/parser.h"
#include "workload/university.h"

namespace sqo::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pipeline = workload::MakeUniversityPipeline();
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    pipeline_ = std::make_unique<Pipeline>(std::move(pipeline).value());
  }

  std::unique_ptr<Pipeline> pipeline_;
};

TEST_F(PipelineTest, CreateFromTexts) {
  EXPECT_GT(pipeline_->compiled().total_residues(), 0u);
  EXPECT_GT(pipeline_->schema().catalog.size(), 0u);
  EXPECT_EQ(pipeline_->compiled().asrs.size(), 1u);
}

TEST_F(PipelineTest, CreateRejectsBadOdl) {
  EXPECT_FALSE(Pipeline::Create("interface {", "").ok());
}

TEST_F(PipelineTest, CreateRejectsBadIcs) {
  EXPECT_FALSE(Pipeline::Create("interface A {};", "X > <- p(X).").ok());
}

TEST_F(PipelineTest, Contradiction51) {
  auto result = pipeline_->OptimizeText(workload::QueryExample2());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->contradiction);
  EXPECT_FALSE(result->contradiction_reason.empty());
  // The witness contains both V < 1000 and V > 3000 (the paper's Q').
  EXPECT_GT(result->contradiction_witness.body.size(),
            result->original_datalog.body.size());
}

TEST_F(PipelineTest, ScopeReduction52ProducesNotInOql) {
  auto result = pipeline_->OptimizeText(workload::QueryScopeReduction());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->contradiction);
  bool not_in_faculty = false;
  for (const Alternative& alt : result->alternatives) {
    if (!alt.oql_ok) continue;
    for (const oql::FromEntry& entry : alt.oql.from) {
      if (!entry.positive && entry.domain.front().base == "Faculty") {
        not_in_faculty = true;
      }
    }
  }
  EXPECT_TRUE(not_in_faculty) << "§5.2 'x not in Faculty' missing";
}

TEST_F(PipelineTest, JoinElimination53PreservesConstructor) {
  auto result = pipeline_->OptimizeText(workload::QueryJoinElimination());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->alternatives.size(), 1u);
  for (const Alternative& alt : result->alternatives) {
    if (!alt.oql_ok) continue;
    ASSERT_EQ(alt.oql.select_list.size(), 1u);
    EXPECT_EQ(alt.oql.select_list[0].kind, oql::Expr::Kind::kCollection)
        << "list constructor lost in: " << alt.oql.ToString();
  }
}

TEST_F(PipelineTest, Asr54FoldsIntoVirtualRange) {
  auto result = pipeline_->OptimizeText(workload::QueryAsrDirect());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  bool folded = false;
  for (const Alternative& alt : result->alternatives) {
    for (const datalog::Literal& lit : alt.datalog.body) {
      if (lit.atom.is_predicate() && lit.atom.predicate() == "asr_student_ta") {
        folded = true;
      }
    }
  }
  EXPECT_TRUE(folded);
}

TEST_F(PipelineTest, BestIndexZeroWithoutCostModel) {
  auto result = pipeline_->OptimizeText(workload::QueryScopeReduction());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_index, 0);
}

TEST_F(PipelineTest, CostModelSelectsBest) {
  // A trivial cost model preferring shorter bodies.
  class ShorterIsBetter : public CostModel {
   public:
    double EstimateCost(const datalog::Query& query) const override {
      return static_cast<double>(query.body.size());
    }
  };
  ShorterIsBetter model;
  auto result = pipeline_->OptimizeText(workload::QueryJoinElimination(), &model);
  ASSERT_TRUE(result.ok());
  size_t best_size =
      result->alternatives[result->best_index].datalog.body.size();
  for (const Alternative& alt : result->alternatives) {
    EXPECT_LE(best_size, alt.datalog.body.size());
  }
}

TEST_F(PipelineTest, OriginalAlternativeKeepsOriginalOql) {
  auto parsed = oql::ParseOql(workload::QueryScopeReduction());
  ASSERT_TRUE(parsed.ok());
  auto result = pipeline_->OptimizeParsed(*parsed);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->alternatives.empty());
  EXPECT_TRUE(result->alternatives[0].oql_ok);
  EXPECT_EQ(result->alternatives[0].oql, *parsed);
}

TEST_F(PipelineTest, ParseErrorSurfaces) {
  EXPECT_FALSE(pipeline_->OptimizeText("select from where").ok());
}

TEST_F(PipelineTest, SemanticErrorSurfaces) {
  EXPECT_FALSE(pipeline_->OptimizeText("select x.zzz from x in Person").ok());
}

TEST_F(PipelineTest, EveryAlternativeCarriesDerivationOrIsOriginal) {
  auto result = pipeline_->OptimizeText(workload::QueryScopeReduction());
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->alternatives.size(); ++i) {
    EXPECT_FALSE(result->alternatives[i].derivation.empty());
  }
}

TEST_F(PipelineTest, PipelineWithoutInference) {
  PipelineOptions options;
  options.compiler.run_inference = false;
  auto pipeline = Pipeline::Create(workload::UniversityOdl(),
                                   workload::UniversityIcs(),
                                   {workload::UniversityAsr()}, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  // Without inference the §5.1 contradiction is not detectable.
  auto result = pipeline->OptimizeText(workload::QueryExample2());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->contradiction);
}

}  // namespace
}  // namespace sqo::core
