#include "sqo/semantic_compiler.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "odl/parser.h"
#include "workload/university.h"

namespace sqo::core {
namespace {

class SemanticCompilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ast = odl::ParseOdl(workload::UniversityOdl());
    ASSERT_TRUE(ast.ok());
    auto schema = odl::Schema::Resolve(*ast);
    ASSERT_TRUE(schema.ok());
    auto translated = translate::TranslateSchema(*schema);
    ASSERT_TRUE(translated.ok());
    schema_ = std::make_unique<translate::TranslatedSchema>(
        std::move(translated).value());
  }

  sqo::Result<CompiledSchema> Compile(const std::string& ics,
                                      CompilerOptions options = {}) {
    auto parsed = datalog::ParseProgram(ics, &schema_->catalog);
    if (!parsed.ok()) return parsed.status();
    return CompileSemantics(schema_.get(), *parsed, {}, options);
  }

  std::unique_ptr<translate::TranslatedSchema> schema_;
};

TEST_F(SemanticCompilerTest, CompilesSchemaOnlyIcs) {
  auto compiled = Compile("");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_GT(compiled->total_residues(), 0u);
  // Structural IC families attach residues to the relations they mention.
  EXPECT_NE(compiled->ResiduesFor("takes"), nullptr);
  EXPECT_NE(compiled->ResiduesFor("faculty"), nullptr);
  EXPECT_EQ(compiled->ResiduesFor("no_such_relation"), nullptr);
}

TEST_F(SemanticCompilerTest, UserIcsAddResidues) {
  auto base = Compile("");
  auto with_user =
      Compile("IC1: Salary > 40K <- faculty(oid: X, salary: Salary).");
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(with_user.ok());
  EXPECT_GT(with_user->total_residues(), base->total_residues());
  // The IC1 residue is attached to faculty with an empty remainder.
  bool found = false;
  for (const Residue& r : *with_user->ResiduesFor("faculty")) {
    if (r.source == "IC1") {
      EXPECT_TRUE(r.remainder.empty());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SemanticCompilerTest, InferenceRunsByDefault) {
  auto compiled = Compile(workload::UniversityIcs().data());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  bool derived_found = false;
  for (const datalog::Clause& ic : compiled->all_ics) {
    if (ic.label.rfind("derived:", 0) == 0) derived_found = true;
  }
  EXPECT_TRUE(derived_found);
}

TEST_F(SemanticCompilerTest, InferenceCanBeDisabled) {
  CompilerOptions options;
  options.run_inference = false;
  auto compiled = Compile(workload::UniversityIcs().data(), options);
  ASSERT_TRUE(compiled.ok());
  for (const datalog::Clause& ic : compiled->all_ics) {
    EXPECT_NE(ic.label.rfind("derived:", 0), 0u) << ic.label;
  }
}

TEST_F(SemanticCompilerTest, TrivialResiduesDropped) {
  auto compiled = Compile("");
  ASSERT_TRUE(compiled.ok());
  for (const auto& [rel, residues] : compiled->residues) {
    for (const Residue& r : residues) {
      if (!r.head.has_value() || !r.head->atom.is_comparison()) continue;
      if (r.head->atom.op() == datalog::CmpOp::kEq) {
        EXPECT_NE(r.head->atom.lhs(), r.head->atom.rhs())
            << rel << ": " << r.ToString();
      }
    }
  }
}

TEST_F(SemanticCompilerTest, TrivialFilterCanBeDisabled) {
  CompilerOptions keep;
  keep.drop_trivial = false;
  auto with_trivial = Compile("", keep);
  auto without = Compile("");
  ASSERT_TRUE(with_trivial.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_GT(with_trivial->total_residues(), without->total_residues());
}

TEST_F(SemanticCompilerTest, UnknownRelationInIcFails) {
  auto compiled = Compile("X > 3 <- nonexistent(X).");
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), sqo::StatusCode::kSemanticError);
}

TEST_F(SemanticCompilerTest, ToStringListsResidues) {
  auto compiled = Compile("IC1: Salary > 40K <- faculty(oid: X, salary: Salary).");
  ASSERT_TRUE(compiled.ok());
  std::string dump = compiled->ToString();
  EXPECT_NE(dump.find("faculty"), std::string::npos);
  EXPECT_NE(dump.find("[IC1]"), std::string::npos);
}

TEST_F(SemanticCompilerTest, MethodFactsAreExtractedNotCompiled) {
  auto compiled = Compile(
      "monotone(taxes_withheld, salary, increasing).\n"
      "point(taxes_withheld, 30K, 10%, 3000).");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  for (const datalog::Clause& ic : compiled->all_ics) {
    if (!ic.head.has_value() || !ic.head->atom.is_predicate()) continue;
    EXPECT_NE(ic.head->atom.predicate(), "monotone");
    EXPECT_NE(ic.head->atom.predicate(), "point");
  }
}

}  // namespace
}  // namespace sqo::core
