#include "sqo/ic_inference.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "datalog/parser.h"
#include "odl/parser.h"
#include "workload/university.h"

namespace sqo::core {
namespace {

using datalog::Clause;

class IcInferenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ast = odl::ParseOdl(workload::UniversityOdl());
    ASSERT_TRUE(ast.ok());
    auto schema = odl::Schema::Resolve(*ast);
    ASSERT_TRUE(schema.ok());
    auto translated = translate::TranslateSchema(*schema);
    ASSERT_TRUE(translated.ok());
    schema_ = std::make_unique<translate::TranslatedSchema>(
        std::move(translated).value());
  }

  std::vector<Clause> ParseIcs(const std::string& text) {
    auto parsed = datalog::ParseProgram(text, &schema_->catalog);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    return *parsed;
  }

  static const Clause* FindLabelPrefix(const std::vector<Clause>& ics,
                                       const std::string& prefix) {
    for (const Clause& ic : ics) {
      if (sqo::StartsWith(ic.label, prefix)) return &ic;
    }
    return nullptr;
  }

  std::unique_ptr<translate::TranslatedSchema> schema_;
};

TEST_F(IcInferenceTest, ExtractMethodFacts) {
  std::vector<Clause> clauses = ParseIcs(
      "monotone(taxes_withheld, salary, increasing).\n"
      "point(taxes_withheld, 30K, 10%, 3000).\n"
      "IC1: Salary > 40K <- faculty(oid: X, salary: Salary).");
  InferenceInput input;
  ASSERT_TRUE(ExtractMethodFacts(&clauses, &input).ok());
  EXPECT_EQ(clauses.size(), 1u);  // only IC1 remains
  ASSERT_EQ(input.monotonicities.size(), 1u);
  EXPECT_EQ(input.monotonicities[0].method, "taxes_withheld");
  EXPECT_EQ(input.monotonicities[0].attribute, "salary");
  EXPECT_TRUE(input.monotonicities[0].strict);
  ASSERT_EQ(input.point_facts.size(), 1u);
  EXPECT_EQ(input.point_facts[0].attr_value, sqo::Value::Int(30000));
  ASSERT_EQ(input.point_facts[0].args.size(), 1u);
  EXPECT_EQ(input.point_facts[0].args[0], sqo::Value::Double(0.10));
  EXPECT_EQ(input.point_facts[0].result, sqo::Value::Int(3000));
}

TEST_F(IcInferenceTest, ExtractRejectsMalformedFacts) {
  std::vector<Clause> clauses = ParseIcs("monotone(taxes_withheld, salary).");
  InferenceInput input;
  EXPECT_FALSE(ExtractMethodFacts(&clauses, &input).ok());
  clauses = ParseIcs("monotone(taxes_withheld, salary, sideways).");
  EXPECT_FALSE(ExtractMethodFacts(&clauses, &input).ok());
  clauses = ParseIcs("point(m, X, 1).");
  EXPECT_FALSE(ExtractMethodFacts(&clauses, &input).ok());
}

TEST_F(IcInferenceTest, DerivesIc3FromMethodFacts) {
  // IC1 + monotonicity + point fact ⊢ IC3 (§5.1).
  InferenceInput input;
  input.ics = ParseIcs("IC1: Salary > 40K <- faculty(oid: X, salary: Salary).");
  input.monotonicities = {{"taxes_withheld", "salary", /*strict=*/true}};
  input.point_facts = {{"taxes_withheld",
                        sqo::Value::Int(30000),
                        {sqo::Value::Double(0.10)},
                        sqo::Value::Int(3000)}};
  std::vector<Clause> derived = InferConstraints(input, *schema_);
  const Clause* ic3 = FindLabelPrefix(derived, "derived:method_bound:");
  ASSERT_NE(ic3, nullptr);
  // Head: Value > 3000 (strict, since salary > 40K > 30K and the method is
  // strictly increasing).
  ASSERT_TRUE(ic3->head.has_value());
  EXPECT_EQ(ic3->head->atom.op(), datalog::CmpOp::kGt);
  EXPECT_EQ(ic3->head->atom.rhs(), datalog::Term::Int(3000));
  // Body: taxes_withheld(Oid, 0.10, Value) and faculty(Oid, ...).
  ASSERT_EQ(ic3->body.size(), 2u);
  EXPECT_EQ(ic3->body[0].atom.predicate(), "taxes_withheld");
  EXPECT_EQ(ic3->body[0].atom.args()[1], datalog::Term::Double(0.10));
  EXPECT_EQ(ic3->body[1].atom.predicate(), "faculty");
}

TEST_F(IcInferenceTest, NondecreasingMonotonicityWeakensToGe) {
  InferenceInput input;
  input.ics = ParseIcs("Salary > 40K <- faculty(oid: X, salary: Salary).");
  input.monotonicities = {{"taxes_withheld", "salary", /*strict=*/false}};
  input.point_facts = {{"taxes_withheld",
                        sqo::Value::Int(30000),
                        {sqo::Value::Double(0.10)},
                        sqo::Value::Int(3000)}};
  std::vector<Clause> derived = InferConstraints(input, *schema_);
  const Clause* ic = FindLabelPrefix(derived, "derived:method_bound:");
  ASSERT_NE(ic, nullptr);
  EXPECT_EQ(ic->head->atom.op(), datalog::CmpOp::kGe);
}

TEST_F(IcInferenceTest, UpperBoundDirection) {
  InferenceInput input;
  input.ics = ParseIcs("Salary < 20K <- employee(oid: X, salary: Salary).");
  input.monotonicities = {{"taxes_withheld", "salary", /*strict=*/true}};
  input.point_facts = {{"taxes_withheld",
                        sqo::Value::Int(30000),
                        {sqo::Value::Double(0.10)},
                        sqo::Value::Int(3000)}};
  std::vector<Clause> derived = InferConstraints(input, *schema_);
  const Clause* ic = FindLabelPrefix(derived, "derived:method_bound:");
  ASSERT_NE(ic, nullptr);
  EXPECT_EQ(ic->head->atom.op(), datalog::CmpOp::kLt);
}

TEST_F(IcInferenceTest, NoBoundWhenRangeStraddlesPoint) {
  InferenceInput input;
  input.ics = ParseIcs("Salary > 20K <- faculty(oid: X, salary: Salary).");
  input.monotonicities = {{"taxes_withheld", "salary", /*strict=*/true}};
  input.point_facts = {{"taxes_withheld",
                        sqo::Value::Int(30000),
                        {sqo::Value::Double(0.10)},
                        sqo::Value::Int(3000)}};
  std::vector<Clause> derived = InferConstraints(input, *schema_);
  EXPECT_EQ(FindLabelPrefix(derived, "derived:method_bound:"), nullptr);
}

TEST_F(IcInferenceTest, MethodNotOnClassIsSkipped) {
  // taxes_withheld is declared on Employee; Course is unrelated.
  InferenceInput input;
  input.ics = ParseIcs("Cname > \"a\" <- course(oid: X, cname: Cname).");
  input.monotonicities = {{"taxes_withheld", "cname", /*strict=*/true}};
  input.point_facts = {{"taxes_withheld",
                        sqo::Value::String("a"),
                        {sqo::Value::Double(0.10)},
                        sqo::Value::Int(1)}};
  std::vector<Clause> derived = InferConstraints(input, *schema_);
  EXPECT_EQ(FindLabelPrefix(derived, "derived:method_bound:"), nullptr);
}

TEST_F(IcInferenceTest, SuperclassAugmentationDerivesIc6) {
  // IC4 on faculty gains person (and employee) atoms sharing the prefix.
  InferenceInput input;
  input.ics = ParseIcs("IC4: Age >= 30 <- faculty(oid: X, age: Age).");
  InferenceOptions options;
  options.contrapositives = false;
  std::vector<Clause> derived = InferConstraints(input, *schema_, options);
  const Clause* ic6 = nullptr;
  for (const Clause& ic : derived) {
    if (sqo::StartsWith(ic.label, "derived:super:IC4") &&
        ic.label.find("person") != std::string::npos) {
      ic6 = &ic;
    }
  }
  ASSERT_NE(ic6, nullptr);
  ASSERT_EQ(ic6->body.size(), 2u);
  EXPECT_EQ(ic6->body[1].atom.predicate(), "person");
  // Shared OID and age variables between the two atoms.
  EXPECT_EQ(ic6->body[0].atom.args()[0], ic6->body[1].atom.args()[0]);
  EXPECT_EQ(ic6->body[0].atom.args()[2], ic6->body[1].atom.args()[2]);
}

TEST_F(IcInferenceTest, ContrapositiveDerivesIc6Prime) {
  InferenceInput input;
  input.ics = ParseIcs("IC4: Age >= 30 <- faculty(oid: X, age: Age).");
  std::vector<Clause> derived = InferConstraints(input, *schema_);
  // Find ¬faculty(...) <- person(...), Age < 30.
  const Clause* ic6p = nullptr;
  for (const Clause& ic : derived) {
    if (!ic.head.has_value() || ic.head->positive) continue;
    if (ic.head->atom.predicate() != "faculty") continue;
    bool has_person = false, has_lt = false;
    for (const auto& lit : ic.body) {
      if (lit.atom.is_predicate() && lit.atom.predicate() == "person") {
        has_person = true;
      }
      if (lit.atom.is_comparison() && lit.atom.op() == datalog::CmpOp::kLt) {
        has_lt = true;
      }
    }
    if (has_person && has_lt) ic6p = &ic;
  }
  ASSERT_NE(ic6p, nullptr) << "IC6' not derived";
}

TEST_F(IcInferenceTest, OptionsDisablePasses) {
  InferenceInput input;
  input.ics = ParseIcs("IC4: Age >= 30 <- faculty(oid: X, age: Age).");
  InferenceOptions off;
  off.method_bounds = false;
  off.superclass_augmentation = false;
  off.contrapositives = false;
  EXPECT_TRUE(InferConstraints(input, *schema_, off).empty());
}

TEST_F(IcInferenceTest, DerivedCountIsCapped) {
  InferenceInput input;
  input.ics = ParseIcs("IC4: Age >= 30 <- faculty(oid: X, age: Age).");
  InferenceOptions options;
  options.max_derived = 2;
  EXPECT_LE(InferConstraints(input, *schema_, options).size(), 2u);
}

TEST_F(IcInferenceTest, DeterministicOutput) {
  InferenceInput input;
  input.ics = ParseIcs(
      "IC1: Salary > 40K <- faculty(oid: X, salary: Salary).\n"
      "IC4: Age >= 30 <- faculty(oid: X, age: Age).");
  auto a = InferConstraints(input, *schema_);
  auto b = InferConstraints(input, *schema_);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToString(), b[i].ToString());
  }
}

}  // namespace
}  // namespace sqo::core
