#include "sqo/optimizer.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "odl/parser.h"
#include "workload/university.h"

namespace sqo::core {
namespace {

using datalog::Literal;
using datalog::Query;

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ast = odl::ParseOdl(workload::UniversityOdl());
    ASSERT_TRUE(ast.ok());
    auto schema = odl::Schema::Resolve(*ast);
    ASSERT_TRUE(schema.ok());
    auto translated = translate::TranslateSchema(*schema);
    ASSERT_TRUE(translated.ok());
    schema_ = std::make_unique<translate::TranslatedSchema>(
        std::move(translated).value());

    std::vector<AsrDefinition> registry;
    ASSERT_TRUE(RegisterAsr(workload::UniversityAsr(), schema_.get(), &registry)
                    .ok());
    auto user = datalog::ParseProgram(workload::UniversityIcs(),
                                      &schema_->catalog);
    ASSERT_TRUE(user.ok()) << user.status().ToString();
    std::vector<datalog::Clause> ics = *user;
    for (const AsrDefinition& def : registry) ics.push_back(def.view);
    auto compiled = CompileSemantics(schema_.get(), std::move(ics),
                                     std::move(registry), {});
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    compiled_ = std::make_unique<CompiledSchema>(std::move(compiled).value());
  }

  Query ParseQ(const std::string& text) {
    auto q = datalog::ParseQueryText(text, &schema_->catalog);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  static bool HasConsequence(const std::vector<Consequence>& cs,
                             const std::string& rendered) {
    for (const Consequence& c : cs) {
      if (c.literal.ToString() == rendered) return true;
    }
    return false;
  }

  std::unique_ptr<translate::TranslatedSchema> schema_;
  std::unique_ptr<CompiledSchema> compiled_;
};

TEST_F(OptimizerTest, InvariantConsequenceFromSingleAtom) {
  Optimizer opt(compiled_.get());
  Query q = ParseQ("q(S) :- faculty(oid: X, salary: S).");
  auto consequences = opt.ImpliedConsequences(q);
  EXPECT_TRUE(HasConsequence(consequences, "S > 40000"));
  EXPECT_TRUE(HasConsequence(consequences, "Age >= 30") ||
              !consequences.empty());
}

TEST_F(OptimizerTest, MethodBoundConsequence) {
  Optimizer opt(compiled_.get());
  Query q = ParseQ(
      "q(V) :- faculty(oid: Z), taxes_withheld(Z, 10%, V).");
  auto consequences = opt.ImpliedConsequences(q);
  EXPECT_TRUE(HasConsequence(consequences, "V > 3000"))
      << "IC3 residue did not fire";
}

TEST_F(OptimizerTest, MethodBoundNotAppliedForOtherRate) {
  Optimizer opt(compiled_.get());
  Query q = ParseQ("q(V) :- faculty(oid: Z), taxes_withheld(Z, 20%, V).");
  auto consequences = opt.ImpliedConsequences(q);
  EXPECT_FALSE(HasConsequence(consequences, "V > 3000"));
}

TEST_F(OptimizerTest, KeyConsequenceModuloEqualityTheory) {
  Optimizer opt(compiled_.get());
  Query q = ParseQ(
      "q(X1, X2) :- faculty(oid: X1, name: N1), faculty(oid: X2, name: N2), "
      "N1 = N2.");
  auto consequences = opt.ImpliedConsequences(q);
  EXPECT_TRUE(HasConsequence(consequences, "X1 = X2") ||
              HasConsequence(consequences, "X2 = X1"));
}

TEST_F(OptimizerTest, ContradictionDetected) {
  Optimizer opt(compiled_.get());
  Query q = ParseQ(
      "q(V) :- faculty(oid: Z), taxes_withheld(Z, 10%, V), V < 1000.");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->contradiction);
  EXPECT_NE(outcome->contradiction_reason.find("V > 3000"), std::string::npos);
}

TEST_F(OptimizerTest, SyntacticContradictionDetected) {
  Optimizer opt(compiled_.get());
  Query q = ParseQ("q(X) :- person(oid: X, age: A), A < 10, A > 20.");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->contradiction);
}

TEST_F(OptimizerTest, NoFalseContradiction) {
  Optimizer opt(compiled_.get());
  Query q = ParseQ(
      "q(V) :- faculty(oid: Z), taxes_withheld(Z, 10%, V), V > 5000.");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->contradiction);
}

TEST_F(OptimizerTest, ScopeReductionAddsNegatedSubclass) {
  Optimizer opt(compiled_.get());
  Query q = ParseQ("q(N) :- person(oid: X, name: N, age: A), A < 30.");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  bool found = false;
  for (const Rewriting& rw : outcome->equivalents) {
    for (const Literal& lit : rw.query.body) {
      if (!lit.positive && lit.atom.is_predicate() &&
          lit.atom.predicate() == "faculty") {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found) << "§5.2 scope reduction missing";
}

TEST_F(OptimizerTest, ScopeReductionRequiresApplicableRange) {
  // Age >= 30 in the query: the contrapositive cannot fire.
  Optimizer opt(compiled_.get());
  Query q = ParseQ("q(N) :- person(oid: X, name: N, age: A), A > 50.");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  for (const Rewriting& rw : outcome->equivalents) {
    for (const Literal& lit : rw.query.body) {
      EXPECT_TRUE(lit.positive || lit.atom.predicate() != "faculty")
          << rw.query.ToString();
    }
  }
}

TEST_F(OptimizerTest, MergeProducesOidUnifiedVariant) {
  Optimizer opt(compiled_.get());
  Query q = ParseQ(
      "q(X1, X2) :- faculty(oid: X1, name: N1), faculty(oid: X2, name: N2), "
      "N1 = N2.");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  // Some alternative has a single faculty atom and no name comparison:
  // the fully reduced §5.3 form (note both head vars collapse).
  bool fully_merged = false;
  for (const Rewriting& rw : outcome->equivalents) {
    size_t faculty_atoms = 0, comparisons = 0;
    for (const Literal& lit : rw.query.body) {
      if (lit.atom.is_predicate() && lit.atom.predicate() == "faculty") {
        ++faculty_atoms;
      }
      if (lit.atom.is_comparison()) ++comparisons;
    }
    if (faculty_atoms == 1 && comparisons == 0) fully_merged = true;
  }
  EXPECT_TRUE(fully_merged);
}

TEST_F(OptimizerTest, AsrFoldRewritesPath) {
  Optimizer opt(compiled_.get());
  Query q = ParseQ(
      "q(W) :- student(oid: X, name: N), takes(X, Y), is_section_of(Y, Z), "
      "has_sections(Z, V), has_ta(V, W), N = \"james\".");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  bool folded = false;
  for (const Rewriting& rw : outcome->equivalents) {
    bool has_asr = false, has_takes = false;
    for (const Literal& lit : rw.query.body) {
      if (!lit.atom.is_predicate()) continue;
      if (lit.atom.predicate() == "asr_student_ta") has_asr = true;
      if (lit.atom.predicate() == "takes") has_takes = true;
    }
    if (has_asr && !has_takes) folded = true;
  }
  EXPECT_TRUE(folded) << "§5.4 Q' fold missing";
}

TEST_F(OptimizerTest, AsrFoldBlockedWhenInteriorProjected) {
  // Projecting the section variable Y blocks the full fold.
  Optimizer opt(compiled_.get());
  Query q = ParseQ(
      "q(Y) :- student(oid: X, name: N), takes(X, Y), is_section_of(Y, Z), "
      "has_sections(Z, V), has_ta(V, W), N = \"james\".");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  for (const Rewriting& rw : outcome->equivalents) {
    bool has_asr = false, has_takes = false;
    for (const Literal& lit : rw.query.body) {
      if (!lit.atom.is_predicate()) continue;
      if (lit.atom.predicate() == "asr_student_ta") has_asr = true;
      if (lit.atom.predicate() == "takes") has_takes = true;
    }
    EXPECT_TRUE(!has_asr || has_takes) << rw.query.ToString();
  }
}

TEST_F(OptimizerTest, JoinIntroductionViaIc9ThenPartialFold) {
  // §5.4 Q1 → Q1': has_ta introduced by IC9, then the 3-hop prefix folds.
  Optimizer opt(compiled_.get());
  Query q = ParseQ(
      "q(V) :- student(oid: X, name: N), takes(X, Y), is_section_of(Y, Z), "
      "has_sections(Z, V), N = \"johnson\".");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  bool q1_prime = false;
  for (const Rewriting& rw : outcome->equivalents) {
    bool has_asr = false, has_ta = false, has_takes = false;
    for (const Literal& lit : rw.query.body) {
      if (!lit.atom.is_predicate()) continue;
      if (lit.atom.predicate() == "asr_student_ta") has_asr = true;
      if (lit.atom.predicate() == "has_ta") has_ta = true;
      if (lit.atom.predicate() == "takes") has_takes = true;
    }
    if (has_asr && has_ta && !has_takes) q1_prime = true;
  }
  EXPECT_TRUE(q1_prime) << "§5.4 Q1' not produced";
}

TEST_F(OptimizerTest, RestrictionRemovalDropsImpliedComparison) {
  Optimizer opt(compiled_.get());
  // Salary > 20K is implied by IC1's Salary > 40K.
  Query q = ParseQ("q(S) :- faculty(oid: X, salary: S), S > 20K.");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  bool removed = false;
  for (const Rewriting& rw : outcome->equivalents) {
    if (rw.query.Comparisons().empty()) removed = true;
  }
  EXPECT_TRUE(removed);
}

TEST_F(OptimizerTest, NonImpliedRestrictionIsKept) {
  Optimizer opt(compiled_.get());
  Query q = ParseQ("q(S) :- faculty(oid: X, salary: S), S > 60K.");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  for (const Rewriting& rw : outcome->equivalents) {
    EXPECT_FALSE(rw.query.Comparisons().empty()) << rw.query.ToString();
  }
}

TEST_F(OptimizerTest, OriginalIsAlwaysFirstAlternative) {
  Optimizer opt(compiled_.get());
  Query q = ParseQ("q(N) :- person(oid: X, name: N, age: A), A < 30.");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->equivalents.empty());
  EXPECT_EQ(outcome->equivalents[0].query.ToString(), q.ToString());
  EXPECT_TRUE(outcome->equivalents[0].derivation.empty());
}

TEST_F(OptimizerTest, AlternativesAreDeduplicated) {
  Optimizer opt(compiled_.get());
  Query q = ParseQ("q(N) :- person(oid: X, name: N, age: A), A < 30.");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  std::set<std::string> keys;
  for (const Rewriting& rw : outcome->equivalents) {
    EXPECT_TRUE(keys.insert(rw.query.CanonicalKey()).second)
        << "duplicate: " << rw.query.ToString();
  }
}

TEST_F(OptimizerTest, MaxAlternativesRespected) {
  OptimizerOptions options;
  options.max_alternatives = 3;
  options.reduce_to_fixpoint = false;
  Optimizer opt(compiled_.get(), options);
  Query q = ParseQ(
      "q(S1) :- student(oid: S1), takes(S1, Y1), is_section_of(Y1, C1), "
      "has_sections(C1, Y2), has_ta(Y2, T1).");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome->equivalents.size(), 3u);
}

TEST_F(OptimizerTest, UserDenialIcTriggersContradiction) {
  // Compile a catalog whose only user IC is a denial: no TA may also be
  // enrolled in the section they assist.
  auto user = datalog::ParseProgram(
      "no_self: <- assists(T, S), takes(T, S).", &schema_->catalog);
  ASSERT_TRUE(user.ok()) << user.status().ToString();
  auto compiled = CompileSemantics(schema_.get(), *user, {});
  ASSERT_TRUE(compiled.ok());
  Optimizer opt(&*compiled);
  Query q = ParseQ("q(T) :- assists(T, S), takes(T, S).");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->contradiction);
  EXPECT_NE(outcome->contradiction_reason.find("no_self"), std::string::npos);
  // A query matching only half the denial is fine.
  Query half = ParseQ("q(T) :- assists(T, S).");
  auto ok_outcome = opt.Optimize(half);
  ASSERT_TRUE(ok_outcome.ok());
  EXPECT_FALSE(ok_outcome->contradiction);
}

TEST_F(OptimizerTest, MaxDepthBoundsChaining) {
  // §5.4 Q1' needs depth ≥ 2 (introduce has_ta, then fold); at depth 1 the
  // partial fold cannot appear.
  OptimizerOptions shallow;
  shallow.max_depth = 1;
  shallow.reduce_to_fixpoint = false;
  Optimizer opt(compiled_.get(), shallow);
  Query q = ParseQ(
      "q(V) :- student(oid: X, name: N), takes(X, Y), is_section_of(Y, Z), "
      "has_sections(Z, V), N = \"johnson\".");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  for (const Rewriting& rw : outcome->equivalents) {
    bool has_asr = false, has_takes = false;
    for (const datalog::Literal& lit : rw.query.body) {
      if (!lit.atom.is_predicate()) continue;
      if (lit.atom.predicate() == "asr_student_ta") has_asr = true;
      if (lit.atom.predicate() == "takes") has_takes = true;
    }
    EXPECT_TRUE(!has_asr || has_takes) << rw.query.ToString();
  }
}

TEST_F(OptimizerTest, DeadVariableRestrictionsNotAdded) {
  // IC1 implies Salary > 40K, but the query never compares or projects the
  // salary placeholder: adding the bound cannot prune anything and would
  // only mislead cost models (the §4.1 heuristics requirement).
  Optimizer opt(compiled_.get());
  Query q = ParseQ("q(N) :- faculty(oid: X, name: N).");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  for (const Rewriting& rw : outcome->equivalents) {
    for (const Literal& lit : rw.query.body) {
      EXPECT_FALSE(lit.atom.is_comparison() &&
                   lit.atom.rhs() == datalog::Term::Int(40000))
          << rw.query.ToString();
    }
  }
}

TEST_F(OptimizerTest, RestrictionAddedWhenVariableInteracts) {
  // Here the salary variable participates in a comparison, so the IC1
  // bound is a promising addition.
  Optimizer opt(compiled_.get());
  Query q = ParseQ("q(S) :- faculty(oid: X, salary: S), S < 90K.");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  bool added = false;
  for (const Rewriting& rw : outcome->equivalents) {
    for (const Literal& lit : rw.query.body) {
      if (lit.atom.is_comparison() &&
          lit.atom.rhs() == datalog::Term::Int(40000)) {
        added = true;
      }
    }
  }
  EXPECT_TRUE(added);
}

TEST_F(OptimizerTest, InverseRelationshipNotIntroduced) {
  // takes(X, Y) implies is_taken_by(Y, X), but introducing the inverse of
  // an atom already present adds no information; the heuristic suppresses
  // it.
  Optimizer opt(compiled_.get());
  Query q = ParseQ("q(X) :- student(oid: X), takes(X, Y).");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  for (const Rewriting& rw : outcome->equivalents) {
    for (const Literal& lit : rw.query.body) {
      EXPECT_FALSE(lit.atom.is_predicate() &&
                   lit.atom.predicate() == "is_taken_by")
          << rw.query.ToString();
    }
  }
}

TEST_F(OptimizerTest, ConsequencesAreMemoizedConsistently) {
  Optimizer opt(compiled_.get());
  Query q = ParseQ("q(S) :- faculty(oid: X, salary: S).");
  auto first = opt.ImpliedConsequences(q);
  auto second = opt.ImpliedConsequences(q);  // cache hit
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].ToString(), second[i].ToString());
  }
}

TEST_F(OptimizerTest, DisabledTransformationsProduceNothing) {
  OptimizerOptions off;
  off.add_restrictions = false;
  off.remove_restrictions = false;
  off.scope_reduction = false;
  off.merge_equal_variables = false;
  off.join_introduction = false;
  off.join_elimination = false;
  off.asr_rewriting = false;
  off.reduce_to_fixpoint = false;
  Optimizer opt(compiled_.get(), off);
  Query q = ParseQ("q(N) :- person(oid: X, name: N, age: A), A < 30.");
  auto outcome = opt.Optimize(q);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->equivalents.size(), 1u);
}

}  // namespace
}  // namespace sqo::core
