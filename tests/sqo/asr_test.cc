#include "sqo/asr.h"

#include <gtest/gtest.h>

#include "odl/parser.h"
#include "workload/university.h"

namespace sqo::core {
namespace {

class AsrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ast = odl::ParseOdl(workload::UniversityOdl());
    ASSERT_TRUE(ast.ok());
    auto schema = odl::Schema::Resolve(*ast);
    ASSERT_TRUE(schema.ok());
    auto translated = translate::TranslateSchema(*schema);
    ASSERT_TRUE(translated.ok());
    schema_ = std::make_unique<translate::TranslatedSchema>(
        std::move(translated).value());
  }

  std::unique_ptr<translate::TranslatedSchema> schema_;
  std::vector<AsrDefinition> registry_;
};

TEST_F(AsrTest, RegistersPaperAsr) {
  AsrDefinition def = workload::UniversityAsr();
  ASSERT_TRUE(RegisterAsr(def, schema_.get(), &registry_).ok());
  ASSERT_EQ(registry_.size(), 1u);
  const AsrDefinition& asr = registry_[0];
  // View: asr(X0, X4) <- takes(X0,X1), is_section_of(X1,X2),
  //                      has_sections(X2,X3), has_ta(X3,X4).
  EXPECT_EQ(asr.view.body.size(), 4u);
  EXPECT_EQ(asr.path_vars.size(), 5u);
  EXPECT_EQ(asr.view.head->atom.predicate(), asr.name);

  const datalog::RelationSignature* sig = schema_->catalog.Find(asr.name);
  ASSERT_NE(sig, nullptr);
  EXPECT_EQ(sig->kind, datalog::RelationKind::kAsr);
  EXPECT_EQ(sig->owner, "Student");
  EXPECT_EQ(sig->target, "TA");
  // takes is to-many, so the ASR is not functional forward; has_ta's
  // backward functionality does not survive the to-many hops backward
  // (is_taken_by is to-many), so not functional backward either.
  EXPECT_FALSE(sig->functional_src_to_dst);
  EXPECT_FALSE(sig->functional_dst_to_src);
}

TEST_F(AsrTest, FunctionalityDerivedFromPath) {
  AsrDefinition def;
  def.name = "asr_section_course_sections";
  def.path = {"is_section_of", "has_sections"};
  ASSERT_TRUE(RegisterAsr(def, schema_.get(), &registry_).ok());
  const datalog::RelationSignature* sig =
      schema_->catalog.Find("asr_section_course_sections");
  // is_section_of is to-one but has_sections is to-many: not fwd functional.
  EXPECT_FALSE(sig->functional_src_to_dst);
}

TEST_F(AsrTest, RejectsShortPath) {
  AsrDefinition def;
  def.name = "bad";
  def.path = {"takes"};
  EXPECT_FALSE(RegisterAsr(def, schema_.get(), &registry_).ok());
}

TEST_F(AsrTest, RejectsNonRelationshipElement) {
  AsrDefinition def;
  def.name = "bad";
  def.path = {"takes", "faculty"};
  EXPECT_FALSE(RegisterAsr(def, schema_.get(), &registry_).ok());
}

TEST_F(AsrTest, RejectsNonChainingPath) {
  AsrDefinition def;
  def.name = "bad";
  def.path = {"takes", "has_sections"};  // Section then Course-source: no chain
  auto status = RegisterAsr(def, schema_.get(), &registry_);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("chain"), std::string::npos);
}

TEST_F(AsrTest, RejectsNameCollision) {
  AsrDefinition def;
  def.name = "takes";  // collides with the relationship
  def.path = {"takes", "is_section_of"};
  EXPECT_FALSE(RegisterAsr(def, schema_.get(), &registry_).ok());
}

TEST_F(AsrTest, SubclassChainingAllowed) {
  // assists starts at TA which is a subclass of Student: a path
  // takes → ... ending at TA then assists must chain.
  AsrDefinition def;
  def.name = "asr_ta_course";
  def.path = {"assists", "is_section_of"};
  EXPECT_TRUE(RegisterAsr(def, schema_.get(), &registry_).ok());
}

}  // namespace
}  // namespace sqo::core
