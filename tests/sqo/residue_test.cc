#include "sqo/residue.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace sqo::core {
namespace {

using datalog::Clause;
using datalog::ParseClauseText;
using datalog::RelationKind;
using datalog::RelationSignature;

RelationSignature Sig(const std::string& name,
                      std::vector<std::string> attrs,
                      RelationKind kind = RelationKind::kClass) {
  RelationSignature sig;
  sig.name = name;
  sig.kind = kind;
  sig.attributes = std::move(attrs);
  return sig;
}

Clause Parse(const std::string& text) {
  auto clause = ParseClauseText(text);
  EXPECT_TRUE(clause.ok()) << clause.status().ToString();
  return *clause;
}

TEST(ResidueTest, PaperExample1SingleAtomIc) {
  // IC: Age > 30 <- faculty(Sec, Fac, Age). Residue on faculty:
  // {T3 > 30 <- } — an unconditional invariant (paper §2, Example 1).
  Clause ic = Parse("Age > 30 <- faculty(Sec, Fac, Age).");
  ic.label = "IC";
  auto residues = ComputeResidues(ic, Sig("faculty", {"sec", "fac", "age"}));
  ASSERT_EQ(residues.size(), 1u);
  const Residue& r = residues[0];
  EXPECT_EQ(r.relation, "faculty");
  EXPECT_TRUE(r.remainder.empty());
  ASSERT_TRUE(r.head.has_value());
  EXPECT_EQ(r.head->ToString(), "T3 > 30");
  EXPECT_EQ(r.source, "IC");
}

TEST(ResidueTest, NoResidueForUnmentionedRelation) {
  Clause ic = Parse("Age > 30 <- faculty(S, F, Age).");
  EXPECT_TRUE(ComputeResidues(ic, Sig("student", {"oid", "name"})).empty());
}

TEST(ResidueTest, KeyIcYieldsRemainderResidues) {
  // IC7: X1 = X2 <- faculty(X1, N), faculty(X2, N).
  Clause ic = Parse("X1 = X2 <- faculty(X1, N), faculty(X2, N).");
  auto residues = ComputeResidues(ic, Sig("faculty", {"oid", "name"}));
  // Leaves: match first atom, match second atom (symmetric, may dedup),
  // match both (collapses X1 = X2 and is dropped downstream as trivial;
  // here it survives as "T1 = T1").
  ASSERT_GE(residues.size(), 2u);
  bool with_remainder = false;
  bool both_matched = false;
  for (const Residue& r : residues) {
    if (r.remainder.size() == 1 &&
        r.remainder[0].atom.predicate() == "faculty") {
      with_remainder = true;
      // The remainder shares the name variable with the template.
      EXPECT_EQ(r.remainder[0].atom.args()[1], r.template_atom.args()[1]);
    }
    if (r.remainder.empty()) both_matched = true;
  }
  EXPECT_TRUE(with_remainder);
  EXPECT_TRUE(both_matched);
}

TEST(ResidueTest, ConstantsInstantiateTemplate) {
  // IC3-style: Value > 3000 <- taxes_withheld(O, 10%, Value), faculty(O).
  Clause ic = Parse("Value > 3000 <- taxes_withheld(O, 10%, Value), faculty(O).");
  auto residues = ComputeResidues(
      ic, Sig("taxes_withheld", {"oid", "rate", "value"}, RelationKind::kMethod));
  ASSERT_EQ(residues.size(), 1u);
  const Residue& r = residues[0];
  // The rate position is pinned to the constant 0.10.
  EXPECT_EQ(r.template_atom.args()[1], datalog::Term::Double(0.10));
  ASSERT_EQ(r.remainder.size(), 1u);
  EXPECT_EQ(r.remainder[0].atom.predicate(), "faculty");
}

TEST(ResidueTest, DenialProducesHeadlessResidue) {
  Clause ic = Parse("<- p(X), q(X).");
  auto residues = ComputeResidues(ic, Sig("p", {"oid"}));
  ASSERT_EQ(residues.size(), 1u);
  EXPECT_FALSE(residues[0].head.has_value());
  ASSERT_EQ(residues[0].remainder.size(), 1u);
  EXPECT_EQ(residues[0].remainder[0].atom.predicate(), "q");
  // q's variable is the template's variable.
  EXPECT_EQ(residues[0].remainder[0].atom.args()[0],
            residues[0].template_atom.args()[0]);
}

TEST(ResidueTest, PredicateHeadResidue) {
  // Subclass IC: person(X, N) <- faculty(X, N, S). Residue on faculty has a
  // person head and no remainder — the paper's upcast knowledge.
  Clause ic = Parse("person(X, N) <- faculty(X, N, S).");
  auto residues = ComputeResidues(ic, Sig("faculty", {"oid", "name", "salary"}));
  ASSERT_EQ(residues.size(), 1u);
  EXPECT_TRUE(residues[0].remainder.empty());
  EXPECT_EQ(residues[0].head->atom.predicate(), "person");
  EXPECT_EQ(residues[0].head->atom.args()[0], residues[0].template_atom.args()[0]);
}

TEST(ResidueTest, NegatedHeadRetained) {
  // IC6': not faculty(X, N, A) <- person(X, N, A), A < 30.
  Clause ic = Parse("not faculty(X, N, A) <- person(X, N, A), A < 30.");
  auto residues = ComputeResidues(ic, Sig("person", {"oid", "name", "age"}));
  ASSERT_EQ(residues.size(), 1u);
  EXPECT_FALSE(residues[0].head->positive);
  ASSERT_EQ(residues[0].remainder.size(), 1u);
  EXPECT_TRUE(residues[0].remainder[0].atom.is_comparison());
}

TEST(ResidueTest, ArityMismatchNoResidue) {
  Clause ic = Parse("Age > 30 <- faculty(X, Age).");
  EXPECT_TRUE(ComputeResidues(ic, Sig("faculty", {"oid", "name", "age"})).empty());
}

TEST(ResidueTest, SharedConstantInBodyAtomsSplitsLeaves) {
  // Two body atoms with conflicting constants cannot both match one
  // template: the both-matched leaf is dropped.
  Clause ic = Parse("X = Y <- p(X, 1), p(Y, 2).");
  auto residues = ComputeResidues(ic, Sig("p", {"oid", "tag"}));
  for (const Residue& r : residues) {
    EXPECT_EQ(r.remainder.size(), 1u);  // never both matched
  }
  EXPECT_EQ(residues.size(), 2u);
}

TEST(ResidueTest, CanonicalNamesAreStable) {
  Clause ic = Parse("A > 30 <- faculty(X, A).");
  Clause ic2 = Parse("Zz > 30 <- faculty(Qq, Zz).");
  auto r1 = ComputeResidues(ic, Sig("faculty", {"oid", "age"}));
  auto r2 = ComputeResidues(ic2, Sig("faculty", {"oid", "age"}));
  ASSERT_EQ(r1.size(), 1u);
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r1[0].ToString(), r2[0].ToString());
}

TEST(ResidueTest, ToStringFormat) {
  Clause ic = Parse("Age > 30 <- faculty(X, Age).");
  auto residues = ComputeResidues(ic, Sig("faculty", {"oid", "age"}));
  ASSERT_EQ(residues.size(), 1u);
  EXPECT_EQ(residues[0].ToString(), "faculty(T1, T2): {T2 > 30 <- }");
}

}  // namespace
}  // namespace sqo::core
