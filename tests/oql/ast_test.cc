#include "oql/ast.h"

#include <gtest/gtest.h>

namespace sqo::oql {
namespace {

TEST(ExprTest, LiteralToString) {
  EXPECT_EQ(Expr::Literal(sqo::Value::Int(3)).ToString(), "3");
  EXPECT_EQ(Expr::Literal(sqo::Value::String("a")).ToString(), "\"a\"");
  EXPECT_EQ(Expr::Literal(sqo::Value::Double(0.1)).ToString(), "0.1");
}

TEST(ExprTest, PathToString) {
  PathStep name{"name", std::nullopt};
  EXPECT_EQ(Expr::Path("x", {name}).ToString(), "x.name");
  PathStep call{"taxes_withheld", std::vector<Expr>{Expr::Literal(
                                      sqo::Value::Double(0.1))}};
  EXPECT_EQ(Expr::Path("z", {call}).ToString(), "z.taxes_withheld(0.1)");
  PathStep noargs{"touch", std::vector<Expr>{}};
  EXPECT_EQ(Expr::Path("z", {noargs}).ToString(), "z.touch()");
}

TEST(ExprTest, ConstructorsToString) {
  Expr s;
  s.kind = Expr::Kind::kStruct;
  s.ctor_name = "struct";
  StructField f;
  f.name = "a";
  f.value.push_back(Expr::Ident("x"));
  s.fields.push_back(f);
  EXPECT_EQ(s.ToString(), "struct(a: x)");

  Expr l;
  l.kind = Expr::Kind::kCollection;
  l.ctor_name = "list";
  l.elements.push_back(Expr::Ident("x"));
  l.elements.push_back(Expr::Literal(sqo::Value::Int(1)));
  EXPECT_EQ(l.ToString(), "list(x, 1)");
}

TEST(ExprTest, EqualityDistinguishesKinds) {
  EXPECT_EQ(Expr::Ident("x"), Expr::Ident("x"));
  EXPECT_FALSE(Expr::Ident("x") == Expr::Ident("y"));
  EXPECT_FALSE(Expr::Ident("x") == Expr::Literal(sqo::Value::String("x")));
  PathStep s1{"a", std::nullopt};
  PathStep s2{"a", std::vector<Expr>{}};
  // A bare step and a zero-arg call are different.
  EXPECT_FALSE(Expr::Path("x", {s1}) == Expr::Path("x", {s2}));
}

TEST(PredicateTest, ToStringForms) {
  Predicate cmp = Predicate::Comparison(Expr::Ident("x"), sqo::CmpOp::kLt,
                                        Expr::Literal(sqo::Value::Int(3)));
  EXPECT_EQ(cmp.ToString(), "x < 3");
  Predicate in = Predicate::Membership(Expr::Ident("x"), Expr::Ident("C"), true);
  EXPECT_EQ(in.ToString(), "x in C");
  Predicate not_in =
      Predicate::Membership(Expr::Ident("x"), Expr::Ident("C"), false);
  EXPECT_EQ(not_in.ToString(), "x not in C");
  Predicate ex = Predicate::Exists("y", Expr::Path("x", {{"takes", std::nullopt}}),
                                   {cmp});
  EXPECT_EQ(ex.ToString(), "exists y in x.takes : (x < 3)");
}

TEST(FromEntryTest, ToString) {
  EXPECT_EQ(FromEntry::Range("x", Expr::Ident("Person")).ToString(),
            "x in Person");
  EXPECT_EQ(FromEntry::Range("x", Expr::Ident("Faculty"), false).ToString(),
            "x not in Faculty");
}

TEST(SelectQueryTest, ToStringLayout) {
  SelectQuery q;
  q.distinct = true;
  q.select_list.push_back(Expr::Path("x", {{"name", std::nullopt}}));
  q.from.push_back(FromEntry::Range("x", Expr::Ident("Person")));
  q.where.push_back(Predicate::Comparison(
      Expr::Path("x", {{"age", std::nullopt}}), sqo::CmpOp::kLt,
      Expr::Literal(sqo::Value::Int(30))));
  EXPECT_EQ(q.ToString(),
            "select distinct x.name\nfrom x in Person\nwhere x.age < 30");
}

TEST(SelectQueryTest, EqualityIsStructural) {
  SelectQuery a, b;
  a.select_list.push_back(Expr::Ident("x"));
  b.select_list.push_back(Expr::Ident("x"));
  a.from.push_back(FromEntry::Range("x", Expr::Ident("Person")));
  b.from.push_back(FromEntry::Range("x", Expr::Ident("Person")));
  EXPECT_EQ(a, b);
  b.distinct = true;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace sqo::oql
