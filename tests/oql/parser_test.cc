#include "oql/parser.h"

#include <gtest/gtest.h>

namespace sqo::oql {
namespace {

SelectQuery Parse(const std::string& text) {
  auto q = ParseOql(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return q.ok() ? *q : SelectQuery{};
}

TEST(OqlParserTest, MinimalQuery) {
  SelectQuery q = Parse("select x.name from x in Person");
  ASSERT_EQ(q.select_list.size(), 1u);
  EXPECT_EQ(q.select_list[0].base, "x");
  ASSERT_EQ(q.select_list[0].steps.size(), 1u);
  EXPECT_EQ(q.select_list[0].steps[0].name, "name");
  ASSERT_EQ(q.from.size(), 1u);
  EXPECT_EQ(q.from[0].var, "x");
  EXPECT_TRUE(q.where.empty());
  EXPECT_FALSE(q.distinct);
}

TEST(OqlParserTest, Distinct) {
  EXPECT_TRUE(Parse("select distinct x from x in Person").distinct);
}

TEST(OqlParserTest, PaperExample2) {
  SelectQuery q = Parse(
      "select z.name, w.city\n"
      "from x in Student y in x.takes z in y.is_taught_by w in z.address\n"
      "where x.name = \"john\" and z.taxes_withheld(10%) < 1000");
  EXPECT_EQ(q.select_list.size(), 2u);
  ASSERT_EQ(q.from.size(), 4u);
  EXPECT_EQ(q.from[1].var, "y");
  EXPECT_EQ(q.from[1].domain.front().base, "x");
  EXPECT_EQ(q.from[1].domain.front().steps[0].name, "takes");
  ASSERT_EQ(q.where.size(), 2u);
  EXPECT_EQ(q.where[0].kind, Predicate::Kind::kComparison);
  EXPECT_EQ(q.where[0].rhs.front().literal, sqo::Value::String("john"));
  // Method call with percent literal.
  const Expr& call = q.where[1].lhs.front();
  ASSERT_EQ(call.steps.size(), 1u);
  ASSERT_TRUE(call.steps[0].is_call());
  EXPECT_EQ(call.steps[0].call_args->front().literal, sqo::Value::Double(0.10));
  EXPECT_EQ(q.where[1].rhs.front().literal, sqo::Value::Int(1000));
}

TEST(OqlParserTest, CommaSeparatedFrom) {
  SelectQuery q = Parse("select x from x in A, y in x.r, z in y.s");
  EXPECT_EQ(q.from.size(), 3u);
}

TEST(OqlParserTest, SqlStyleFrom) {
  SelectQuery q = Parse("select p from Person as p");
  ASSERT_EQ(q.from.size(), 1u);
  EXPECT_EQ(q.from[0].var, "p");
  EXPECT_EQ(q.from[0].domain.front().base, "Person");
  SelectQuery q2 = Parse("select p from Person p");
  EXPECT_EQ(q2.from[0].var, "p");
}

TEST(OqlParserTest, NotInFromEntry) {
  SelectQuery q = Parse(
      "select x.name from x in Person, x not in Faculty where x.age < 30");
  ASSERT_EQ(q.from.size(), 2u);
  EXPECT_TRUE(q.from[0].positive);
  EXPECT_FALSE(q.from[1].positive);
  EXPECT_EQ(q.from[1].var, "x");
}

TEST(OqlParserTest, MembershipPredicates) {
  SelectQuery q = Parse(
      "select x from x in Person where x in Faculty and x not in Student");
  ASSERT_EQ(q.where.size(), 2u);
  EXPECT_EQ(q.where[0].kind, Predicate::Kind::kMembership);
  EXPECT_TRUE(q.where[0].positive);
  EXPECT_FALSE(q.where[1].positive);
}

TEST(OqlParserTest, ListConstructor) {
  SelectQuery q = Parse(
      "select list(s.student_id, t.employee_id) from s in Student, t in TA");
  ASSERT_EQ(q.select_list.size(), 1u);
  const Expr& ctor = q.select_list[0];
  EXPECT_EQ(ctor.kind, Expr::Kind::kCollection);
  EXPECT_EQ(ctor.ctor_name, "list");
  EXPECT_EQ(ctor.elements.size(), 2u);
}

TEST(OqlParserTest, StructConstructor) {
  SelectQuery q =
      Parse("select struct(who: x.name, old: x.age) from x in Person");
  const Expr& ctor = q.select_list[0];
  EXPECT_EQ(ctor.kind, Expr::Kind::kStruct);
  ASSERT_EQ(ctor.fields.size(), 2u);
  EXPECT_EQ(ctor.fields[0].name, "who");
  EXPECT_EQ(ctor.fields[1].value.front().steps[0].name, "age");
}

TEST(OqlParserTest, NamedStructConstructor) {
  SelectQuery q = Parse("select Pair(a: x.name, b: 1) from x in Person");
  EXPECT_EQ(q.select_list[0].kind, Expr::Kind::kStruct);
  EXPECT_EQ(q.select_list[0].ctor_name, "Pair");
}

TEST(OqlParserTest, NumericSuffixLiterals) {
  SelectQuery q = Parse("select x from x in E where x.salary > 40K");
  EXPECT_EQ(q.where[0].rhs.front().literal, sqo::Value::Int(40000));
}

TEST(OqlParserTest, ComparisonOperators) {
  SelectQuery q = Parse(
      "select x from x in E where x.a = 1 and x.b != 2 and x.c <= 3 and "
      "x.d >= 4 and x.e < 5 and x.f > 6 and x.g <> 7");
  ASSERT_EQ(q.where.size(), 7u);
  EXPECT_EQ(q.where[0].op, sqo::CmpOp::kEq);
  EXPECT_EQ(q.where[1].op, sqo::CmpOp::kNe);
  EXPECT_EQ(q.where[2].op, sqo::CmpOp::kLe);
  EXPECT_EQ(q.where[3].op, sqo::CmpOp::kGe);
  EXPECT_EQ(q.where[4].op, sqo::CmpOp::kLt);
  EXPECT_EQ(q.where[5].op, sqo::CmpOp::kGt);
  EXPECT_EQ(q.where[6].op, sqo::CmpOp::kNe);
}

TEST(OqlParserTest, RoundTripThroughToString) {
  const char* texts[] = {
      "select x.name from x in Person where x.age < 30",
      "select z.name, w.city from x in Student, y in x.takes, z in "
      "y.is_taught_by, w in z.address where x.name = \"john\"",
      "select list(s.student_id, t.employee_id) from s in Student, t in TA "
      "where s.name = t.name",
      "select x.name from x in Person, x not in Faculty where x.age < 30",
  };
  for (const char* text : texts) {
    SelectQuery q1 = Parse(text);
    SelectQuery q2 = Parse(q1.ToString());
    EXPECT_EQ(q1, q2) << text << "\n--- printed ---\n" << q1.ToString();
  }
}

TEST(OqlParserTest, ExistsSinglePredicate) {
  SelectQuery q = Parse(
      "select x.name from x in Student "
      "where exists y in x.takes : y.number = \"1\"");
  ASSERT_EQ(q.where.size(), 1u);
  const Predicate& p = q.where[0];
  EXPECT_EQ(p.kind, Predicate::Kind::kExists);
  EXPECT_EQ(p.var, "y");
  EXPECT_EQ(p.collection.front().base, "x");
  ASSERT_EQ(p.inner.size(), 1u);
  EXPECT_EQ(p.inner[0].kind, Predicate::Kind::kComparison);
}

TEST(OqlParserTest, ExistsParenthesizedConjunction) {
  SelectQuery q = Parse(
      "select x from x in Student "
      "where exists y in x.takes : (y.number = \"1\" and y.number != \"2\") "
      "and x.age < 30");
  ASSERT_EQ(q.where.size(), 2u);
  EXPECT_EQ(q.where[0].kind, Predicate::Kind::kExists);
  EXPECT_EQ(q.where[0].inner.size(), 2u);
  EXPECT_EQ(q.where[1].kind, Predicate::Kind::kComparison);
}

TEST(OqlParserTest, NestedExists) {
  SelectQuery q = Parse(
      "select x from x in Student where exists y in x.takes : "
      "exists z in y.is_taken_by : z.age < 20");
  ASSERT_EQ(q.where.size(), 1u);
  ASSERT_EQ(q.where[0].inner.size(), 1u);
  EXPECT_EQ(q.where[0].inner[0].kind, Predicate::Kind::kExists);
}

TEST(OqlParserTest, ExistsRoundTrip) {
  SelectQuery q1 = Parse(
      "select x.name from x in Student "
      "where exists y in x.takes : (y.number = \"1\" and y.number != \"2\")");
  SelectQuery q2 = Parse(q1.ToString());
  EXPECT_EQ(q1, q2) << q1.ToString();
}

TEST(OqlParserTest, ExistsErrors) {
  EXPECT_FALSE(ParseOql("select x from x in S where exists : x.a = 1").ok());
  EXPECT_FALSE(
      ParseOql("select x from x in S where exists y in x.r x.a = 1").ok());
  EXPECT_FALSE(
      ParseOql("select x from x in S where exists y x.r : x.a = 1").ok());
}

TEST(OqlParserTest, Errors) {
  EXPECT_FALSE(ParseOql("from x in Person").ok());
  EXPECT_FALSE(ParseOql("select x").ok());
  EXPECT_FALSE(ParseOql("select x from x in Person where").ok());
  EXPECT_FALSE(ParseOql("select x from x in Person trailing").ok());
  EXPECT_FALSE(ParseOql("select x from x in Person where x.a <").ok());
  EXPECT_FALSE(ParseOql("select x from 3 in Person").ok());
}

TEST(OqlParserTest, KeywordsCaseInsensitive) {
  SelectQuery q = Parse("SELECT x FROM x IN Person WHERE x.age < 30");
  EXPECT_EQ(q.from.size(), 1u);
  EXPECT_EQ(q.where.size(), 1u);
}

}  // namespace
}  // namespace sqo::oql
