#include "storage/wal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/fileio.h"
#include "storage/format.h"
#include "storage_test_util.h"

namespace sqo::storage {
namespace {

engine::Mutation MakeCreate(uint64_t oid, const std::string& rel) {
  engine::Mutation m;
  m.kind = engine::Mutation::Kind::kCreate;
  m.oid = sqo::Oid(oid);
  m.relation = rel;
  m.row = {sqo::Value::FromOid(sqo::Oid(oid)), sqo::Value::String("x"),
           sqo::Value::Int(42)};
  return m;
}

engine::Mutation MakePair(const std::string& rel, uint64_t src, uint64_t dst) {
  engine::Mutation m;
  m.kind = engine::Mutation::Kind::kInsertPair;
  m.relation = rel;
  m.src = sqo::Oid(src);
  m.dst = sqo::Oid(dst);
  return m;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DeactivateAll();
    dir_ = storage_test::FreshDir("wal");
    ASSERT_TRUE(fs::EnsureDir(dir_).ok());
    path_ = dir_ + "/wal.log";
  }
  void TearDown() override { failpoint::DeactivateAll(); }

  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, RoundTrip) {
  WalHeader header;
  header.schema_hash = {0x1111, 0x2222};
  header.base_lsn = 7;
  auto writer = WalWriter::Create(path_, header);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer->Append(8, {MakeCreate(1, "person")}, true).ok());
  ASSERT_TRUE(
      writer->Append(9, {MakePair("takes", 1, 2), MakePair("takes", 1, 3)},
                     true)
          .ok());

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->header.schema_hash.lo, 0x1111u);
  EXPECT_EQ(read->header.schema_hash.hi, 0x2222u);
  EXPECT_EQ(read->header.base_lsn, 7u);
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[0].lsn, 8u);
  ASSERT_EQ(read->records[0].batch.size(), 1u);
  EXPECT_EQ(read->records[0].batch[0].kind, engine::Mutation::Kind::kCreate);
  EXPECT_EQ(read->records[0].batch[0].relation, "person");
  ASSERT_EQ(read->records[0].batch[0].row.size(), 3u);
  EXPECT_EQ(read->records[0].batch[0].row[2].AsInt(), 42);
  EXPECT_EQ(read->records[1].lsn, 9u);
  EXPECT_EQ(read->records[1].batch.size(), 2u);
  EXPECT_EQ(read->last_lsn, 9u);
  EXPECT_FALSE(read->stopped_early);
  EXPECT_FALSE(read->corrupt);
  EXPECT_EQ(read->valid_bytes, read->file_bytes);
}

TEST_F(WalTest, MissingFileIsNotFound) {
  auto read = ReadWal(path_);
  EXPECT_EQ(read.status().code(), sqo::StatusCode::kNotFound);
}

TEST_F(WalTest, TornTailIsTruncatedWithoutCorruptionFlag) {
  auto writer = WalWriter::Create(path_, WalHeader{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, {MakeCreate(1, "a")}, true).ok());
  ASSERT_TRUE(writer->Append(2, {MakeCreate(2, "b")}, true).ok());
  auto full = fs::ReadFile(path_);
  ASSERT_TRUE(full.ok());
  // Chop mid-way through the last record: a crash during append.
  ASSERT_TRUE(fs::TruncateFile(path_, full->size() - 3).ok());

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_TRUE(read->stopped_early);
  EXPECT_FALSE(read->corrupt);
  EXPECT_EQ(read->last_lsn, 1u);
  EXPECT_LT(read->valid_bytes, read->file_bytes);
}

TEST_F(WalTest, BitFlipIsDetectedAndStopsScan) {
  auto writer = WalWriter::Create(path_, WalHeader{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, {MakeCreate(1, "a")}, true).ok());
  const uint64_t first_end = writer->size();
  ASSERT_TRUE(writer->Append(2, {MakeCreate(2, "b")}, true).ok());

  auto data = fs::ReadFile(path_);
  ASSERT_TRUE(data.ok());
  std::string mutated = *data;
  mutated[first_end + kWalRecordHeaderSize + 4] ^= 0x40;  // record 2 payload
  ASSERT_TRUE(fs::WriteFileAtomic(path_, mutated).ok());

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_TRUE(read->stopped_early);
  EXPECT_TRUE(read->corrupt);
  EXPECT_EQ(read->valid_bytes, first_end);
}

TEST_F(WalTest, StaleLsnIsCorruption) {
  auto writer = WalWriter::Create(path_, WalHeader{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(5, {MakeCreate(1, "a")}, true).ok());
  ASSERT_TRUE(writer->Append(5, {MakeCreate(2, "b")}, true).ok());  // duplicate

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_TRUE(read->corrupt);
  EXPECT_NE(read->stop_reason.find("stale LSN"), std::string::npos);
}

TEST_F(WalTest, HeaderCorruptionIsAnError) {
  auto writer = WalWriter::Create(path_, WalHeader{});
  ASSERT_TRUE(writer.ok());
  auto data = fs::ReadFile(path_);
  ASSERT_TRUE(data.ok());

  std::string bad_magic = *data;
  bad_magic[0] ^= 0xFF;
  ASSERT_TRUE(fs::WriteFileAtomic(path_, bad_magic).ok());
  EXPECT_EQ(ReadWal(path_).status().code(), sqo::StatusCode::kDataCorruption);

  std::string bad_crc = *data;
  bad_crc[10] ^= 0x01;  // inside schema hash, covered by the header CRC
  ASSERT_TRUE(fs::WriteFileAtomic(path_, bad_crc).ok());
  EXPECT_EQ(ReadWal(path_).status().code(), sqo::StatusCode::kDataCorruption);

  ASSERT_TRUE(fs::WriteFileAtomic(path_, data->substr(0, 10)).ok());
  EXPECT_EQ(ReadWal(path_).status().code(), sqo::StatusCode::kDataCorruption);
}

TEST_F(WalTest, AppendFailpointFailsWithoutWriting) {
  auto writer = WalWriter::Create(path_, WalHeader{});
  ASSERT_TRUE(writer.ok());
  const uint64_t size_before = writer->size();
  failpoint::Action action;
  action.status = sqo::InternalError("injected wal failure");
  failpoint::Activate("storage.wal_append", action);
  EXPECT_FALSE(writer->Append(1, {MakeCreate(1, "a")}, true).ok());
  failpoint::DeactivateAll();
  EXPECT_EQ(writer->size(), size_before);
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
}

}  // namespace
}  // namespace sqo::storage
