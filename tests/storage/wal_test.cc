#include "storage/wal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/fileio.h"
#include "storage/format.h"
#include "storage_test_util.h"

namespace sqo::storage {
namespace {

engine::Mutation MakeCreate(uint64_t oid, const std::string& rel) {
  engine::Mutation m;
  m.kind = engine::Mutation::Kind::kCreate;
  m.oid = sqo::Oid(oid);
  m.relation = rel;
  m.row = {sqo::Value::FromOid(sqo::Oid(oid)), sqo::Value::String("x"),
           sqo::Value::Int(42)};
  return m;
}

engine::Mutation MakePair(const std::string& rel, uint64_t src, uint64_t dst) {
  engine::Mutation m;
  m.kind = engine::Mutation::Kind::kInsertPair;
  m.relation = rel;
  m.src = sqo::Oid(src);
  m.dst = sqo::Oid(dst);
  return m;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DeactivateAll();
    dir_ = storage_test::FreshDir("wal");
    ASSERT_TRUE(fs::EnsureDir(dir_).ok());
    path_ = dir_ + "/wal.log";
  }
  void TearDown() override { failpoint::DeactivateAll(); }

  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, RoundTrip) {
  WalHeader header;
  header.schema_hash = {0x1111, 0x2222};
  header.base_lsn = 7;
  auto writer = WalWriter::Create(path_, header);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer->Append(8, {MakeCreate(1, "person")}, true).ok());
  ASSERT_TRUE(
      writer->Append(9, {MakePair("takes", 1, 2), MakePair("takes", 1, 3)},
                     true)
          .ok());

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->header.schema_hash.lo, 0x1111u);
  EXPECT_EQ(read->header.schema_hash.hi, 0x2222u);
  EXPECT_EQ(read->header.base_lsn, 7u);
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[0].lsn, 8u);
  ASSERT_EQ(read->records[0].batch.size(), 1u);
  EXPECT_EQ(read->records[0].batch[0].kind, engine::Mutation::Kind::kCreate);
  EXPECT_EQ(read->records[0].batch[0].relation, "person");
  ASSERT_EQ(read->records[0].batch[0].row.size(), 3u);
  EXPECT_EQ(read->records[0].batch[0].row[2].AsInt(), 42);
  EXPECT_EQ(read->records[1].lsn, 9u);
  EXPECT_EQ(read->records[1].batch.size(), 2u);
  EXPECT_EQ(read->last_lsn, 9u);
  EXPECT_FALSE(read->stopped_early);
  EXPECT_FALSE(read->corrupt);
  EXPECT_EQ(read->valid_bytes, read->file_bytes);
}

TEST_F(WalTest, MissingFileIsNotFound) {
  auto read = ReadWal(path_);
  EXPECT_EQ(read.status().code(), sqo::StatusCode::kNotFound);
}

TEST_F(WalTest, TornTailIsTruncatedWithoutCorruptionFlag) {
  auto writer = WalWriter::Create(path_, WalHeader{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, {MakeCreate(1, "a")}, true).ok());
  ASSERT_TRUE(writer->Append(2, {MakeCreate(2, "b")}, true).ok());
  auto full = fs::ReadFile(path_);
  ASSERT_TRUE(full.ok());
  // Chop mid-way through the last record: a crash during append.
  ASSERT_TRUE(fs::TruncateFile(path_, full->size() - 3).ok());

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_TRUE(read->stopped_early);
  EXPECT_FALSE(read->corrupt);
  EXPECT_EQ(read->last_lsn, 1u);
  EXPECT_LT(read->valid_bytes, read->file_bytes);
}

TEST_F(WalTest, BitFlipIsDetectedAndStopsScan) {
  auto writer = WalWriter::Create(path_, WalHeader{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, {MakeCreate(1, "a")}, true).ok());
  const uint64_t first_end = writer->size();
  ASSERT_TRUE(writer->Append(2, {MakeCreate(2, "b")}, true).ok());

  auto data = fs::ReadFile(path_);
  ASSERT_TRUE(data.ok());
  std::string mutated = *data;
  mutated[first_end + kWalRecordHeaderSize + 4] ^= 0x40;  // record 2 payload
  ASSERT_TRUE(fs::WriteFileAtomic(path_, mutated).ok());

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_TRUE(read->stopped_early);
  EXPECT_TRUE(read->corrupt);
  EXPECT_EQ(read->valid_bytes, first_end);
}

TEST_F(WalTest, StaleLsnIsCorruption) {
  auto writer = WalWriter::Create(path_, WalHeader{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(5, {MakeCreate(1, "a")}, true).ok());
  ASSERT_TRUE(writer->Append(5, {MakeCreate(2, "b")}, true).ok());  // duplicate

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_TRUE(read->corrupt);
  EXPECT_NE(read->stop_reason.find("stale LSN"), std::string::npos);
}

TEST_F(WalTest, HeaderCorruptionIsAnError) {
  auto writer = WalWriter::Create(path_, WalHeader{});
  ASSERT_TRUE(writer.ok());
  auto data = fs::ReadFile(path_);
  ASSERT_TRUE(data.ok());

  std::string bad_magic = *data;
  bad_magic[0] ^= 0xFF;
  ASSERT_TRUE(fs::WriteFileAtomic(path_, bad_magic).ok());
  EXPECT_EQ(ReadWal(path_).status().code(), sqo::StatusCode::kDataCorruption);

  std::string bad_crc = *data;
  bad_crc[10] ^= 0x01;  // inside schema hash, covered by the header CRC
  ASSERT_TRUE(fs::WriteFileAtomic(path_, bad_crc).ok());
  EXPECT_EQ(ReadWal(path_).status().code(), sqo::StatusCode::kDataCorruption);

  ASSERT_TRUE(fs::WriteFileAtomic(path_, data->substr(0, 10)).ok());
  EXPECT_EQ(ReadWal(path_).status().code(), sqo::StatusCode::kDataCorruption);
}

TEST_F(WalTest, AppendFailpointFailsWithoutWriting) {
  auto writer = WalWriter::Create(path_, WalHeader{});
  ASSERT_TRUE(writer.ok());
  const uint64_t size_before = writer->size();
  failpoint::Action action;
  action.status = sqo::InternalError("injected wal failure");
  failpoint::Activate("storage.wal_append", action);
  EXPECT_FALSE(writer->Append(1, {MakeCreate(1, "a")}, true).ok());
  failpoint::DeactivateAll();
  EXPECT_EQ(writer->size(), size_before);
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
}

TEST_F(WalTest, SegmentNamesRoundTrip) {
  EXPECT_EQ(WalSegmentFileName(42), "wal-000042.log");
  EXPECT_EQ(WalSegmentFileName(1), "wal-000001.log");
  EXPECT_EQ(ParseWalSegmentSeq("wal-000042.log"), 42u);
  EXPECT_EQ(ParseWalSegmentSeq("wal-123456.log"), 123456u);
  EXPECT_FALSE(ParseWalSegmentSeq("wal.log").has_value());
  EXPECT_FALSE(ParseWalSegmentSeq("wal-xyz.log").has_value());
  EXPECT_FALSE(ParseWalSegmentSeq("snapshot-000001.sqo").has_value());
  EXPECT_FALSE(ParseWalSegmentSeq("wal-000042.log.tmp.77").has_value());
}

class WalChainTest : public WalTest {
 protected:
  std::string SegmentPath(uint64_t seq) const {
    return dir_ + "/" + WalSegmentFileName(seq);
  }

  /// Creates segment `seq` with `base_lsn` and one record per LSN in
  /// `lsns` (each a single-mutation batch).
  void MakeSegment(uint64_t seq, uint64_t base_lsn,
                   const std::vector<uint64_t>& lsns) {
    WalHeader header;
    header.base_lsn = base_lsn;
    auto writer = WalWriter::Create(SegmentPath(seq), header);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (uint64_t lsn : lsns) {
      ASSERT_TRUE(writer->Append(lsn, {MakeCreate(lsn, "person")}, true).ok());
    }
  }

  std::vector<uint64_t> ChainLsns(const WalChainResult& chain) const {
    std::vector<uint64_t> lsns;
    for (const WalRecord& record : chain.records) lsns.push_back(record.lsn);
    return lsns;
  }
};

TEST_F(WalChainTest, EmptyDirHasNoChain) {
  auto chain = ReadWalChain(*fs::Env::Default(), dir_);
  EXPECT_EQ(chain.status().code(), sqo::StatusCode::kNotFound);
}

TEST_F(WalChainTest, ListSortsBySeqAndSkipsForeignFiles) {
  MakeSegment(3, 4, {5});
  MakeSegment(1, 0, {1, 2});
  MakeSegment(2, 2, {3, 4});
  ASSERT_TRUE(fs::WriteFileAtomic(dir_ + "/snapshot-000001.sqo", "x").ok());
  ASSERT_TRUE(fs::WriteFileAtomic(dir_ + "/notes.txt", "x").ok());

  auto segments = ListWalSegments(*fs::Env::Default(), dir_);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 3u);
  EXPECT_EQ((*segments)[0].seq, 1u);
  EXPECT_EQ((*segments)[1].seq, 2u);
  EXPECT_EQ((*segments)[2].seq, 3u);
}

TEST_F(WalChainTest, ContinuousChainReplaysAcrossSegments) {
  MakeSegment(1, 0, {1, 2});
  MakeSegment(2, 2, {3, 4, 5});
  MakeSegment(3, 5, {6});

  auto chain = ReadWalChain(*fs::Env::Default(), dir_);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_EQ(chain->segments.size(), 3u);
  EXPECT_TRUE(chain->rejected_paths.empty());
  EXPECT_EQ(ChainLsns(*chain), (std::vector<uint64_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(chain->last_lsn, 6u);
  EXPECT_EQ(chain->max_seq, 3u);
  EXPECT_FALSE(chain->stopped_early);
  EXPECT_FALSE(chain->corrupt);
}

TEST_F(WalChainTest, EmptyTailSegmentIsPartOfTheChain) {
  // The normal post-rotation shape: the newest segment holds only a header.
  MakeSegment(1, 0, {1, 2});
  MakeSegment(2, 2, {});

  auto chain = ReadWalChain(*fs::Env::Default(), dir_);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->segments.size(), 2u);
  EXPECT_EQ(chain->last_lsn, 2u);
  EXPECT_FALSE(chain->stopped_early);
}

TEST_F(WalChainTest, ContinuityBreakRejectsTheSuffix) {
  MakeSegment(1, 0, {1, 2});
  MakeSegment(2, 5, {6});  // base 5 != last trusted LSN 2: a hole
  MakeSegment(3, 6, {7});

  auto chain = ReadWalChain(*fs::Env::Default(), dir_);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->segments.size(), 1u);
  EXPECT_EQ(chain->segments[0].seq, 1u);
  ASSERT_EQ(chain->rejected_paths.size(), 2u);
  EXPECT_EQ(chain->rejected_paths[0], SegmentPath(2));
  EXPECT_EQ(chain->rejected_paths[1], SegmentPath(3));
  EXPECT_EQ(ChainLsns(*chain), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(chain->last_lsn, 2u);
  EXPECT_TRUE(chain->stopped_early);
  EXPECT_TRUE(chain->corrupt);
  EXPECT_NE(chain->stop_reason.find("continuity"), std::string::npos);
  EXPECT_EQ(chain->max_seq, 3u);  // a new segment must still outrank seq 3
}

TEST_F(WalChainTest, SegmentAfterTornSegmentIsUntrustedEvenIfContinuous) {
  // Tear segment 1 mid-record so its trusted prefix ends at LSN 1, then
  // give segment 2 base 1 — continuity *looks* fine, but its records would
  // sit after a discarded write, so trusting them reorders history.
  MakeSegment(1, 0, {1, 2});
  auto full = fs::ReadFile(SegmentPath(1));
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(fs::TruncateFile(SegmentPath(1), full->size() - 3).ok());
  MakeSegment(2, 1, {2, 3});

  auto chain = ReadWalChain(*fs::Env::Default(), dir_);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->segments.size(), 1u);
  EXPECT_EQ(ChainLsns(*chain), (std::vector<uint64_t>{1}));
  EXPECT_EQ(chain->last_lsn, 1u);
  ASSERT_EQ(chain->rejected_paths.size(), 1u);
  EXPECT_EQ(chain->rejected_paths[0], SegmentPath(2));
  EXPECT_TRUE(chain->stopped_early);
  // A clean torn tail at the end of the chain is benign; a torn tail with
  // segments after it is not.
  EXPECT_TRUE(chain->corrupt);
}

TEST_F(WalChainTest, TornTailOnTheLastSegmentIsBenign) {
  MakeSegment(1, 0, {1, 2});
  MakeSegment(2, 2, {3, 4});
  auto full = fs::ReadFile(SegmentPath(2));
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(fs::TruncateFile(SegmentPath(2), full->size() - 3).ok());

  auto chain = ReadWalChain(*fs::Env::Default(), dir_);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(ChainLsns(*chain), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_TRUE(chain->stopped_early);
  EXPECT_FALSE(chain->corrupt);  // crash mid-append, not corruption
  EXPECT_TRUE(chain->rejected_paths.empty());
}

TEST_F(WalChainTest, MidChainBadHeaderStopsTheChain) {
  MakeSegment(1, 0, {1, 2});
  MakeSegment(2, 2, {3});
  auto data = fs::ReadFile(SegmentPath(2));
  ASSERT_TRUE(data.ok());
  std::string mutated = *data;
  mutated[0] ^= 0xFF;  // break the magic
  ASSERT_TRUE(fs::WriteFileAtomic(SegmentPath(2), mutated).ok());

  auto chain = ReadWalChain(*fs::Env::Default(), dir_);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->segments.size(), 1u);
  EXPECT_EQ(ChainLsns(*chain), (std::vector<uint64_t>{1, 2}));
  ASSERT_EQ(chain->rejected_paths.size(), 1u);
  EXPECT_TRUE(chain->corrupt);
}

TEST_F(WalChainTest, BadHeaderOnTheFirstSegmentFailsTheScan) {
  MakeSegment(1, 0, {1});
  auto data = fs::ReadFile(SegmentPath(1));
  ASSERT_TRUE(data.ok());
  std::string mutated = *data;
  mutated[0] ^= 0xFF;
  ASSERT_TRUE(fs::WriteFileAtomic(SegmentPath(1), mutated).ok());

  auto chain = ReadWalChain(*fs::Env::Default(), dir_);
  EXPECT_EQ(chain.status().code(), sqo::StatusCode::kDataCorruption);
}

}  // namespace
}  // namespace sqo::storage
