#ifndef SQO_TESTS_STORAGE_STORAGE_TEST_UTIL_H_
#define SQO_TESTS_STORAGE_STORAGE_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/fileio.h"
#include "engine/database.h"
#include "engine/object_store.h"
#include "sqo/pipeline.h"
#include "workload/university.h"

namespace sqo::storage_test {

/// A per-test scratch directory under the gtest temp root, wiped of any
/// leftovers from a previous run. The current test's name is folded into
/// the path so tests sharing a tag stay isolated under `ctest -j`.
inline std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "sqo_storage_" + tag;
  if (const ::testing::TestInfo* info =
          ::testing::UnitTest::GetInstance()->current_test_info();
      info != nullptr) {
    dir += std::string("_") + info->name();
    std::replace(dir.begin(), dir.end(), '/', '_');
  }
  if (sqo::Result<std::vector<std::string>> names = fs::ListDir(dir);
      names.ok()) {
    for (const std::string& name : *names) {
      const sqo::Status removed = fs::RemoveFile(dir + "/" + name);
      (void)removed;
    }
  }
  return dir;
}

/// Process-wide university pipeline (compiling it per test is wasteful and
/// its schema must outlive every database built on it).
inline const core::Pipeline& UniversityPipeline() {
  static const core::Pipeline* pipeline = [] {
    auto result = workload::MakeUniversityPipeline();
    if (!result.ok()) {
      ADD_FAILURE() << result.status().ToString();
      std::abort();
    }
    return new core::Pipeline(std::move(result).value());
  }();
  return *pipeline;
}

/// Small deterministic config — tests reopen databases many times.
inline workload::GeneratorConfig SmallConfig() {
  workload::GeneratorConfig config;
  config.n_plain_persons = 4;
  config.n_students = 8;
  config.n_faculty = 3;
  config.n_courses = 2;
  config.sections_per_course = 2;
  config.takes_per_student = 2;
  return config;
}

/// A populated university database (methods, indexes, data, ASR).
inline std::unique_ptr<engine::Database> MakePopulatedDb() {
  auto db = std::make_unique<engine::Database>(&UniversityPipeline().schema());
  const sqo::Status status =
      workload::PopulateUniversity(SmallConfig(), UniversityPipeline(),
                                   db.get());
  EXPECT_TRUE(status.ok()) << status.ToString();
  return db;
}

/// An empty database ready to recover persisted state (methods + indexes
/// registered, no data).
inline std::unique_ptr<engine::Database> MakeEmptyDb() {
  auto db = std::make_unique<engine::Database>(&UniversityPipeline().schema());
  const sqo::Status status = workload::SetupUniversityRuntime(db.get());
  EXPECT_TRUE(status.ok()) << status.ToString();
  return db;
}

/// Canonical textual signature of a store's logical contents: every object
/// row plus every non-empty relation's sorted pair set plus the OID
/// allocator. Two stores with equal signatures answer every query alike.
/// (Empty relations are skipped: recovery materializes a relation entry
/// only when it has pairs, which is invisible to queries.)
inline std::string StateSignature(const engine::ObjectStore& store) {
  std::string out;
  for (const auto& [oid, record] : store.objects()) {
    out += std::to_string(oid) + "|" + record.exact_relation;
    for (const sqo::Value& v : record.row) out += "|" + v.ToString();
    out += "\n";
  }
  for (const std::string& rel : store.RelationNames()) {
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    // PairsRaw: a signature is a verbatim capture — reading it must not
    // heal a stale ASR (Pairs() would, and would change what we compare).
    for (const auto& [src, dst] : store.PairsRaw(rel)) {
      pairs.emplace_back(src.raw(), dst.raw());
    }
    if (pairs.empty()) continue;
    std::sort(pairs.begin(), pairs.end());
    out += rel;
    for (const auto& [src, dst] : pairs) {
      out += " (" + std::to_string(src) + "," + std::to_string(dst) + ")";
    }
    out += "\n";
  }
  out += "next_oid=" + std::to_string(store.next_oid());
  return out;
}

/// One scripted store operation. Ops resolve OIDs through extents at call
/// time, so the same script drives both the durable database and the
/// in-memory oracle, as long as both saw the same op prefix.
using Op = std::function<sqo::Status(engine::Database*)>;

/// Deterministic mixed-mutation script (creates, attribute updates,
/// relates/unrelates, deletes) seeded by `seed`.
inline std::vector<Op> BuildOpScript(uint64_t seed, size_t n) {
  std::vector<Op> ops;
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < n; ++i) {
    switch (rng() % 6) {
      case 0:
        ops.push_back([i](engine::Database* db) {
          return db->store()
              .CreateObject("Person",
                            {{"name", Value::String("op_p" + std::to_string(i))},
                             {"age", Value::Int(20 + static_cast<int>(i % 50))}})
              .status();
        });
        break;
      case 1:
        ops.push_back([i](engine::Database* db) {
          return db->store()
              .CreateObject(
                  "Student",
                  {{"name", Value::String("op_s" + std::to_string(i))},
                   {"age", Value::Int(18 + static_cast<int>(i % 10))},
                   {"student_id", Value::String("OPS" + std::to_string(i))}})
              .status();
        });
        break;
      case 2: {
        const uint64_t pick = rng();
        ops.push_back([i, pick](engine::Database* db) {
          const auto& persons = db->store().Extent("person");
          if (persons.empty()) return sqo::Status::Ok();
          return db->store().UpdateAttribute(
              persons[pick % persons.size()], "age",
              Value::Int(21 + static_cast<int>(i % 60)));
        });
        break;
      }
      case 3: {
        const uint64_t s = rng(), t = rng();
        ops.push_back([s, t](engine::Database* db) {
          const auto& students = db->store().Extent("student");
          const auto& sections = db->store().Extent("section");
          if (students.empty() || sections.empty()) return sqo::Status::Ok();
          return db->store().Relate("takes", students[s % students.size()],
                                    sections[t % sections.size()]);
        });
        break;
      }
      case 4: {
        const uint64_t pick = rng();
        ops.push_back([pick](engine::Database* db) {
          const auto& takes = db->store().Pairs("takes");
          if (takes.empty()) return sqo::Status::Ok();
          const auto [src, dst] = takes[pick % takes.size()];
          return db->store().Unrelate("takes", src, dst);
        });
        break;
      }
      default: {
        const uint64_t pick = rng();
        ops.push_back([pick](engine::Database* db) {
          // Delete a plain person (students/TAs keep relationship shapes
          // simpler to reason about — deletes still drop pairs via extents).
          const auto& persons = db->store().Extent("person");
          if (persons.empty()) return sqo::Status::Ok();
          return db->store().DeleteObject(persons[pick % persons.size()]);
        });
        break;
      }
    }
  }
  return ops;
}

}  // namespace sqo::storage_test

#endif  // SQO_TESTS_STORAGE_STORAGE_TEST_UTIL_H_
