#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <string>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/fileio.h"
#include "storage/catalog.h"
#include "storage_test_util.h"

namespace sqo::storage {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DeactivateAll();
    dir_ = storage_test::FreshDir("snapshot");
    ASSERT_TRUE(fs::EnsureDir(dir_).ok());
    path_ = dir_ + "/snapshot-000001.sqo";
  }
  void TearDown() override { failpoint::DeactivateAll(); }

  std::string dir_;
  std::string path_;
};

TEST_F(SnapshotTest, RoundTripRestoresEveryObjectAndPair) {
  auto db = storage_test::MakePopulatedDb();
  const sqo::Fingerprint128 hash =
      SchemaFingerprint(storage_test::UniversityPipeline().schema());
  ASSERT_TRUE(
      WriteSnapshot(path_, db->store(), hash, 17, "{\"k\":1}").ok());

  auto contents = ReadSnapshot(path_);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents->schema_hash, hash);
  EXPECT_EQ(contents->last_lsn, 17u);
  EXPECT_EQ(contents->next_oid, db->store().next_oid());
  EXPECT_EQ(contents->objects.size(), db->store().objects().size());
  EXPECT_EQ(contents->catalog_json, "{\"k\":1}");

  // Applying the decoded mutations to an empty store reproduces the state.
  auto restored = storage_test::MakeEmptyDb();
  ASSERT_TRUE(restored->store().ApplyMutations(contents->objects).ok());
  ASSERT_TRUE(restored->store().ApplyMutations(contents->pairs).ok());
  restored->store().RestoreNextOid(contents->next_oid);
  EXPECT_EQ(storage_test::StateSignature(restored->store()),
            storage_test::StateSignature(db->store()));
}

TEST_F(SnapshotTest, IndexSectionRoundTripsIndexesAndAsrStates) {
  auto db = storage_test::MakePopulatedDb();
  // Build the lazy secondary index on person.age (extent 19 >= 16) and
  // mark the workload ASR stale, so both halves of the index section are
  // non-trivial.
  bool built = false;
  db->store().LazyIndexLookup("person", 2, sqo::Value::Int(21), 16, &built);
  ASSERT_TRUE(built);
  ASSERT_FALSE(db->store().DumpSecondaryIndexes().empty());
  ASSERT_FALSE(db->store().AsrStates().empty());
  const auto& takes = db->store().Pairs("takes");
  ASSERT_FALSE(takes.empty());
  ASSERT_TRUE(
      db->store().Unrelate("takes", takes[0].first, takes[0].second).ok());

  const sqo::Fingerprint128 hash =
      SchemaFingerprint(storage_test::UniversityPipeline().schema());
  ASSERT_TRUE(WriteSnapshot(path_, db->store(), hash, 3, "{}").ok());

  auto contents = ReadSnapshot(path_);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  ASSERT_EQ(contents->indexes.size(),
            db->store().DumpSecondaryIndexes().size());
  EXPECT_EQ(contents->indexes[0].relation, "person");
  EXPECT_EQ(contents->indexes[0].pos, 2u);
  EXPECT_FALSE(contents->indexes[0].entries.empty());
  ASSERT_EQ(contents->asrs.size(), db->store().AsrStates().size());
  bool any_stale = false;
  for (const auto& asr : contents->asrs) {
    EXPECT_FALSE(asr.name.empty());
    EXPECT_FALSE(asr.path.empty());
    any_stale |= asr.stale;
  }
  EXPECT_TRUE(any_stale);

  // Restoring the dumps reinstalls a servable index: the next lookup is a
  // probe, not a build.
  auto restored = storage_test::MakeEmptyDb();
  ASSERT_TRUE(restored->store().ApplyMutations(contents->objects).ok());
  ASSERT_TRUE(restored->store().ApplyMutations(contents->pairs).ok());
  restored->store().RestoreNextOid(contents->next_oid);
  for (auto& dump : contents->indexes) {
    restored->store().RestoreSecondaryIndex(std::move(dump));
  }
  for (auto& asr : contents->asrs) {
    restored->store().RestoreAsrState(std::move(asr));
  }
  const auto* original =
      db->store().LazyIndexLookup("person", 2, sqo::Value::Int(21), 16, &built);
  const auto* probed = restored->store().LazyIndexLookup(
      "person", 2, sqo::Value::Int(21), 16, &built);
  ASSERT_TRUE(built);
  if (original == nullptr) {
    EXPECT_EQ(probed, nullptr);
  } else {
    ASSERT_NE(probed, nullptr);
    EXPECT_EQ(*probed, *original);
  }
}

TEST_F(SnapshotTest, IndexSectionBitFlipIsCorruption) {
  auto db = storage_test::MakePopulatedDb();
  bool built = false;
  db->store().LazyIndexLookup("person", 2, sqo::Value::Int(21), 16, &built);
  ASSERT_TRUE(built);
  const sqo::Fingerprint128 hash =
      SchemaFingerprint(storage_test::UniversityPipeline().schema());
  ASSERT_TRUE(WriteSnapshot(path_, db->store(), hash, 3, "{}").ok());

  auto bytes = fs::ReadFile(path_);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = *bytes;
  mutated.back() ^= 0x10;  // the index section is the file's last section
  ASSERT_TRUE(fs::WriteFileAtomic(path_, mutated).ok());
  auto read = ReadSnapshot(path_);
  EXPECT_EQ(read.status().code(), sqo::StatusCode::kDataCorruption);
}

TEST_F(SnapshotTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadSnapshot(path_).status().code(), sqo::StatusCode::kNotFound);
}

TEST_F(SnapshotTest, TruncationIsCorruption) {
  auto db = storage_test::MakePopulatedDb();
  ASSERT_TRUE(WriteSnapshot(path_, db->store(), {}, 0, "").ok());
  auto data = fs::ReadFile(path_);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(fs::TruncateFile(path_, data->size() / 2).ok());
  EXPECT_EQ(ReadSnapshot(path_).status().code(),
            sqo::StatusCode::kDataCorruption);
  // Even a sub-header stub fails cleanly.
  ASSERT_TRUE(fs::TruncateFile(path_, 10).ok());
  EXPECT_EQ(ReadSnapshot(path_).status().code(),
            sqo::StatusCode::kDataCorruption);
}

TEST_F(SnapshotTest, SectionBitFlipIsCorruption) {
  auto db = storage_test::MakePopulatedDb();
  ASSERT_TRUE(WriteSnapshot(path_, db->store(), {}, 0, "catalog!").ok());
  auto data = fs::ReadFile(path_);
  ASSERT_TRUE(data.ok());
  std::string mutated = *data;
  mutated[kSnapshotHeaderSize + 12] ^= 0x04;  // store section
  ASSERT_TRUE(fs::WriteFileAtomic(path_, mutated).ok());
  auto read = ReadSnapshot(path_);
  EXPECT_EQ(read.status().code(), sqo::StatusCode::kDataCorruption);
  EXPECT_NE(read.status().message().find("store section"), std::string::npos);

  mutated = *data;
  mutated[mutated.size() - 2] ^= 0x04;  // index section (at the tail)
  ASSERT_TRUE(fs::WriteFileAtomic(path_, mutated).ok());
  read = ReadSnapshot(path_);
  EXPECT_EQ(read.status().code(), sqo::StatusCode::kDataCorruption);
  EXPECT_NE(read.status().message().find("index section"),
            std::string::npos);
}

TEST_F(SnapshotTest, VersionSkewIsCorruptionEvenWithValidChecksum) {
  auto db = storage_test::MakePopulatedDb();
  ASSERT_TRUE(WriteSnapshot(path_, db->store(), {}, 0, "").ok());
  auto data = fs::ReadFile(path_);
  ASSERT_TRUE(data.ok());
  std::string mutated = *data;
  mutated[4] = 99;  // version field (u32 LE at offset 4)
  // Re-seal the header so only the version — not the checksum — is wrong.
  const uint32_t crc = MaskCrc32c(Crc32c(mutated.data(), kSnapshotHeaderSize - 4));
  for (int i = 0; i < 4; ++i) {
    mutated[kSnapshotHeaderSize - 4 + i] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  ASSERT_TRUE(fs::WriteFileAtomic(path_, mutated).ok());
  auto read = ReadSnapshot(path_);
  EXPECT_EQ(read.status().code(), sqo::StatusCode::kDataCorruption);
  EXPECT_NE(read.status().message().find("version"), std::string::npos);
}

TEST_F(SnapshotTest, WriteFailpointsLeaveNoFileBehind) {
  auto db = storage_test::MakePopulatedDb();
  for (const char* site :
       {"storage.snapshot_write", "storage.fsync", "storage.rename"}) {
    failpoint::Action action;
    action.status = sqo::InternalError(std::string("injected: ") + site);
    failpoint::Activate(site, action);
    EXPECT_FALSE(WriteSnapshot(path_, db->store(), {}, 0, "").ok()) << site;
    failpoint::DeactivateAll();
    EXPECT_FALSE(fs::Exists(path_)) << site;
  }
  // And with no failpoint armed, the same call succeeds.
  EXPECT_TRUE(WriteSnapshot(path_, db->store(), {}, 0, "").ok());
  EXPECT_TRUE(fs::Exists(path_));
}

}  // namespace
}  // namespace sqo::storage
