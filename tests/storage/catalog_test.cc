#include "storage/catalog.h"

#include <gtest/gtest.h>

#include <string>

#include "storage_test_util.h"

namespace sqo::storage {
namespace {

TEST(CatalogTest, SchemaFingerprintIsStable) {
  const auto& schema = storage_test::UniversityPipeline().schema();
  const sqo::Fingerprint128 a = SchemaFingerprint(schema);
  const sqo::Fingerprint128 b = SchemaFingerprint(schema);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == sqo::Fingerprint128{});
}

TEST(CatalogTest, SerializeParseRoundTrip) {
  const auto& pipeline = storage_test::UniversityPipeline();
  const std::string json = SerializeCatalog(pipeline.compiled());
  auto info = ParseCatalogInfo(json);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->schema_hash, SchemaFingerprint(pipeline.schema()));
  EXPECT_GT(info->ic_count, 0u);
  EXPECT_EQ(info->ic_labels.size(), info->ic_count);
}

TEST(CatalogTest, MalformedJsonIsCorruption) {
  EXPECT_EQ(ParseCatalogInfo("{not json").status().code(),
            sqo::StatusCode::kDataCorruption);
  EXPECT_EQ(ParseCatalogInfo("").status().code(),
            sqo::StatusCode::kDataCorruption);
}

TEST(CatalogTest, MissingOrBadHashIsCorruption) {
  EXPECT_EQ(ParseCatalogInfo("{\"version\":1}").status().code(),
            sqo::StatusCode::kDataCorruption);
  // Hash must be exactly 32 hex characters.
  EXPECT_EQ(
      ParseCatalogInfo("{\"version\":1,\"schema_hash\":\"abc\"}")
          .status()
          .code(),
      sqo::StatusCode::kDataCorruption);
  EXPECT_EQ(ParseCatalogInfo(
                "{\"version\":1,\"schema_hash\":"
                "\"zz00000000000000000000000000000000\"}")
                .status()
                .code(),
            sqo::StatusCode::kDataCorruption);
}

}  // namespace
}  // namespace sqo::storage
