#include "storage/group_commit.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/context.h"
#include "common/status.h"

namespace sqo::storage {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

TEST(GroupCommitTest, SingleAppendCommitsAlone) {
  std::vector<std::vector<std::string>> batches;
  GroupCommitter committer(GroupCommitter::Options{},
                           [&](const std::vector<std::string>& frames) {
                             batches.push_back(frames);
                             return Status::Ok();
                           });
  EXPECT_TRUE(committer.Append("one").ok());
  committer.Stop();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0], std::vector<std::string>{"one"});
  EXPECT_EQ(committer.stats().ops, 1u);
  EXPECT_EQ(committer.stats().batches, 1u);
}

TEST(GroupCommitTest, ConcurrentAppendsShareFsyncs) {
  // Make each commit slow so frames pile up behind the in-flight batch:
  // with 8 threads x 16 appends against a ~1ms commit, batching MUST kick
  // in — equality of batches and ops would mean every op paid its own
  // "fsync", the regression group commit exists to prevent.
  std::atomic<uint64_t> commits{0};
  GroupCommitter committer(GroupCommitter::Options{},
                           [&](const std::vector<std::string>& frames) {
                             EXPECT_FALSE(frames.empty());
                             commits.fetch_add(1);
                             std::this_thread::sleep_for(milliseconds(1));
                             return Status::Ok();
                           });

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 16;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (!committer.Append("t" + std::to_string(t) + "." +
                              std::to_string(i))
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  committer.Stop();

  const GroupCommitter::Stats stats = committer.stats();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(stats.ops, static_cast<uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(stats.batches, commits.load());
  EXPECT_LT(stats.batches, stats.ops);
  EXPECT_GT(stats.max_batch_ops, 1u);
  EXPECT_EQ(stats.failed_batches, 0u);
}

TEST(GroupCommitTest, BatchOrderIsEnqueueOrder) {
  std::vector<std::string> order;
  GroupCommitter committer(GroupCommitter::Options{},
                           [&](const std::vector<std::string>& frames) {
                             for (const std::string& f : frames)
                               order.push_back(f);
                             std::this_thread::sleep_for(milliseconds(1));
                             return Status::Ok();
                           });
  std::vector<std::shared_ptr<GroupCommitter::Ticket>> tickets;
  for (int i = 0; i < 32; ++i) {
    tickets.push_back(committer.Enqueue(std::to_string(i)));
  }
  for (auto& ticket : tickets) {
    EXPECT_TRUE(committer.Wait(ticket).ok());
  }
  committer.Stop();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(order[i], std::to_string(i)) << "frame " << i << " reordered";
  }
}

TEST(GroupCommitTest, MaxBatchOpsBoundsEveryCommitCall) {
  GroupCommitter::Options options;
  options.max_batch_ops = 4;
  size_t largest = 0;
  GroupCommitter committer(options,
                           [&](const std::vector<std::string>& frames) {
                             largest = std::max(largest, frames.size());
                             std::this_thread::sleep_for(milliseconds(1));
                             return Status::Ok();
                           });
  std::vector<std::shared_ptr<GroupCommitter::Ticket>> tickets;
  for (int i = 0; i < 20; ++i) tickets.push_back(committer.Enqueue("f"));
  for (auto& ticket : tickets) EXPECT_TRUE(committer.Wait(ticket).ok());
  committer.Stop();
  EXPECT_LE(largest, 4u);
  EXPECT_EQ(committer.stats().max_batch_ops, largest);
}

TEST(GroupCommitTest, FailedBatchFailsEveryOpInIt) {
  // Once the first commit is in flight, enqueue more frames, then make the
  // disk die: the in-flight batch succeeds, the next one fails, and every
  // ticket in the failed batch observes the error.
  std::atomic<bool> fail{false};
  std::promise<void> first_started;
  std::atomic<bool> first{true};
  GroupCommitter committer(GroupCommitter::Options{},
                           [&](const std::vector<std::string>&) {
                             if (first.exchange(false)) {
                               first_started.set_value();
                               std::this_thread::sleep_for(milliseconds(5));
                               return Status::Ok();  // already past its fsync
                             }
                             return fail.load() ? InternalError("disk died")
                                                : Status::Ok();
                           });
  auto lead = committer.Enqueue("lead");
  first_started.get_future().wait();
  fail.store(true);
  auto doomed_a = committer.Enqueue("a");
  auto doomed_b = committer.Enqueue("b");
  EXPECT_TRUE(committer.Wait(lead).ok());
  EXPECT_FALSE(committer.Wait(doomed_a).ok());
  EXPECT_FALSE(committer.Wait(doomed_b).ok());
  committer.Stop();
  EXPECT_GE(committer.stats().failed_batches, 1u);
}

TEST(GroupCommitTest, WaitHonorsTheCallersDeadline) {
  // Block the committer on a gate, then Wait under an already-expired
  // context deadline: the waiter must return kResourceExhausted instead of
  // blocking, and the frame still becomes durable afterwards (ack lost,
  // write not) — the documented crash-equivalent.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::vector<std::string> committed;
  GroupCommitter committer(GroupCommitter::Options{},
                           [&](const std::vector<std::string>& frames) {
                             opened.wait();
                             for (const std::string& f : frames)
                               committed.push_back(f);
                             return Status::Ok();
                           });
  auto ticket = committer.Enqueue("slow");

  ExecutionContext context;
  context.ExpireDeadlineNow();
  {
    ScopedContext scoped(&context);
    const Status expired = committer.Wait(ticket);
    EXPECT_EQ(expired.code(), StatusCode::kResourceExhausted)
        << expired.ToString();
  }

  gate.set_value();
  committer.Stop();  // drains: the unacknowledged frame still commits
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_EQ(committed[0], "slow");
}

TEST(GroupCommitTest, WaitDeadlineExpiresWhileBatchIsMidFsync) {
  // Deterministic mid-fsync variant of the deadline test above: there the
  // frame may still be *queued* when Wait gives up; here the commit fn
  // signals after it has the batch in hand and before it blocks, so the
  // deadline provably expires while the frame is inside the fsync. The
  // abandoned ticket's batch still completes once the gate opens (ack
  // lost, write not), and a later deadline-free Wait on the same ticket
  // returns the real batch outcome.
  std::promise<void> entered;
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::vector<std::string> committed;
  GroupCommitter committer(
      GroupCommitter::Options{},
      [&, signalled = false](const std::vector<std::string>& frames) mutable {
        if (!signalled) {
          signalled = true;
          entered.set_value();
        }
        opened.wait();
        for (const std::string& f : frames) committed.push_back(f);
        return Status::Ok();
      });
  auto ticket = committer.Enqueue("inflight");
  entered.get_future().wait();  // the batch is now mid-"fsync"

  ExecutionContext context;
  context.ExpireDeadlineNow();
  {
    ScopedContext scoped(&context);
    const Status expired = committer.Wait(ticket);
    EXPECT_EQ(expired.code(), StatusCode::kResourceExhausted)
        << expired.ToString();
  }

  gate.set_value();
  committer.Stop();
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_EQ(committed[0], "inflight");
  EXPECT_TRUE(committer.Wait(ticket).ok());  // the outcome was never lost
}

TEST(GroupCommitTest, FlushIsABarrierForEverythingEnqueuedBefore) {
  std::atomic<uint64_t> committed{0};
  GroupCommitter committer(GroupCommitter::Options{},
                           [&](const std::vector<std::string>& frames) {
                             std::this_thread::sleep_for(milliseconds(1));
                             committed.fetch_add(frames.size());
                             return Status::Ok();
                           });
  std::vector<std::shared_ptr<GroupCommitter::Ticket>> tickets;
  for (int i = 0; i < 24; ++i) tickets.push_back(committer.Enqueue("f"));
  committer.Flush();
  EXPECT_EQ(committed.load(), 24u);
  for (auto& ticket : tickets) EXPECT_TRUE(committer.Wait(ticket).ok());
  committer.Stop();
}

TEST(GroupCommitTest, StopDrainsThenRejectsNewWork) {
  std::atomic<uint64_t> committed{0};
  GroupCommitter committer(GroupCommitter::Options{},
                           [&](const std::vector<std::string>& frames) {
                             std::this_thread::sleep_for(milliseconds(1));
                             committed.fetch_add(frames.size());
                             return Status::Ok();
                           });
  std::vector<std::shared_ptr<GroupCommitter::Ticket>> tickets;
  for (int i = 0; i < 12; ++i) tickets.push_back(committer.Enqueue("f"));
  committer.Stop();
  EXPECT_EQ(committed.load(), 12u);
  for (auto& ticket : tickets) EXPECT_TRUE(committer.Wait(ticket).ok());
  EXPECT_FALSE(committer.Append("late").ok());
  committer.Stop();  // idempotent
}

TEST(GroupCommitTest, FlushIntervalWidensBatches) {
  // With an accumulation window longer than the inter-arrival gap, frames
  // submitted shortly after the first one ride in the same batch even
  // though the committer was idle when the first arrived.
  GroupCommitter::Options options;
  options.flush_interval = microseconds(20000);
  std::vector<size_t> batch_sizes;
  GroupCommitter committer(options,
                           [&](const std::vector<std::string>& frames) {
                             batch_sizes.push_back(frames.size());
                             return Status::Ok();
                           });
  auto a = committer.Enqueue("a");
  std::this_thread::sleep_for(milliseconds(2));
  auto b = committer.Enqueue("b");
  EXPECT_TRUE(committer.Wait(a).ok());
  EXPECT_TRUE(committer.Wait(b).ok());
  committer.Stop();
  ASSERT_FALSE(batch_sizes.empty());
  EXPECT_EQ(batch_sizes[0], 2u);
}

}  // namespace
}  // namespace sqo::storage
