#include "storage/manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.h"
#include "common/failpoint.h"
#include "common/fileio.h"
#include "storage/snapshot.h"
#include "storage_test_util.h"

namespace sqo::storage {
namespace {

using storage_test::MakeEmptyDb;
using storage_test::MakePopulatedDb;
using storage_test::StateSignature;
using storage_test::UniversityPipeline;

class ManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DeactivateAll();
    dir_ = storage_test::FreshDir("manager");
  }
  void TearDown() override { failpoint::DeactivateAll(); }

  size_t SnapshotCount() const {
    size_t count = 0;
    if (auto names = fs::ListDir(dir_); names.ok()) {
      for (const std::string& name : *names) {
        if (name.rfind("snapshot-", 0) == 0) ++count;
      }
    }
    return count;
  }

  OpenOptions Options(bool checkpoint_on_close = true) const {
    OpenOptions options;
    options.compiled = &UniversityPipeline().compiled();
    options.checkpoint_on_close = checkpoint_on_close;
    return options;
  }

  std::string dir_;
};

TEST_F(ManagerTest, FreshOpenCreatesBaselineAndReopens) {
  auto db = MakePopulatedDb();
  const std::string want = StateSignature(db->store());
  ASSERT_TRUE(db->Open(dir_, Options()).ok());
  ASSERT_NE(db->recovery_info(), nullptr);
  EXPECT_TRUE(db->recovery_info()->created);
  EXPECT_FALSE(db->recovery_info()->degraded);
  EXPECT_EQ(SnapshotCount(), 1u);
  auto segments = ListWalSegments(*fs::Env::Default(), dir_);
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ(segments->size(), 1u);  // the fresh post-baseline segment
  ASSERT_TRUE(db->CloseStorage().ok());

  auto reopened = MakeEmptyDb();
  ASSERT_TRUE(reopened->Open(dir_, Options()).ok());
  EXPECT_FALSE(reopened->recovery_info()->created);
  EXPECT_TRUE(reopened->recovery_info()->catalog_loaded);
  EXPECT_TRUE(reopened->recovery_info()->lint.empty());
  EXPECT_EQ(StateSignature(reopened->store()), want);
}

TEST_F(ManagerTest, MutationsAreReplayedFromWalAfterCrash) {
  {
    auto db = MakePopulatedDb();
    ASSERT_TRUE(db->Open(dir_, Options(/*checkpoint_on_close=*/false)).ok());
    for (const auto& op : storage_test::BuildOpScript(42, 30)) {
      ASSERT_TRUE(op(db.get()).ok());
    }
    // db destroyed without checkpoint: a crash. The WAL is the only record
    // of the 30 ops.
  }
  auto db = MakePopulatedDb();  // same deterministic base population
  auto oracle = MakePopulatedDb();
  for (const auto& op : storage_test::BuildOpScript(42, 30)) {
    ASSERT_TRUE(op(oracle.get()).ok());
  }
  ASSERT_TRUE(db->Open(dir_, Options()).ok());
  EXPECT_GT(db->recovery_info()->replayed_records, 0u);
  EXPECT_FALSE(db->recovery_info()->degraded);
  EXPECT_EQ(StateSignature(db->store()), StateSignature(oracle->store()));
}

TEST_F(ManagerTest, CheckpointResetsWalAndPrunesSnapshots) {
  auto db = MakePopulatedDb();
  OpenOptions options = Options();
  options.keep_snapshots = 2;
  ASSERT_TRUE(db->Open(dir_, options).ok());
  for (int round = 0; round < 4; ++round) {
    for (const auto& op : storage_test::BuildOpScript(round, 5)) {
      ASSERT_TRUE(op(db.get()).ok());
    }
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  EXPECT_EQ(SnapshotCount(), 2u);  // pruned down to keep_snapshots
  const std::string want = StateSignature(db->store());
  ASSERT_TRUE(db->CloseStorage().ok());

  auto reopened = MakeEmptyDb();
  ASSERT_TRUE(reopened->Open(dir_, Options()).ok());
  // Everything lives in the snapshot; the log was reset at checkpoint.
  EXPECT_EQ(reopened->recovery_info()->replayed_records, 0u);
  EXPECT_EQ(StateSignature(reopened->store()), want);
}

TEST_F(ManagerTest, CloseCheckpointsByDefault) {
  std::string want;
  {
    auto db = MakePopulatedDb();
    ASSERT_TRUE(db->Open(dir_, Options()).ok());
    for (const auto& op : storage_test::BuildOpScript(7, 20)) {
      ASSERT_TRUE(op(db.get()).ok());
    }
    want = StateSignature(db->store());
    // Destructor closes storage, which checkpoints.
  }
  auto reopened = MakeEmptyDb();
  ASSERT_TRUE(reopened->Open(dir_, Options()).ok());
  EXPECT_EQ(reopened->recovery_info()->replayed_records, 0u);
  EXPECT_EQ(StateSignature(reopened->store()), want);
}

TEST_F(ManagerTest, FailedAppendLatchesUnhealthyUntilCheckpoint) {
  auto db = MakePopulatedDb();
  ASSERT_TRUE(db->Open(dir_, Options(/*checkpoint_on_close=*/false)).ok());

  failpoint::Action action;
  action.status = sqo::InternalError("injected append failure");
  action.max_trips = 1;
  failpoint::Activate("storage.wal_append", action);

  // The op whose append fails is rejected...
  sqo::Status failed = db->store()
                           .CreateObject("Person", {{"name", Value::String("x")},
                                                    {"age", Value::Int(30)}})
                           .status();
  EXPECT_FALSE(failed.ok());
  // ...and so is every later op, even though the failpoint is spent: the
  // log is no longer a prefix of memory.
  sqo::Status latched = db->store()
                            .CreateObject("Person", {{"name", Value::String("y")},
                                                     {"age", Value::Int(31)}})
                            .status();
  EXPECT_EQ(latched.code(), sqo::StatusCode::kDataCorruption);

  // A checkpoint captures memory (the truth) and re-bases durability.
  ASSERT_TRUE(db->Checkpoint().ok());
  ASSERT_TRUE(db->store()
                  .CreateObject("Person", {{"name", Value::String("z")},
                                           {"age", Value::Int(32)}})
                  .ok());
  const std::string want = StateSignature(db->store());

  // Crash and reopen: the snapshot + post-checkpoint WAL reproduce memory.
  auto reopened = MakeEmptyDb();
  std::unique_ptr<engine::Database> crashed = std::move(db);
  crashed.reset();  // no checkpoint on close
  ASSERT_TRUE(reopened->Open(dir_, Options()).ok());
  EXPECT_EQ(StateSignature(reopened->store()), want);
}

TEST_F(ManagerTest, CheckpointConcurrentWithInFlightBatchLosesNothing) {
  auto db = MakePopulatedDb();
  ASSERT_TRUE(db->Open(dir_, Options(/*checkpoint_on_close=*/false)).ok());

  // Hold the committer's batch fsync open so the checkpoint begins while a
  // batch is between dequeue and acknowledgment.
  failpoint::Action slow;
  slow.kind = failpoint::ActionKind::kDelayMs;
  slow.delay_ms = 60;
  slow.max_trips = 1;
  failpoint::Activate("storage.fsync", slow);

  std::atomic<bool> op_ok{false};
  std::thread writer([&] {
    op_ok = db->store()
                .CreateObject("Person", {{"name", Value::String("mid_batch")},
                                         {"age", Value::Int(44)}})
                .ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  ASSERT_TRUE(db->Checkpoint().ok());
  writer.join();
  EXPECT_TRUE(op_ok.load());
  EXPECT_GE(failpoint::TripCount("storage.fsync"), 1u);
  failpoint::DeactivateAll();
  EXPECT_TRUE(db->storage()->healthy());

  // The checkpoint's Flush barrier means it archived no segment holding an
  // unflushed record: the only segment left is the fresh empty one.
  const StorageManager::WalStats stats = db->storage()->wal_stats();
  EXPECT_EQ(stats.segments, 1u);

  // The mid-batch op and a post-checkpoint op both survive a crash.
  ASSERT_TRUE(db->store()
                  .CreateObject("Person", {{"name", Value::String("after")},
                                           {"age", Value::Int(45)}})
                  .ok());
  const std::string want = StateSignature(db->store());
  auto reopened = MakeEmptyDb();
  {
    std::unique_ptr<engine::Database> crashed = std::move(db);
    crashed.reset();  // no checkpoint on close
  }
  ASSERT_TRUE(reopened->Open(dir_, Options()).ok());
  EXPECT_FALSE(reopened->recovery_info()->degraded);
  // Only the post-checkpoint op replays; the mid-batch one is in the
  // snapshot (memory is updated before the WAL ack, and the snapshot's LSN
  // covers every assigned op).
  EXPECT_EQ(reopened->recovery_info()->replayed_records, 1u);
  EXPECT_EQ(StateSignature(reopened->store()), want);
}

TEST_F(ManagerTest, ConcurrentAppendersShareFsyncsThroughTheManager) {
  auto db = MakePopulatedDb();
  ASSERT_TRUE(db->Open(dir_, Options(/*checkpoint_on_close=*/false)).ok());

  // ObjectStore is single-writer, so concurrency comes from raw storage
  // appends: build frames by hand and push them through AppendBatch the way
  // the serving layer would from multiple sessions.
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        engine::Mutation m;
        m.kind = engine::Mutation::Kind::kInsertPair;
        m.relation = "takes";
        m.src = sqo::Oid(1000 + t);
        m.dst = sqo::Oid(2000 + i);
        if (!db->storage()->AppendBatch({m}).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  const GroupCommitter::Stats stats = db->storage()->group_commit_stats();
  EXPECT_EQ(stats.ops, static_cast<uint64_t>(kThreads * kOpsPerThread));
  EXPECT_LT(stats.batches, stats.ops) << "group commit never batched";
  EXPECT_EQ(db->storage()->last_lsn(),
            static_cast<uint64_t>(kThreads * kOpsPerThread));
  ASSERT_TRUE(db->CloseStorage().ok());
}

TEST_F(ManagerTest, WalRotatesAtTheSegmentSizeThreshold) {
  auto db = MakePopulatedDb();
  OpenOptions options = Options(/*checkpoint_on_close=*/false);
  options.wal_segment_bytes = 2048;  // tiny: force rotations under load
  ASSERT_TRUE(db->Open(dir_, options).ok());
  for (const auto& op : storage_test::BuildOpScript(11, 60)) {
    ASSERT_TRUE(op(db.get()).ok());
  }
  const StorageManager::WalStats stats = db->storage()->wal_stats();
  EXPECT_GT(stats.rotations, 0u);
  EXPECT_GT(stats.segments, 1u);
  const std::string want = StateSignature(db->store());

  // Replay spans the whole chain.
  auto reopened = MakeEmptyDb();
  {
    std::unique_ptr<engine::Database> crashed = std::move(db);
    crashed.reset();
  }
  ASSERT_TRUE(reopened->Open(dir_, options).ok());
  EXPECT_FALSE(reopened->recovery_info()->degraded);
  EXPECT_GT(reopened->recovery_info()->wal_segments, 1u);
  EXPECT_EQ(StateSignature(reopened->store()), want);
}

TEST_F(ManagerTest, StaleCatalogIsLintedNotFatal) {
  // Persist a snapshot whose catalog claims a different schema hash than
  // the live pipeline's, as if the schema changed since the save.
  auto db = MakePopulatedDb();
  ASSERT_TRUE(fs::EnsureDir(dir_).ok());
  const sqo::Fingerprint128 live =
      SchemaFingerprint(UniversityPipeline().schema());
  const std::string stale_json =
      "{\"version\":1,\"schema_hash\":\"00000000000000000000000000000001\","
      "\"ic_count\":0,\"total_residues\":0,\"ics\":[],\"residues\":[]}";
  ASSERT_TRUE(WriteSnapshot(dir_ + "/snapshot-000001.sqo", db->store(), live,
                            0, stale_json)
                  .ok());

  auto reopened = MakeEmptyDb();
  ASSERT_TRUE(reopened->Open(dir_, Options()).ok());
  const RecoveryInfo* info = reopened->recovery_info();
  ASSERT_NE(info, nullptr);
  EXPECT_FALSE(info->degraded);
  EXPECT_TRUE(info->catalog_loaded);
  ASSERT_FALSE(info->lint.empty());
  EXPECT_EQ(info->lint.diagnostics[0].code, "SQO-A013");
}

TEST_F(ManagerTest, WeakDurabilityKnobsAreLintedNotFatal) {
  auto db = MakePopulatedDb();
  OpenOptions options = Options();
  options.sync_each_append = false;  // acks outrun durability: SQO-A018
  options.keep_snapshots = 1;        // prunes the fallback snapshot
  ASSERT_TRUE(db->Open(dir_, options).ok());
  const RecoveryInfo* info = db->recovery_info();
  ASSERT_NE(info, nullptr);
  EXPECT_FALSE(info->degraded);
  size_t weak = 0;
  for (const auto& d : info->lint.diagnostics) {
    if (d.code == analysis::kCodeWeakDurability) ++weak;
  }
  EXPECT_EQ(weak, 2u) << "expected one finding per weakened knob";
  ASSERT_TRUE(db->CloseStorage().ok());

  // The defaults are clean.
  auto safe = MakeEmptyDb();
  ASSERT_TRUE(safe->Open(dir_, Options()).ok());
  for (const auto& d : safe->recovery_info()->lint.diagnostics) {
    EXPECT_NE(d.code, analysis::kCodeWeakDurability) << d.message;
  }
}

TEST_F(ManagerTest, DoubleOpenIsRejected) {
  auto db = MakePopulatedDb();
  ASSERT_TRUE(db->Open(dir_, Options()).ok());
  EXPECT_EQ(db->Open(dir_ + "_other", Options()).code(),
            sqo::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sqo::storage
