#include "solver/constraint_set.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace sqo::solver {
namespace {

using datalog::Atom;
using datalog::CmpOp;
using datalog::Term;

Atom Cmp(const char* lhs, CmpOp op, const char* rhs) {
  return Atom::Comparison(op, Term::Var(lhs), Term::Var(rhs));
}
Atom CmpC(const char* lhs, CmpOp op, double c) {
  return Atom::Comparison(op, Term::Var(lhs), Term::Double(c));
}

TEST(ConstraintSetTest, EmptyIsSatisfiable) {
  ConstraintSet cs;
  EXPECT_TRUE(cs.Satisfiable());
}

TEST(ConstraintSetTest, PaperExample1Contradiction) {
  // Age < 18 together with Age > 30 is the Section-2 contradiction.
  ConstraintSet cs;
  cs.Add(CmpC("Age", CmpOp::kLt, 18));
  EXPECT_TRUE(cs.Satisfiable());
  cs.Add(CmpC("Age", CmpOp::kGt, 30));
  EXPECT_FALSE(cs.Satisfiable());
}

TEST(ConstraintSetTest, Section51Contradiction) {
  // V < 1000 and V > 3000.
  ConstraintSet cs;
  cs.Add(CmpC("V", CmpOp::kLt, 1000));
  cs.Add(CmpC("V", CmpOp::kGt, 3000));
  EXPECT_FALSE(cs.Satisfiable());
}

TEST(ConstraintSetTest, TransitiveChains) {
  ConstraintSet cs;
  cs.Add(Cmp("A", CmpOp::kLt, "B"));
  cs.Add(Cmp("B", CmpOp::kLe, "C"));
  cs.Add(Cmp("C", CmpOp::kLt, "D"));
  EXPECT_TRUE(cs.Satisfiable());
  EXPECT_TRUE(cs.Implies(Cmp("A", CmpOp::kLt, "D")));
  EXPECT_TRUE(cs.Implies(Cmp("A", CmpOp::kNe, "D")));
  EXPECT_FALSE(cs.Implies(Cmp("D", CmpOp::kLe, "A")));
  cs.Add(Cmp("D", CmpOp::kLe, "A"));
  EXPECT_FALSE(cs.Satisfiable());
}

TEST(ConstraintSetTest, EqualityPropagation) {
  ConstraintSet cs;
  cs.Add(Cmp("X", CmpOp::kEq, "Y"));
  cs.Add(CmpC("Y", CmpOp::kLt, 5));
  EXPECT_TRUE(cs.Implies(CmpC("X", CmpOp::kLt, 5)));
  EXPECT_TRUE(cs.ImpliesEqual(Term::Var("X"), Term::Var("Y")));
  EXPECT_FALSE(cs.ImpliesEqual(Term::Var("X"), Term::Var("Z")));
}

TEST(ConstraintSetTest, SandwichForcesEquality) {
  ConstraintSet cs;
  cs.Add(Cmp("X", CmpOp::kLe, "Y"));
  cs.Add(Cmp("Y", CmpOp::kLe, "X"));
  EXPECT_TRUE(cs.Satisfiable());
  EXPECT_TRUE(cs.ImpliesEqual(Term::Var("X"), Term::Var("Y")));
  cs.Add(Cmp("X", CmpOp::kNe, "Y"));
  EXPECT_FALSE(cs.Satisfiable());
}

TEST(ConstraintSetTest, DisequalityAlone) {
  ConstraintSet cs;
  cs.Add(Cmp("X", CmpOp::kNe, "Y"));
  EXPECT_TRUE(cs.Satisfiable());
  EXPECT_FALSE(cs.Implies(Cmp("X", CmpOp::kEq, "Y")));
  EXPECT_TRUE(cs.Implies(Cmp("X", CmpOp::kNe, "Y")));
}

TEST(ConstraintSetTest, DenseSemanticsBetweenIntegers) {
  // X > 3 and X < 4 is satisfiable over dense domains (documented choice).
  ConstraintSet cs;
  cs.Add(CmpC("X", CmpOp::kGt, 3));
  cs.Add(CmpC("X", CmpOp::kLt, 4));
  EXPECT_TRUE(cs.Satisfiable());
}

TEST(ConstraintSetTest, ConstantsAreOrdered) {
  ConstraintSet cs;
  cs.Add(Atom::Comparison(CmpOp::kLe, Term::Var("X"), Term::Int(10)));
  EXPECT_TRUE(cs.Implies(Atom::Comparison(CmpOp::kLt, Term::Var("X"), Term::Int(20))));
  EXPECT_FALSE(cs.Implies(Atom::Comparison(CmpOp::kLt, Term::Var("X"), Term::Int(5))));
}

TEST(ConstraintSetTest, IntDoubleConstantsInterned) {
  ConstraintSet cs;
  cs.Add(Atom::Comparison(CmpOp::kEq, Term::Var("X"), Term::Int(3)));
  EXPECT_TRUE(cs.Implies(
      Atom::Comparison(CmpOp::kEq, Term::Var("X"), Term::Double(3.0))));
}

TEST(ConstraintSetTest, StringOrder) {
  ConstraintSet cs;
  cs.Add(Atom::Comparison(CmpOp::kLt, Term::Var("N"), Term::String("m")));
  EXPECT_TRUE(cs.Implies(
      Atom::Comparison(CmpOp::kLt, Term::Var("N"), Term::String("z"))));
  EXPECT_TRUE(cs.Implies(
      Atom::Comparison(CmpOp::kNe, Term::Var("N"), Term::String("zz"))));
}

TEST(ConstraintSetTest, EqualityWithTwoDifferentConstantsUnsat) {
  ConstraintSet cs;
  cs.Add(Atom::Comparison(CmpOp::kEq, Term::Var("X"), Term::Int(1)));
  cs.Add(Atom::Comparison(CmpOp::kEq, Term::Var("X"), Term::Int(2)));
  EXPECT_FALSE(cs.Satisfiable());
}

TEST(ConstraintSetTest, OidConstantsEqualityOnly) {
  ConstraintSet cs;
  cs.Add(Atom::Comparison(CmpOp::kEq, Term::Var("X"), Term::FromOid(sqo::Oid(1))));
  EXPECT_TRUE(cs.Implies(Atom::Comparison(CmpOp::kNe, Term::Var("X"),
                                          Term::FromOid(sqo::Oid(2)))));
}

TEST(ConstraintSetTest, UnsatImpliesEverything) {
  ConstraintSet cs;
  cs.Add(CmpC("X", CmpOp::kLt, 0));
  cs.Add(CmpC("X", CmpOp::kGt, 0));
  EXPECT_FALSE(cs.Satisfiable());
  EXPECT_TRUE(cs.Implies(Cmp("A", CmpOp::kEq, "B")));
}

TEST(ConstraintSetTest, StrictThroughNonStrict) {
  ConstraintSet cs;
  cs.Add(Cmp("A", CmpOp::kLe, "B"));
  cs.Add(Cmp("B", CmpOp::kLt, "C"));
  EXPECT_TRUE(cs.Implies(Cmp("A", CmpOp::kLt, "C")));
  EXPECT_FALSE(cs.Implies(Cmp("A", CmpOp::kLt, "B")));
}

TEST(ConstraintSetTest, GtGeFlipped) {
  ConstraintSet cs;
  cs.Add(Cmp("A", CmpOp::kGt, "B"));
  EXPECT_TRUE(cs.Implies(Cmp("B", CmpOp::kLt, "A")));
  EXPECT_TRUE(cs.Implies(Cmp("B", CmpOp::kLe, "A")));
  EXPECT_TRUE(cs.Implies(Cmp("A", CmpOp::kGe, "B")));
}

TEST(ConstraintSetTest, AddComparisonsFromLiterals) {
  auto q = datalog::ParseQueryText("q(X) :- p(X, A), A < 30, A > 10.");
  ASSERT_TRUE(q.ok());
  ConstraintSet cs;
  cs.AddComparisons(q->body);
  EXPECT_EQ(cs.size(), 2u);
  EXPECT_TRUE(cs.Implies(CmpC("A", CmpOp::kLt, 31)));
}

TEST(ConstraintSetTest, NonComparisonAtomIgnored) {
  ConstraintSet cs;
  EXPECT_FALSE(cs.Add(Atom::Pred("p", {Term::Var("X")})));
  EXPECT_EQ(cs.size(), 0u);
}

// ---- Projection (the Fourier–Motzkin step of IC inference) ----

TEST(ProjectionTest, EliminatesInteriorVariable) {
  ConstraintSet cs;
  cs.Add(Cmp("A", CmpOp::kLt, "B"));
  cs.Add(Cmp("B", CmpOp::kLe, "C"));
  std::vector<Atom> projected = cs.Project({"A", "C"});
  // The implied A < C must survive without B.
  ConstraintSet reprojected;
  for (const Atom& a : projected) reprojected.Add(a);
  EXPECT_TRUE(reprojected.Implies(Cmp("A", CmpOp::kLt, "C")));
  for (const Atom& a : projected) {
    std::vector<std::string> vars;
    a.CollectVariables(&vars);
    for (const std::string& v : vars) EXPECT_NE(v, "B");
  }
}

TEST(ProjectionTest, KeepsConstantsAndEqualities) {
  ConstraintSet cs;
  cs.Add(Cmp("X", CmpOp::kEq, "Y"));
  cs.Add(CmpC("Y", CmpOp::kGe, 30));
  std::vector<Atom> projected = cs.Project({"X"});
  ConstraintSet reprojected;
  for (const Atom& a : projected) reprojected.Add(a);
  EXPECT_TRUE(reprojected.Implies(CmpC("X", CmpOp::kGe, 30)));
}

TEST(ProjectionTest, TransitivelyReduced) {
  ConstraintSet cs;
  cs.Add(Cmp("A", CmpOp::kLt, "B"));
  cs.Add(Cmp("B", CmpOp::kLt, "C"));
  cs.Add(Cmp("A", CmpOp::kLt, "C"));  // redundant
  std::vector<Atom> projected = cs.Project({"A", "B", "C"});
  EXPECT_EQ(projected.size(), 2u);
}

TEST(ProjectionTest, EmptyOnUnsat) {
  ConstraintSet cs;
  cs.Add(CmpC("X", CmpOp::kLt, 0));
  cs.Add(CmpC("X", CmpOp::kGt, 0));
  EXPECT_TRUE(cs.Project({"X"}).empty());
}

// ---- Parameterized property sweep: Implies is consistent with adding the
// negation. ----

struct ImplicationCase {
  CmpOp given;
  double bound;
  CmpOp asked;
  double asked_bound;
  bool expect_implied;
};

class ImplicationSweep : public ::testing::TestWithParam<ImplicationCase> {};

TEST_P(ImplicationSweep, ImpliesMatchesNegationUnsat) {
  const ImplicationCase& c = GetParam();
  ConstraintSet cs;
  cs.Add(CmpC("X", c.given, c.bound));
  ASSERT_TRUE(cs.Satisfiable());
  EXPECT_EQ(cs.Implies(CmpC("X", c.asked, c.asked_bound)), c.expect_implied);
  // Cross-check: set plus negation is unsat iff implied.
  ConstraintSet with_neg;
  with_neg.Add(CmpC("X", c.given, c.bound));
  with_neg.Add(CmpC("X", datalog::NegateOp(c.asked), c.asked_bound));
  EXPECT_EQ(!with_neg.Satisfiable(), c.expect_implied);
}

INSTANTIATE_TEST_SUITE_P(
    Bounds, ImplicationSweep,
    ::testing::Values(
        ImplicationCase{CmpOp::kGt, 40, CmpOp::kGt, 30, true},
        ImplicationCase{CmpOp::kGt, 40, CmpOp::kGe, 40, true},
        ImplicationCase{CmpOp::kGt, 40, CmpOp::kGt, 40, true},
        ImplicationCase{CmpOp::kGt, 40, CmpOp::kGt, 50, false},
        ImplicationCase{CmpOp::kGe, 40, CmpOp::kGt, 40, false},
        ImplicationCase{CmpOp::kGe, 40, CmpOp::kGe, 40, true},
        ImplicationCase{CmpOp::kLt, 10, CmpOp::kLe, 10, true},
        ImplicationCase{CmpOp::kLt, 10, CmpOp::kLt, 20, true},
        ImplicationCase{CmpOp::kLt, 10, CmpOp::kNe, 10, true},
        ImplicationCase{CmpOp::kLt, 10, CmpOp::kNe, 5, false},
        ImplicationCase{CmpOp::kEq, 7, CmpOp::kLe, 7, true},
        ImplicationCase{CmpOp::kEq, 7, CmpOp::kGe, 7, true},
        ImplicationCase{CmpOp::kEq, 7, CmpOp::kLt, 7, false},
        ImplicationCase{CmpOp::kNe, 7, CmpOp::kNe, 7, true},
        ImplicationCase{CmpOp::kNe, 7, CmpOp::kLt, 7, false}));

// Property: Project never loses implications among kept variables.
class ProjectionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProjectionSweep, ProjectionPreservesKeptImplications) {
  const int seed = GetParam();
  // Build a deterministic pseudo-random chain over 5 variables.
  const char* vars[5] = {"A", "B", "C", "D", "E"};
  ConstraintSet cs;
  unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (int i = 0; i < 6; ++i) {
    int a = static_cast<int>(next() % 5);
    int b = static_cast<int>(next() % 5);
    if (a == b) continue;
    CmpOp op = (next() % 2 == 0) ? CmpOp::kLt : CmpOp::kLe;
    cs.Add(Cmp(vars[a], op, vars[b]));
  }
  if (!cs.Satisfiable()) GTEST_SKIP() << "random chain unsatisfiable";
  std::vector<Atom> projected = cs.Project({"A", "C", "E"});
  ConstraintSet reduced;
  for (const Atom& a : projected) reduced.Add(a);
  // Every implication among kept variables must be preserved.
  const char* kept[3] = {"A", "C", "E"};
  for (const char* x : kept) {
    for (const char* y : kept) {
      if (x == y) continue;
      for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kEq}) {
        if (cs.Implies(Cmp(x, op, y))) {
          EXPECT_TRUE(reduced.Implies(Cmp(x, op, y)))
              << x << " " << static_cast<int>(op) << " " << y << " seed "
              << seed;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionSweep, ::testing::Range(1, 25));

// The view must answer implications against constants it never interned —
// `Age >= 30` entails `Age >= 21` even though 21 has no node. (Regression:
// the rewrite verifier's chase skips asserting already-implied guards, so
// its entailment checks routinely compare against absent constants.)
TEST(EqualityViewTest, ImpliesBridgesMissingConstants) {
  ConstraintSet cs;
  cs.Add(CmpC("Age", CmpOp::kGe, 30));
  const ConstraintSet::EqualityView view(cs);
  EXPECT_TRUE(view.Implies(CmpC("Age", CmpOp::kGe, 21)));
  EXPECT_TRUE(view.Implies(CmpC("Age", CmpOp::kGt, 21)));
  EXPECT_TRUE(view.Implies(CmpC("Age", CmpOp::kNe, 21)));
  // Age = 30 is still possible, so strictly-above-30 and above-31 fail.
  EXPECT_FALSE(view.Implies(CmpC("Age", CmpOp::kGe, 31)));
  EXPECT_FALSE(view.Implies(CmpC("Age", CmpOp::kGt, 30)));
  // No equal-valued node can exist for a missing constant.
  EXPECT_FALSE(view.Implies(CmpC("Age", CmpOp::kEq, 21)));
  // Constant-on-the-left comparisons flip onto the same path.
  EXPECT_TRUE(view.Implies(
      Atom::Comparison(CmpOp::kLe, Term::Double(21), Term::Var("Age"))));
  // Agreement with the exact (copy-and-negate) decision procedure.
  for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe, CmpOp::kEq,
                   CmpOp::kNe}) {
    for (double c : {0.0, 21.0, 29.5, 30.0, 31.0, 100.0}) {
      EXPECT_EQ(view.Implies(CmpC("Age", op, c)),
                cs.Implies(CmpC("Age", op, c)))
          << static_cast<int>(op) << " " << c;
    }
  }
}

TEST(EqualityViewTest, MissingConstantUpperBound) {
  ConstraintSet cs;
  cs.Add(CmpC("Salary", CmpOp::kLt, 40000));
  const ConstraintSet::EqualityView view(cs);
  EXPECT_TRUE(view.Implies(CmpC("Salary", CmpOp::kLt, 50000)));
  EXPECT_TRUE(view.Implies(CmpC("Salary", CmpOp::kLe, 40001)));
  EXPECT_TRUE(view.Implies(CmpC("Salary", CmpOp::kNe, 40001)));
  EXPECT_FALSE(view.Implies(CmpC("Salary", CmpOp::kLt, 39999)));
  // A variable the set has never seen satisfies nothing.
  EXPECT_FALSE(view.Implies(CmpC("Other", CmpOp::kLt, 50000)));
}

}  // namespace
}  // namespace sqo::solver
