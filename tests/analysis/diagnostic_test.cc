#include "analysis/diagnostic.h"

#include <gtest/gtest.h>

namespace sqo::analysis {
namespace {

Diagnostic MakeError() {
  Diagnostic d;
  d.severity = Severity::kError;
  d.code = "SQO-A001";
  d.subject = "IC3";
  d.message = "variable 'X' is not bound by any positive body atom";
  d.fix_hint = "add a positive atom binding 'X'";
  return d;
}

TEST(DiagnosticTest, ToStringFormatsSeverityCodeAndHint) {
  const std::string text = MakeError().ToString();
  EXPECT_NE(text.find("error[SQO-A001]"), std::string::npos) << text;
  EXPECT_NE(text.find("IC3"), std::string::npos) << text;
  EXPECT_NE(text.find("hint"), std::string::npos) << text;

  Diagnostic warning;
  warning.severity = Severity::kWarning;
  warning.code = "SQO-A006";
  warning.subject = "IC7";
  warning.message = "subsumed";
  const std::string wtext = warning.ToString();
  EXPECT_NE(wtext.find("warning[SQO-A006]"), std::string::npos) << wtext;
  EXPECT_EQ(wtext.find("hint"), std::string::npos) << wtext;
}

TEST(DiagnosticTest, ReportCountsAndFirstError) {
  AnalysisReport report;
  EXPECT_TRUE(report.empty());
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(report.FirstError(), nullptr);

  report.Add(Severity::kWarning, "SQO-A006", "IC1", "redundant");
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(report.warning_count(), 1u);

  report.Add(Severity::kError, "SQO-A002", "IC2", "unknown relation 'foo'");
  EXPECT_TRUE(report.has_errors());
  EXPECT_EQ(report.error_count(), 1u);
  ASSERT_NE(report.FirstError(), nullptr);
  EXPECT_EQ(report.FirstError()->code, "SQO-A002");
  EXPECT_EQ(report.Summary(), "1 error, 1 warning");
}

TEST(DiagnosticTest, AppendMovesFindings) {
  AnalysisReport a;
  a.Add(Severity::kWarning, "SQO-A007", "person", "dead residue");
  AnalysisReport b;
  b.Add(Severity::kError, "SQO-A005", "IC2", "contradiction");
  a.Append(std::move(b));
  ASSERT_EQ(a.diagnostics.size(), 2u);
  EXPECT_EQ(a.diagnostics[1].code, "SQO-A005");
  EXPECT_TRUE(a.has_errors());
}

TEST(DiagnosticTest, JsonRoundTrip) {
  AnalysisReport report;
  report.diagnostics.push_back(MakeError());
  report.Add(Severity::kWarning, "SQO-A009", "q",
             "comparison \"a\" < 'b' is trivially false");  // escaping

  const std::string json = DiagnosticsToJson(report);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos) << json;

  auto parsed = DiagnosticsFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->diagnostics.size(), report.diagnostics.size());
  EXPECT_EQ(parsed->diagnostics[0], report.diagnostics[0]);
  EXPECT_EQ(parsed->diagnostics[1], report.diagnostics[1]);
}

TEST(DiagnosticTest, JsonRoundTripEmptyReport) {
  auto parsed = DiagnosticsFromJson(DiagnosticsToJson(AnalysisReport{}));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->empty());
}

TEST(DiagnosticTest, JsonRejectsMalformedDocuments) {
  EXPECT_FALSE(DiagnosticsFromJson("not json").ok());
  EXPECT_FALSE(DiagnosticsFromJson("{}").ok());
  EXPECT_FALSE(DiagnosticsFromJson(R"({"diagnostics":[42]})").ok());
  EXPECT_FALSE(
      DiagnosticsFromJson(R"({"diagnostics":[{"code":"SQO-A001"}]})").ok());
  EXPECT_FALSE(DiagnosticsFromJson(
                   R"({"diagnostics":[{"severity":"fatal","code":"x",)"
                   R"("subject":"s","message":"m"}]})")
                   .ok());
}

}  // namespace
}  // namespace sqo::analysis
