// Integration: the static analyzer as the pipeline's fail-fast pre-pass.

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "sqo/pipeline.h"
#include "workload/university.h"

namespace sqo::core {
namespace {

constexpr std::string_view kOdl = R"(
  interface Person {
    extent persons;
    attribute string name;
    attribute long age;
  };
)";

TEST(AnalysisPipelineTest, CreateRejectsContradictoryIcsWithSemanticError) {
  auto pipeline = Pipeline::Create(kOdl,
                                   "ic1: A > 30 <- person(X, N, A).\n"
                                   "ic2: A < 20 <- person(X, N, A).\n");
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), sqo::StatusCode::kSemanticError)
      << pipeline.status().ToString();
  // The message carries the stable diagnostic code for tooling.
  EXPECT_NE(pipeline.status().message().find("SQO-A005"), std::string::npos)
      << pipeline.status().ToString();
}

TEST(AnalysisPipelineTest, CreateRejectsUnsafeIc) {
  auto pipeline =
      Pipeline::Create(kOdl, "ic1: <- person(X, N, A), Z > 10.");
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), sqo::StatusCode::kSemanticError);
  EXPECT_NE(pipeline.status().message().find("SQO-A001"), std::string::npos);
}

TEST(AnalysisPipelineTest, RunAnalysisFalseSkipsThePrePass) {
  // With the pre-pass disabled the contradictory-but-compilable IC set goes
  // straight to residue compilation, as before the analyzer existed.
  PipelineOptions options;
  options.run_analysis = false;
  auto pipeline = Pipeline::Create(kOdl,
                                   "ic1: A > 30 <- person(X, N, A).\n"
                                   "ic2: A < 20 <- person(X, N, A).\n",
                                   {}, options);
  EXPECT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_TRUE(pipeline->ic_report().empty());
}

TEST(AnalysisPipelineTest, WarningsLandInIcReportAndRoundTripThroughJson) {
  auto pipeline = Pipeline::Create(kOdl,
                                   "ic1: A > 10 <- person(X, N, A).\n"
                                   "ic2: A > 5 <- person(X, N, A).\n");
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  const analysis::AnalysisReport& report = pipeline->ic_report();
  EXPECT_FALSE(report.has_errors());
  ASSERT_GE(report.warning_count(), 1u) << report.ToString();
  bool subsumed = false;
  for (const analysis::Diagnostic& d : report.diagnostics) {
    if (d.code == analysis::kCodeSubsumedIc) subsumed = true;
  }
  EXPECT_TRUE(subsumed) << report.ToString();

  // The report exports through the obs JSON layer and parses back intact.
  auto parsed =
      analysis::DiagnosticsFromJson(analysis::DiagnosticsToJson(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->diagnostics, report.diagnostics);
}

TEST(AnalysisPipelineTest, CleanIcSetProducesEmptyReport) {
  auto pipeline =
      Pipeline::Create(kOdl, "ic1: A > 0 <- person(X, N, A).");
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_TRUE(pipeline->ic_report().empty())
      << pipeline->ic_report().ToString();
}

TEST(AnalysisPipelineTest, QueryLintWarningsLandInPipelineResult) {
  auto pipeline =
      Pipeline::Create(kOdl, "ic1: A > 0 <- person(X, N, A).");
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto result = pipeline->OptimizeText(
      "select p from p in persons where p.age < 5 and p.age > 90");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  bool trivially_false = false;
  for (const analysis::Diagnostic& d : result->lint.diagnostics) {
    if (d.code == analysis::kCodeTriviallyFalse) trivially_false = true;
  }
  EXPECT_TRUE(trivially_false) << result->lint.ToString();
  // The optimizer independently proves the contradiction via residues or
  // the restriction solver; the lint is advisory and must not block it.
  EXPECT_FALSE(result->lint.has_errors());
}

TEST(AnalysisPipelineTest, UniversityWorkloadIsLintClean) {
  auto pipeline = workload::MakeUniversityPipeline();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_FALSE(pipeline->ic_report().has_errors())
      << pipeline->ic_report().ToString();
}

}  // namespace
}  // namespace sqo::core
