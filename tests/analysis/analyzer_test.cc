#include "analysis/analyzer.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "odl/parser.h"
#include "translate/schema_translator.h"
#include "workload/university.h"

namespace sqo::analysis {
namespace {

using datalog::Atom;
using datalog::Clause;
using datalog::CmpOp;
using datalog::Literal;
using datalog::Term;

translate::TranslatedSchema University() {
  auto ast = odl::ParseOdl(workload::UniversityOdl());
  EXPECT_TRUE(ast.ok());
  auto schema = odl::Schema::Resolve(*ast);
  EXPECT_TRUE(schema.ok());
  auto translated = translate::TranslateSchema(*schema);
  EXPECT_TRUE(translated.ok()) << translated.status().ToString();
  return std::move(translated).value();
}

/// Parses ICs against the schema catalog (named-argument + arity checking),
/// or without it when the test needs an atom the parser would reject.
std::vector<Clause> ParseIcs(const translate::TranslatedSchema& schema,
                             std::string_view text, bool use_catalog = true) {
  auto parsed = datalog::ParseProgram(
      text, use_catalog ? &schema.catalog : nullptr);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

size_t CountCode(const AnalysisReport& report, std::string_view code) {
  size_t n = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) ++n;
  }
  return n;
}

// --- SQO-A001: safety / range restriction -------------------------------

TEST(AnalyzerIcsTest, A001FlagsUnboundComparisonVariable) {
  auto ts = University();
  auto report = AnalyzeIcs(
      ts, ParseIcs(ts, "ic1: <- person(X, N, A, Ad), Z > 10."));
  EXPECT_EQ(CountCode(report, kCodeUnsafeVariable), 1u) << report.ToString();
  EXPECT_TRUE(report.has_errors());
  EXPECT_EQ(report.FirstError()->subject, "ic1");
}

TEST(AnalyzerIcsTest, A001AcceptsBoundVariablesAndLocalNegationVars) {
  auto ts = University();
  // The negated atom's fresh variables are existential under negation
  // ("no such tuple at all") — legal, not a safety violation.
  auto report = AnalyzeIcs(
      ts, ParseIcs(ts,
                   "ic1: A > 0 <- person(X, N, A, Ad).\n"
                   "ic2: <- person(X, N, A, Ad), A > 90, "
                   "not student(X, S1, S2, S3, S4).\n"));
  EXPECT_EQ(CountCode(report, kCodeUnsafeVariable), 0u) << report.ToString();
}

// --- SQO-A002: unknown relation ------------------------------------------

TEST(AnalyzerIcsTest, A002FlagsUnknownRelation) {
  auto ts = University();
  auto report = AnalyzeIcs(ts, ParseIcs(ts, "ic1: <- nosuch(X)."));
  EXPECT_EQ(CountCode(report, kCodeUnknownRelation), 1u) << report.ToString();
  EXPECT_TRUE(report.has_errors());
}

TEST(AnalyzerIcsTest, A002AcceptsCatalogRelations) {
  auto ts = University();
  auto report =
      AnalyzeIcs(ts, ParseIcs(ts, "ic1: <- person(X, N, A, Ad), A < 0."));
  EXPECT_EQ(CountCode(report, kCodeUnknownRelation), 0u) << report.ToString();
}

// --- SQO-A003: arity mismatch --------------------------------------------

TEST(AnalyzerIcsTest, A003FlagsArityMismatch) {
  auto ts = University();
  // Parse without the catalog: the parser itself rejects wrong-arity atoms
  // when a catalog is supplied, so the analyzer is the backstop for
  // programmatically constructed clauses.
  auto report = AnalyzeIcs(
      ts, ParseIcs(ts, "ic1: <- person(X, N).", /*use_catalog=*/false));
  EXPECT_EQ(CountCode(report, kCodeArityMismatch), 1u) << report.ToString();
  EXPECT_TRUE(report.has_errors());
}

TEST(AnalyzerIcsTest, A003AcceptsCorrectArity) {
  auto ts = University();
  auto report = AnalyzeIcs(
      ts, ParseIcs(ts, "ic1: <- person(X, N, A, Ad), A < 0.",
                   /*use_catalog=*/false));
  EXPECT_EQ(CountCode(report, kCodeArityMismatch), 0u) << report.ToString();
}

// --- SQO-A004: constant argument type mismatch ---------------------------

TEST(AnalyzerIcsTest, A004FlagsIntConstantInStringPosition) {
  auto ts = University();
  // person's `name` attribute is a string; 42 can never occur there.
  auto report = AnalyzeIcs(ts, ParseIcs(ts, "ic1: <- person(X, 42, A, Ad)."));
  EXPECT_EQ(CountCode(report, kCodeTypeMismatch), 1u) << report.ToString();
  EXPECT_TRUE(report.has_errors());
}

TEST(AnalyzerIcsTest, A004AcceptsWellTypedConstants) {
  auto ts = University();
  auto report = AnalyzeIcs(
      ts, ParseIcs(ts, "ic1: <- person(X, \"bob\", A, Ad), A < 0."));
  EXPECT_EQ(CountCode(report, kCodeTypeMismatch), 0u) << report.ToString();
}

// --- SQO-A005: contradictory IC set --------------------------------------

TEST(AnalyzerIcsTest, A005FlagsPairwiseContradiction) {
  auto ts = University();
  // Every person is over 30 AND under 20: any person instance is forced
  // to be illegal, so the IC set rules out the class entirely.
  auto report = AnalyzeIcs(
      ts, ParseIcs(ts,
                   "ic1: A > 30 <- person(X, N, A, Ad).\n"
                   "ic2: A < 20 <- person(X, N, A, Ad).\n"));
  EXPECT_EQ(CountCode(report, kCodeContradictoryIcs), 1u) << report.ToString();
  EXPECT_TRUE(report.has_errors());
}

TEST(AnalyzerIcsTest, A005FlagsSelfContradictorySingleton) {
  auto ts = University();
  // Guard A = 25 is satisfiable, head A < 20 conflicts with it: persons
  // aged exactly 25 are forced not to exist — almost certainly a typo.
  auto report = AnalyzeIcs(
      ts, ParseIcs(ts, "ic1: A < 20 <- person(X, N, A, Ad), A = 25."));
  EXPECT_EQ(CountCode(report, kCodeContradictoryIcs), 1u) << report.ToString();
}

TEST(AnalyzerIcsTest, A005AcceptsCompatibleHeads) {
  auto ts = University();
  auto report = AnalyzeIcs(
      ts, ParseIcs(ts,
                   "ic1: A > 20 <- person(X, N, A, Ad).\n"
                   "ic2: A < 120 <- person(X, N, A, Ad).\n"));
  EXPECT_EQ(CountCode(report, kCodeContradictoryIcs), 0u) << report.ToString();
  EXPECT_FALSE(report.has_errors());
}

// --- SQO-A006: redundant / subsumed IC -----------------------------------

TEST(AnalyzerIcsTest, A006FlagsSubsumedIc) {
  auto ts = University();
  // ic1 implies ic2 (A > 10 ⇒ A > 5 under the same body), so ic2 adds no
  // semantic knowledge and only slows compilation down.
  auto report = AnalyzeIcs(
      ts, ParseIcs(ts,
                   "ic1: A > 10 <- person(X, N, A, Ad).\n"
                   "ic2: A > 5 <- person(X, N, A, Ad).\n"));
  EXPECT_EQ(CountCode(report, kCodeSubsumedIc), 1u) << report.ToString();
  EXPECT_FALSE(report.has_errors());  // redundancy is a warning
  bool flagged_ic2 = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == kCodeSubsumedIc && d.subject == "ic2") flagged_ic2 = true;
  }
  EXPECT_TRUE(flagged_ic2) << report.ToString();
}

TEST(AnalyzerIcsTest, A006FlagsExactDuplicateOnce) {
  auto ts = University();
  auto report = AnalyzeIcs(
      ts, ParseIcs(ts,
                   "ic1: A > 10 <- person(X, N, A, Ad).\n"
                   "ic2: A > 10 <- person(X, N, A, Ad).\n"));
  // Mutual subsumption: only the later duplicate is flagged, not both.
  EXPECT_EQ(CountCode(report, kCodeSubsumedIc), 1u) << report.ToString();
}

TEST(AnalyzerIcsTest, A006AcceptsIndependentIcs) {
  auto ts = University();
  auto report = AnalyzeIcs(
      ts, ParseIcs(ts,
                   "ic1: A > 10 <- person(X, N, A, Ad).\n"
                   "ic2: A > 16 <- student(S, N, A, Ad, G).\n"));
  EXPECT_EQ(CountCode(report, kCodeSubsumedIc), 0u) << report.ToString();
}

// --- SQO-A012: equality IC over an attribute with no index hint ----------

TEST(AnalyzerIcsTest, A012FlagsEqualityComparisonOnUnindexedAttribute) {
  auto ts = University();
  // `age` carries no ODL key hint, so residues of this IC inject equality
  // selections with no explicit index behind them.
  auto report =
      AnalyzeIcs(ts, ParseIcs(ts, "ic1: <- person(X, N, A, Ad), A = 25."));
  EXPECT_EQ(CountCode(report, kCodeUnindexedEqualityIc), 1u)
      << report.ToString();
  EXPECT_FALSE(report.has_errors());  // perf lint, not a correctness error
}

TEST(AnalyzerIcsTest, A012FlagsConstantInAttributePosition) {
  auto ts = University();
  auto report = AnalyzeIcs(ts, ParseIcs(ts, "ic1: <- person(X, N, 25, Ad)."));
  EXPECT_EQ(CountCode(report, kCodeUnindexedEqualityIc), 1u)
      << report.ToString();
}

TEST(AnalyzerIcsTest, A012FlagsHeadEquality) {
  auto ts = University();
  auto report =
      AnalyzeIcs(ts, ParseIcs(ts, "ic1: A = 25 <- person(X, N, A, Ad)."));
  EXPECT_EQ(CountCode(report, kCodeUnindexedEqualityIc), 1u)
      << report.ToString();
}

TEST(AnalyzerIcsTest, A012AcceptsEqualityOnKeyedAttribute) {
  auto ts = University();
  // Person declares `key name`: the equality selection has an explicit
  // index, and the inherited key also covers the student subclass.
  auto report = AnalyzeIcs(
      ts, ParseIcs(ts,
                   "ic1: A > 0 <- person(X, \"bob\", A, Ad).\n"
                   "ic2: A > 0 <- student(S, \"bob\", A, Ad, G).\n"));
  EXPECT_EQ(CountCode(report, kCodeUnindexedEqualityIc), 0u)
      << report.ToString();
}

TEST(AnalyzerIcsTest, A012IgnoresInequalities) {
  auto ts = University();
  auto report = AnalyzeIcs(
      ts, ParseIcs(ts, "ic1: A > 30 <- person(X, N, A, Ad), A < 90."));
  EXPECT_EQ(CountCode(report, kCodeUnindexedEqualityIc), 0u)
      << report.ToString();
}

TEST(AnalyzerIcsTest, A012CanBeDisabled) {
  auto ts = University();
  AnalyzerOptions options;
  options.check_index_hints = false;
  auto report = AnalyzeIcs(
      ts, ParseIcs(ts, "ic1: <- person(X, N, A, Ad), A = 25."), options);
  EXPECT_EQ(CountCode(report, kCodeUnindexedEqualityIc), 0u)
      << report.ToString();
}

TEST(AnalyzerIcsTest, MethodFactsAreSkipped) {
  auto ts = University();
  auto report = AnalyzeIcs(
      ts, ParseIcs(ts, "monotone(raise_salary, salary, increasing).",
                   /*use_catalog=*/false));
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(AnalyzerIcsTest, OptionsDisablePassesIndividually) {
  auto ts = University();
  auto ics = ParseIcs(ts,
                      "ic1: A > 30 <- person(X, N, A, Ad).\n"
                      "ic2: A < 20 <- person(X, N, A, Ad).\n");
  AnalyzerOptions options;
  options.check_contradictions = false;
  auto report = AnalyzeIcs(ts, ics, options);
  EXPECT_EQ(CountCode(report, kCodeContradictoryIcs), 0u) << report.ToString();
}

// --- SQO-A007: dead residues ---------------------------------------------

core::Residue MakeResidue(std::vector<Literal> remainder) {
  core::Residue residue;
  residue.relation = "person";
  residue.template_atom = Atom::Pred(
      "person", {Term::Var("_R0"), Term::Var("_R1"), Term::Var("_R2"),
                 Term::Var("_R3")});
  residue.remainder = std::move(remainder);
  residue.head = std::nullopt;
  residue.source = "ic9";
  return residue;
}

TEST(AnalyzerResiduesTest, A007FlagsUnsatisfiableGuard) {
  std::map<std::string, std::vector<core::Residue>> residues;
  residues["person"].push_back(MakeResidue(
      {Literal(true, Atom::Comparison(CmpOp::kLt, Term::Var("A"), Term::Int(5))),
       Literal(true,
               Atom::Comparison(CmpOp::kGt, Term::Var("A"), Term::Int(10)))}));
  auto report = AnalyzeResidues(residues);
  EXPECT_EQ(CountCode(report, kCodeDeadResidue), 1u) << report.ToString();
  EXPECT_FALSE(report.has_errors());  // dead knowledge is sound, just useless
  EXPECT_EQ(report.diagnostics[0].subject, "person");
}

TEST(AnalyzerResiduesTest, A007AcceptsSatisfiableGuard) {
  std::map<std::string, std::vector<core::Residue>> residues;
  residues["person"].push_back(MakeResidue(
      {Literal(true, Atom::Comparison(CmpOp::kGt, Term::Var("A"),
                                      Term::Int(10)))}));
  residues["person"].push_back(MakeResidue({}));  // invariant: no guard
  auto report = AnalyzeResidues(residues);
  EXPECT_EQ(CountCode(report, kCodeDeadResidue), 0u) << report.ToString();
}

// --- SQO-A008..A010: query lints -----------------------------------------

datalog::Query ParseQuery(const translate::TranslatedSchema& schema,
                          std::string_view text) {
  auto parsed = datalog::ParseQueryText(text, &schema.catalog);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

TEST(AnalyzerQueryTest, A008FlagsUnboundProjectedVariable) {
  auto ts = University();
  auto report =
      AnalyzeQuery(ts, ParseQuery(ts, "q(X, Y) :- person(X, N, A, Ad)."));
  EXPECT_EQ(CountCode(report, kCodeUnboundQueryVariable), 1u)
      << report.ToString();
  EXPECT_TRUE(report.has_errors());
}

TEST(AnalyzerQueryTest, A008FlagsUnboundComparisonVariable) {
  auto ts = University();
  auto report =
      AnalyzeQuery(ts, ParseQuery(ts, "q(X) :- person(X, N, A, Ad), Z > 5."));
  EXPECT_EQ(CountCode(report, kCodeUnboundQueryVariable), 1u)
      << report.ToString();
}

TEST(AnalyzerQueryTest, A008AcceptsFullyBoundQuery) {
  auto ts = University();
  auto report = AnalyzeQuery(
      ts, ParseQuery(ts, "q(X, N) :- person(X, N, A, Ad), A > 5."));
  EXPECT_EQ(CountCode(report, kCodeUnboundQueryVariable), 0u)
      << report.ToString();
  EXPECT_TRUE(report.empty());
}

TEST(AnalyzerQueryTest, A009FlagsUnsatisfiableRestrictionSet) {
  auto ts = University();
  auto report = AnalyzeQuery(
      ts, ParseQuery(ts, "q(X) :- person(X, N, A, Ad), A < 5, A > 90."));
  EXPECT_GE(CountCode(report, kCodeTriviallyFalse), 1u) << report.ToString();
  EXPECT_FALSE(report.has_errors());  // the optimizer proves emptiness itself
}

TEST(AnalyzerQueryTest, A009FlagsGroundFalseComparison) {
  auto ts = University();
  auto report = AnalyzeQuery(
      ts, ParseQuery(ts, "q(X) :- person(X, N, A, Ad), 3 > 5."));
  EXPECT_GE(CountCode(report, kCodeTriviallyFalse), 1u) << report.ToString();
}

TEST(AnalyzerQueryTest, A009AcceptsSatisfiableRestrictions) {
  auto ts = University();
  auto report = AnalyzeQuery(
      ts, ParseQuery(ts, "q(X) :- person(X, N, A, Ad), A > 5, A < 90."));
  EXPECT_EQ(CountCode(report, kCodeTriviallyFalse), 0u) << report.ToString();
}

TEST(AnalyzerQueryTest, A010FlagsGroundTrueComparison) {
  auto ts = University();
  auto report = AnalyzeQuery(
      ts, ParseQuery(ts, "q(X) :- person(X, N, A, Ad), 3 < 5."));
  EXPECT_EQ(CountCode(report, kCodeConstantFoldable), 1u) << report.ToString();
  EXPECT_FALSE(report.has_errors());
}

TEST(AnalyzerQueryTest, A010FlagsReflexiveEquality) {
  auto ts = University();
  auto report = AnalyzeQuery(
      ts, ParseQuery(ts, "q(X) :- person(X, N, A, Ad), A = A."));
  EXPECT_EQ(CountCode(report, kCodeConstantFoldable), 1u) << report.ToString();
}

TEST(AnalyzerQueryTest, A010AcceptsMeaningfulComparisons) {
  auto ts = University();
  auto report = AnalyzeQuery(
      ts, ParseQuery(ts, "q(X) :- person(X, N, A, Ad), A >= 21."));
  EXPECT_EQ(CountCode(report, kCodeConstantFoldable), 0u) << report.ToString();
}

TEST(AnalyzerQueryTest, SignatureChecksApplyToQueries) {
  auto ts = University();
  auto parsed = datalog::ParseQueryText("q(X) :- nosuch(X).", nullptr);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto report = AnalyzeQuery(ts, *parsed);
  EXPECT_EQ(CountCode(report, kCodeUnknownRelation), 1u) << report.ToString();
}

// --- AnalyzeGovernance ----------------------------------------------------

TEST(AnalyzerGovernanceTest, A011FlagsDeadlineWithFailClosed) {
  auto report = AnalyzeGovernance(/*deadline_set=*/true, /*fail_open=*/false);
  EXPECT_EQ(CountCode(report, kCodeDeadlineFailClosed), 1u)
      << report.ToString();
  EXPECT_FALSE(report.has_errors());  // a warning, not a hard error
}

TEST(AnalyzerGovernanceTest, A011AcceptsFailOpenOrNoDeadline) {
  EXPECT_EQ(CountCode(AnalyzeGovernance(true, true), kCodeDeadlineFailClosed),
            0u);
  EXPECT_EQ(CountCode(AnalyzeGovernance(false, false), kCodeDeadlineFailClosed),
            0u);
  EXPECT_EQ(CountCode(AnalyzeGovernance(false, true), kCodeDeadlineFailClosed),
            0u);
}

// --- Catalog freshness (SQO-A013) -----------------------------------------

TEST(AnalyzerCatalogTest, A013SilentWhenHashesMatch) {
  auto report = AnalyzeCatalogFreshness("abc123", "abc123", 5, 5);
  EXPECT_TRUE(report.empty()) << report.ToString();
  // Residue-count drift alone does not matter when the schema matches.
  EXPECT_TRUE(AnalyzeCatalogFreshness("abc123", "abc123", 5, 9).empty());
}

TEST(AnalyzerCatalogTest, A013WarnsOnSchemaHashMismatch) {
  auto report = AnalyzeCatalogFreshness("abc123", "def456", 5, 5);
  EXPECT_EQ(CountCode(report, kCodeStaleCatalog), 1u) << report.ToString();
  EXPECT_FALSE(report.has_errors());  // stale catalog is survivable
}

TEST(AnalyzerCatalogTest, A013ReportsResidueCountDrift) {
  auto report = AnalyzeCatalogFreshness("abc123", "def456", 5, 9);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_NE(report.diagnostics[0].message.find("stored 5"),
            std::string::npos)
      << report.ToString();
}

// --- Profile lint (SQO-A014) ----------------------------------------------

obs::QueryProfile ProfileWithNode(std::string op, std::string relation,
                                  uint64_t rows_in) {
  obs::QueryProfile profile;
  obs::ProfileNode node;
  node.op = std::move(op);
  node.relation = std::move(relation);
  node.rows_in = rows_in;
  profile.nodes.push_back(std::move(node));
  return profile;
}

TEST(AnalyzerProfileTest, A014FlagsExtentScanOnKeyedClass) {
  auto ts = University();
  // `name` is a key on Person, so Faculty inherits an index hint.
  auto report =
      AnalyzeProfile(ts, ProfileWithNode("extent-scan", "faculty", 20));
  ASSERT_EQ(CountCode(report, kCodeExtentScanWithIndexHint), 1u)
      << report.ToString();
  EXPECT_FALSE(report.has_errors());  // a lint, not a correctness problem
  const Diagnostic& d = report.diagnostics[0];
  EXPECT_EQ(d.subject, "faculty");
  EXPECT_NE(d.message.find("20 probe(s)"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("name"), std::string::npos) << d.message;
}

TEST(AnalyzerProfileTest, A014DeduplicatesPerRelation) {
  auto ts = University();
  obs::QueryProfile profile = ProfileWithNode("extent-scan", "faculty", 20);
  profile.nodes.push_back(profile.nodes[0]);  // scanned twice in one plan
  auto report = AnalyzeProfile(ts, profile);
  EXPECT_EQ(CountCode(report, kCodeExtentScanWithIndexHint), 1u)
      << report.ToString();
}

TEST(AnalyzerProfileTest, A014SilentWithoutKeyOrIndex) {
  auto ts = University();
  // Section declares no key anywhere in its superclass chain.
  EXPECT_TRUE(
      AnalyzeProfile(ts, ProfileWithNode("extent-scan", "section", 40))
          .empty());
  // An index probe on a keyed class is exactly what the hint wants.
  EXPECT_TRUE(
      AnalyzeProfile(ts, ProfileWithNode("index-probe", "faculty.name", 1))
          .empty());
  // Relationship scans have no extent index to miss.
  EXPECT_TRUE(
      AnalyzeProfile(ts, ProfileWithNode("pair-scan", "takes", 60)).empty());
  // Unknown relations are ignored, not crashed on.
  EXPECT_TRUE(
      AnalyzeProfile(ts, ProfileWithNode("extent-scan", "nope", 1)).empty());
}

// --- Stale-ASR profile lint (SQO-A019) ------------------------------------

TEST(AnalyzerProfileTest, A019FlagsScanCoveredByStaleAsr) {
  std::vector<AsrFreshness> asrs = {
      {"asr_student_ta",
       {"takes", "is_section_of", "has_sections", "has_ta"},
       /*stale=*/true}};
  // Scanning the ASR relation itself...
  auto report = AnalyzeAsrStaleness(
      ProfileWithNode("extent-scan", "asr_student_ta", 12), asrs);
  ASSERT_EQ(CountCode(report, kCodeStaleAsr), 1u) << report.ToString();
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(report.diagnostics[0].subject, "asr_student_ta");
  EXPECT_NE(report.diagnostics[0].message.find("asr_student_ta"),
            std::string::npos);
  // ...or one of its path hops is the scan the ASR was built to avoid.
  auto hop_report =
      AnalyzeAsrStaleness(ProfileWithNode("pair-scan", "takes", 40), asrs);
  EXPECT_EQ(CountCode(hop_report, kCodeStaleAsr), 1u) << hop_report.ToString();
}

TEST(AnalyzerProfileTest, A019DeduplicatesPerRelationAndAsr) {
  std::vector<AsrFreshness> asrs = {
      {"asr_student_ta",
       {"takes", "is_section_of", "has_sections", "has_ta"},
       /*stale=*/true}};
  obs::QueryProfile profile = ProfileWithNode("pair-scan", "takes", 40);
  profile.nodes.push_back(profile.nodes[0]);  // same relation scanned twice
  auto report = AnalyzeAsrStaleness(profile, asrs);
  EXPECT_EQ(CountCode(report, kCodeStaleAsr), 1u) << report.ToString();
}

TEST(AnalyzerProfileTest, A019SilentForFreshAsrsProbesAndOtherRelations) {
  std::vector<AsrFreshness> fresh = {
      {"asr_student_ta",
       {"takes", "is_section_of", "has_sections", "has_ta"},
       /*stale=*/false}};
  // A fresh ASR never fires, whatever the plan scans.
  EXPECT_TRUE(
      AnalyzeAsrStaleness(ProfileWithNode("pair-scan", "takes", 40), fresh)
          .empty());
  std::vector<AsrFreshness> stale = {
      {"asr_student_ta",
       {"takes", "is_section_of", "has_sections", "has_ta"},
       /*stale=*/true}};
  // Probe / traversal operators are what the ASR wants — not flagged.
  EXPECT_TRUE(AnalyzeAsrStaleness(
                  ProfileWithNode("traverse", "takes", 40), stale)
                  .empty());
  EXPECT_TRUE(AnalyzeAsrStaleness(
                  ProfileWithNode("hash-join", "student", 40), stale)
                  .empty());
  // Scans over relations outside the ASR's coverage stay silent.
  EXPECT_TRUE(AnalyzeAsrStaleness(
                  ProfileWithNode("extent-scan", "faculty", 20), stale)
                  .empty());
  // No ASRs at all: nothing to analyze.
  EXPECT_TRUE(AnalyzeAsrStaleness(
                  ProfileWithNode("extent-scan", "asr_student_ta", 5), {})
                  .empty());
}

// --- SQO-A020: server config sanity ---------------------------------------

TEST(AnalyzerServerConfigTest, A020SilentForAServingSafeConfig) {
  // The ServerConfig defaults: bounded queue, degradation engages well
  // before the admission bound, no shed/deadline inversion, sane workers.
  EXPECT_TRUE(AnalyzeServerConfig(/*workers=*/4, /*hardware_concurrency=*/4,
                                  /*max_queue_depth=*/128,
                                  /*degrade_queue_depth=*/32,
                                  /*shed_wait_ms=*/0,
                                  /*default_deadline_ms=*/0)
                  .empty());
}

TEST(AnalyzerServerConfigTest, A020FlagsZeroQueueBound) {
  AnalysisReport report = AnalyzeServerConfig(4, 4, /*max_queue_depth=*/0,
                                              /*degrade_queue_depth=*/0, 0, 0);
  ASSERT_EQ(report.diagnostics.size(), 1u) << report.ToString();
  EXPECT_EQ(report.diagnostics[0].code, kCodeServerConfig);
  EXPECT_NE(report.diagnostics[0].message.find("max_queue_depth"),
            std::string::npos);
}

TEST(AnalyzerServerConfigTest, A020FlagsShedTighterThanDeadline) {
  AnalysisReport report =
      AnalyzeServerConfig(4, 4, 128, 32, /*shed_wait_ms=*/10,
                          /*default_deadline_ms=*/100);
  ASSERT_EQ(report.diagnostics.size(), 1u) << report.ToString();
  EXPECT_EQ(report.diagnostics[0].code, kCodeServerConfig);
  EXPECT_NE(report.diagnostics[0].message.find("shed_wait_ms"),
            std::string::npos);
  // Shed at or above the deadline budget is the intended shape.
  EXPECT_TRUE(AnalyzeServerConfig(4, 4, 128, 32, 100, 100).empty());
  EXPECT_TRUE(AnalyzeServerConfig(4, 4, 128, 32, 10, 0).empty());
}

TEST(AnalyzerServerConfigTest, A020FlagsInvertedOverloadPosture) {
  // degrade >= shed bound: requests are refused before degradation ever
  // engages — exactly the posture the serving layer exists to avoid.
  AnalysisReport report =
      AnalyzeServerConfig(4, 4, /*max_queue_depth=*/100,
                          /*degrade_queue_depth=*/200, 0, 0);
  ASSERT_EQ(report.diagnostics.size(), 1u) << report.ToString();
  EXPECT_NE(report.diagnostics[0].message.find("degrade_queue_depth"),
            std::string::npos);
}

TEST(AnalyzerServerConfigTest, A020FlagsGrossWorkerOversubscription) {
  AnalysisReport report = AnalyzeServerConfig(
      /*workers=*/64, /*hardware_concurrency=*/4, 128, 32, 0, 0);
  ASSERT_EQ(report.diagnostics.size(), 1u) << report.ToString();
  EXPECT_NE(report.diagnostics[0].message.find("workers"), std::string::npos);
  // 4x is the tolerated ceiling; unknown hardware concurrency stays silent.
  EXPECT_TRUE(AnalyzeServerConfig(16, 4, 128, 32, 0, 0).empty());
  EXPECT_TRUE(AnalyzeServerConfig(64, 0, 128, 32, 0, 0).empty());
}

TEST(AnalyzerServerConfigTest, A020FindingsRenderLikeEveryOtherLint) {
  AnalysisReport report = AnalyzeServerConfig(64, 4, 0, 0, 10, 100);
  EXPECT_GE(report.diagnostics.size(), 3u);
  const std::string rendered = RenderReport(report);
  EXPECT_NE(rendered.find("SQO-A020"), std::string::npos);
  EXPECT_NE(rendered.find("warning"), std::string::npos);
}

// --- ExpectedArgumentKind -------------------------------------------------

TEST(AnalyzerTest, ExpectedArgumentKindResolvesAttributeTypes) {
  auto ts = University();
  const datalog::RelationSignature* person = ts.catalog.Find("person");
  ASSERT_NE(person, nullptr);
  EXPECT_EQ(ExpectedArgumentKind(ts, *person, 0), sqo::ValueKind::kOid);
  EXPECT_EQ(ExpectedArgumentKind(ts, *person, 1), sqo::ValueKind::kString);
  EXPECT_EQ(ExpectedArgumentKind(ts, *person, 2), sqo::ValueKind::kInt);
  EXPECT_EQ(ExpectedArgumentKind(ts, *person, 99), std::nullopt);
}

}  // namespace
}  // namespace sqo::analysis
