#include "analysis/verifier.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sqo/derivation.h"
#include "sqo/pipeline.h"
#include "workload/university.h"

namespace sqo::analysis {
namespace {

using core::DerivationStep;
using core::StepKind;
using datalog::Atom;
using datalog::CmpOp;
using datalog::Literal;
using datalog::Term;

// One compiled university pipeline for the whole suite: Create runs ODL
// translation, IC inference and residue compilation, which dominates the
// per-test cost.
const core::Pipeline& UniversityPipeline() {
  static const core::Pipeline* pipeline = [] {
    auto p = workload::MakeUniversityPipeline();
    if (!p.ok()) {
      ADD_FAILURE() << p.status().ToString();
      std::abort();
    }
    return new core::Pipeline(std::move(*p));
  }();
  return *pipeline;
}

VerifierCatalog Catalog() {
  const core::Pipeline& p = UniversityPipeline();
  return VerifierCatalog{&p.schema(), &p.compiled().all_ics,
                         &p.compiled().asrs};
}

bool HasCode(const AnalysisReport& report, std::string_view code) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

// Translates `oql` and returns the original DATALOG query (alternative 0).
datalog::Query Translate(const std::string& oql) {
  auto result = UniversityPipeline().OptimizeText(oql);
  if (!result.ok()) {
    ADD_FAILURE() << result.status().ToString();
    std::abort();
  }
  return result->original_datalog;
}

// The age variable of the (unique) faculty atom in `query` — argument
// position 2 of the faculty relation (oid, name, age, address, salary,
// rank).
Term FacultyAgeVar(const datalog::Query& query) {
  for (const Literal& l : query.body) {
    if (l.positive && l.atom.is_predicate() &&
        l.atom.predicate() == "faculty") {
      return l.atom.args()[2];
    }
  }
  ADD_FAILURE() << "no faculty atom in " << query.ToString();
  std::abort();
}

// The first comparison literal of `query`'s body (the translated where
// guard).
Literal GuardLiteral(const datalog::Query& query) {
  for (const Literal& l : query.body) {
    if (l.positive && l.atom.is_comparison()) return l;
  }
  ADD_FAILURE() << "no comparison in " << query.ToString();
  std::abort();
}

DerivationStep AddComparison(Term lhs, CmpOp op, double c) {
  DerivationStep step;
  step.kind = StepKind::kAddRestriction;
  step.added = {Literal::Pos(
      Atom::Comparison(op, std::move(lhs), Term::Double(c)))};
  step.source = "test";
  step.text = "add_restriction (test)";
  return step;
}

DerivationStep RemoveLiteral(Literal victim) {
  DerivationStep step;
  step.kind = StepKind::kRemoveRestriction;
  step.removed = {std::move(victim)};
  step.source = "test";
  step.text = "remove_restriction (test)";
  return step;
}

constexpr const char* kSalaryScan =
    "select f.name from f in Faculty where f.salary > 30000";

// Every rewriting the optimizer emits for the paper's seed corpus must
// prove sound: zero SQO-A015. (SQO-A016 warnings are allowed — partial ASR
// folds are justified by projection semantics the chase does not model.)
TEST(VerifierTest, SeedCorpusVerifiesSound) {
  const core::Pipeline& pipeline = UniversityPipeline();
  const std::string queries[] = {
      workload::QueryExample2(), workload::QueryScopeReduction(),
      workload::QueryJoinElimination(), workload::QueryAsrDirect(),
      workload::QueryAsrIndirect()};
  size_t alternatives = 0;
  for (const std::string& oql : queries) {
    auto result = pipeline.OptimizeText(oql);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto verification = pipeline.Verify(*result);
    ASSERT_TRUE(verification.ok()) << verification.status().ToString();
    EXPECT_TRUE(verification->all_sound()) << verification->report.ToString();
    EXPECT_EQ(verification->report.error_count(), 0u)
        << verification->report.ToString();
    alternatives += verification->verdicts.size();
  }
  EXPECT_GT(alternatives, 5u);  // more than just the five originals
}

// IC4 (faculty age ≥ 30) justifies adding Age >= 25; the proof must cite
// its IC. This also regression-tests entailment against constants the
// chase never asserted (25 has no solver node — only 30 does).
TEST(VerifierTest, JustifiedRestrictionProves) {
  const datalog::Query original = Translate(kSalaryScan);
  std::vector<DerivationStep> steps = {
      AddComparison(FacultyAgeVar(original), CmpOp::kGe, 25)};
  const datalog::Query rewritten =
      core::ApplyDerivationStep(original, steps[0]);
  AlternativeVerdict verdict = VerifyRewriting(
      Catalog(), original, RewriteCandidate{&rewritten, &steps}, 1);
  EXPECT_TRUE(verdict.sound);
  EXPECT_TRUE(verdict.complete);
  EXPECT_TRUE(verdict.replay_ok);
  EXPECT_FALSE(verdict.dependencies.empty());
}

// Age >= 60 is NOT entailed by the catalog (IC4 only gives >= 30): an
// unjustified addition strengthens the query and must draw SQO-A015.
TEST(VerifierTest, UnjustifiedRestrictionIsA015) {
  const datalog::Query original = Translate(kSalaryScan);
  std::vector<DerivationStep> steps = {
      AddComparison(FacultyAgeVar(original), CmpOp::kGe, 60)};
  const datalog::Query rewritten =
      core::ApplyDerivationStep(original, steps[0]);
  AlternativeVerdict verdict = VerifyRewriting(
      Catalog(), original, RewriteCandidate{&rewritten, &steps}, 1);
  EXPECT_FALSE(verdict.sound);

  AnalysisReport report;
  AppendVerdictDiagnostics(verdict, "test-query", VerifierOptions{}, &report);
  EXPECT_TRUE(HasCode(report, kCodeUnjustifiedRewrite)) << report.ToString();
  EXPECT_GE(report.error_count(), 1u);
}

// Removing the user's Age >= 50 guard is unprovable (the catalog only
// re-derives >= 30): the rewriting may lose answers, which is the
// completeness direction — a warning (SQO-A016), not unsoundness.
TEST(VerifierTest, UnprovenEliminationIsA016Warning) {
  const datalog::Query original =
      Translate("select f.name from f in Faculty where f.age >= 50");
  std::vector<DerivationStep> steps = {RemoveLiteral(GuardLiteral(original))};
  const datalog::Query rewritten =
      core::ApplyDerivationStep(original, steps[0]);
  AlternativeVerdict verdict = VerifyRewriting(
      Catalog(), original, RewriteCandidate{&rewritten, &steps}, 1);
  EXPECT_TRUE(verdict.sound);
  EXPECT_FALSE(verdict.complete);

  AnalysisReport report;
  AppendVerdictDiagnostics(verdict, "test-query", VerifierOptions{}, &report);
  EXPECT_TRUE(HasCode(report, kCodeUnprovenElimination)) << report.ToString();
  EXPECT_EQ(report.error_count(), 0u) << report.ToString();
  EXPECT_GE(report.warning_count(), 1u);
}

// Removing Salary > 30000 IS provable: IC1 re-derives Salary > 40000 on
// any faculty scan, which implies the dropped guard.
TEST(VerifierTest, ProvenEliminationIsComplete) {
  const datalog::Query original = Translate(kSalaryScan);
  std::vector<DerivationStep> steps = {RemoveLiteral(GuardLiteral(original))};
  const datalog::Query rewritten =
      core::ApplyDerivationStep(original, steps[0]);
  AlternativeVerdict verdict = VerifyRewriting(
      Catalog(), original, RewriteCandidate{&rewritten, &steps}, 1);
  EXPECT_TRUE(verdict.sound);
  EXPECT_TRUE(verdict.complete) << "IC1 should re-derive the dropped guard";
  EXPECT_FALSE(verdict.dependencies.empty());
}

// A candidate whose recorded chain does not reproduce its query is a
// provenance lie: replay divergence is SQO-A015 regardless of whether each
// individual step proved.
TEST(VerifierTest, ReplayMismatchIsA015) {
  const datalog::Query original = Translate(kSalaryScan);
  std::vector<DerivationStep> steps = {
      AddComparison(FacultyAgeVar(original), CmpOp::kGe, 25)};
  // Candidate claims the step chain but presents the unmodified query.
  AlternativeVerdict verdict = VerifyRewriting(
      Catalog(), original, RewriteCandidate{&original, &steps}, 1);
  EXPECT_FALSE(verdict.replay_ok);
  EXPECT_FALSE(verdict.sound);

  AnalysisReport report;
  AppendVerdictDiagnostics(verdict, "test-query", VerifierOptions{}, &report);
  EXPECT_TRUE(HasCode(report, kCodeUnjustifiedRewrite)) << report.ToString();
}

// SQO-A017 catalog-dependency notes (the plan-cache invalidation key) are
// emitted per alternative by default and suppressed by dependency_report.
TEST(VerifierTest, DependencyReportToggle) {
  const core::Pipeline& pipeline = UniversityPipeline();
  auto result = pipeline.OptimizeText(workload::QueryScopeReduction());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->alternatives.size(), 1u);

  auto with_notes = pipeline.Verify(*result);
  ASSERT_TRUE(with_notes.ok()) << with_notes.status().ToString();
  EXPECT_GT(with_notes->report.note_count(), 0u)
      << with_notes->report.ToString();
  EXPECT_TRUE(HasCode(with_notes->report, kCodeCatalogDependency));

  VerifierOptions quiet;
  quiet.dependency_report = false;
  auto without_notes = pipeline.Verify(*result, quiet);
  ASSERT_TRUE(without_notes.ok()) << without_notes.status().ToString();
  EXPECT_EQ(without_notes->report.note_count(), 0u)
      << without_notes->report.ToString();
}

}  // namespace
}  // namespace sqo::analysis
