#include "workload/chaos.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>

#include "common/failpoint.h"
#include "../storage/storage_test_util.h"

/// Crash-under-concurrent-traffic chaos: every iteration forks a child that
/// starts a server::Server over a real database directory, runs N client
/// threads submitting their own mutation scripts through sessions (plus a
/// snapshot-read mix), kills the child mid-traffic via the usual mechanism
/// matrix — failpoint error, torn write, failed fsync, SIGKILL, or a
/// serving-layer reply fault — then reopens the directory and checks each
/// client's acked prefix against its own oracle replay, and the baseline
/// population byte for byte. Knobs:
///
///   SQO_SERVING_CHAOS_ITERS    iterations (default 8 here; CI sets 200+)
///   SQO_SERVING_CHAOS_SEED     base seed (default 20260809)
///   SQO_SERVING_CHAOS_CLIENTS  concurrent client threads (default 8)
namespace sqo::workload {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtoull(raw, nullptr, 10);
}

const char* ModeName(ChaosCrashMode mode) {
  switch (mode) {
    case ChaosCrashMode::kFailpointError:
      return "failpoint-error";
    case ChaosCrashMode::kTornWriteCrash:
      return "torn-write-crash";
    case ChaosCrashMode::kFsyncCrash:
      return "fsync-crash";
    case ChaosCrashMode::kKillMidTraffic:
      return "kill-mid-traffic";
  }
  return "?";
}

class ServingChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DeactivateAll(); }
  void TearDown() override { failpoint::DeactivateAll(); }

  ConcurrentChaosOptions MakeOptions(uint64_t seed, uint64_t i) {
    std::mt19937_64 rng(seed + i * 6151);
    ConcurrentChaosOptions options;
    options.seed = seed + i;
    options.clients = EnvOr("SQO_SERVING_CHAOS_CLIENTS", 8);
    options.ops_per_client = 10;
    options.dir = storage_test::FreshDir("serving_chaos_" + std::to_string(i));
    options.pipeline = &storage_test::UniversityPipeline();
    options.data = storage_test::SmallConfig();
    options.mode = static_cast<ChaosCrashMode>(i % 4);
    options.group_commit = (rng() % 4) != 0;  // mostly on, inline arm too
    options.server_workers = 2;
    options.query_every = 4;
    const uint64_t total_ops = options.clients * options.ops_per_client;
    switch (options.mode) {
      case ChaosCrashMode::kFailpointError:
        // Small enough to land during traffic; seed%3==2 iterations arm
        // the serving-layer "server.reply" site instead of a storage one.
        options.crash_point = rng() % (total_ops / 2 + 1);
        break;
      case ChaosCrashMode::kTornWriteCrash:
        options.crash_point = 512 + rng() % 24000;
        break;
      case ChaosCrashMode::kFsyncCrash:
        options.crash_point = rng() % 40;
        break;
      case ChaosCrashMode::kKillMidTraffic:
        options.crash_point = rng() % total_ops;
        break;
    }
    return options;
  }
};

TEST_F(ServingChaosTest, ConcurrentKillNeverLosesAnAcknowledgedWrite) {
  const uint64_t iters = EnvOr("SQO_SERVING_CHAOS_ITERS", 8);
  const uint64_t seed = EnvOr("SQO_SERVING_CHAOS_SEED", 20260809);
  uint64_t crashed = 0;

  for (uint64_t i = 0; i < iters; ++i) {
    const ConcurrentChaosOptions options = MakeOptions(seed, i);
    SCOPED_TRACE("iteration " + std::to_string(i) + " seed " +
                 std::to_string(options.seed) + " clients " +
                 std::to_string(options.clients) + " mode " +
                 ModeName(options.mode) + " crash_point " +
                 std::to_string(options.crash_point));
    auto outcome = RunConcurrentChaosIteration(options);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (outcome->child_crashed) ++crashed;
    EXPECT_TRUE(outcome->consistent)
        << "total_acked=" << outcome->total_acked
        << " exit=" << outcome->child_exit_code << " " << outcome->detail;
    EXPECT_FALSE(outcome->degraded) << outcome->detail;
  }
  // The matrix must actually kill children; an all-survivors run means the
  // crash coordinates regressed into no-ops.
  if (iters >= 8) EXPECT_GT(crashed, 0u);
}

TEST_F(ServingChaosTest, CleanRunMatchesEveryClientOracleExactly) {
  // No crash mechanism at all: every client completes its script, so every
  // per-client projection must match its full oracle replay with zero
  // slack, and the child must exit cleanly.
  ConcurrentChaosOptions options;
  options.seed = EnvOr("SQO_SERVING_CHAOS_SEED", 20260809) + 977;
  options.clients = 4;
  options.ops_per_client = 8;
  options.dir = storage_test::FreshDir("serving_chaos_clean");
  options.pipeline = &storage_test::UniversityPipeline();
  options.data = storage_test::SmallConfig();
  options.mode = ChaosCrashMode::kKillMidTraffic;
  options.crash_point = 10'000'000;  // far beyond the script: never kills
  options.server_workers = 2;

  auto outcome = RunConcurrentChaosIteration(options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->child_crashed);
  EXPECT_TRUE(outcome->consistent) << outcome->detail;
  EXPECT_EQ(outcome->total_acked, 4u * 8u);
  for (uint64_t acked : outcome->acked) EXPECT_EQ(acked, 8u);
}

}  // namespace
}  // namespace sqo::workload
