#include "server/server.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"
#include "common/value.h"
#include "workload/university.h"
#include "../storage/storage_test_util.h"

/// Server unit tests: the request lifecycle (admit -> per-session FIFO ->
/// dispatch -> execute -> reply), admission control and load shedding,
/// overload degradation, deadline/cancellation governance, the serving
/// failpoints and the SQO-A020 config lint.
namespace sqo::server {
namespace {

constexpr char kYoungQuery[] =
    "select x.name from x in Person where x.age < 30";

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DeactivateAll();
    primary_ = storage_test::MakePopulatedDb();
  }
  void TearDown() override { failpoint::DeactivateAll(); }

  ServerConfig BaseConfig() {
    ServerConfig config;
    config.workers = 2;
    config.replicas = 2;
    config.replica_setup = workload::SetupUniversityRuntime;
    return config;
  }

  std::unique_ptr<Server> StartServer(ServerConfig config) {
    auto server = std::make_unique<Server>(&storage_test::UniversityPipeline(),
                                           primary_.get(), std::move(config));
    EXPECT_TRUE(server->Start().ok());
    return server;
  }

  /// A mutation op that blocks until `gate` opens — parks the worker so
  /// tests can pile requests up behind it deterministically.
  static std::function<sqo::Status(engine::Database*)> Blocker(
      std::shared_future<void> gate) {
    return [gate](engine::Database*) {
      gate.wait();
      return sqo::Status::Ok();
    };
  }

  static bool HasRow(const QueryResponse& response, const std::string& name) {
    for (const auto& row : response.rows) {
      for (const sqo::Value& v : row) {
        if (v == Value::String(name)) return true;
      }
    }
    return false;
  }

  std::unique_ptr<engine::Database> primary_;
};

TEST_F(ServerTest, ServesSnapshotQueriesAfterStart) {
  auto server = StartServer(BaseConfig());
  EXPECT_TRUE(server->started());
  EXPECT_TRUE(server->lint().empty()) << server->lint().ToString();

  auto session = server->OpenSession("reader");
  QueryResponse response = session->Query(kYoungQuery);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.epoch, 1u);
  EXPECT_FALSE(response.degraded);
  EXPECT_GE(response.n_alternatives, 1u);
}

TEST_F(ServerTest, MutationsPublishAndBecomeVisibleToLaterQueries) {
  auto server = StartServer(BaseConfig());
  auto session = server->OpenSession("writer");

  QueryResponse before = session->Query(kYoungQuery);
  ASSERT_TRUE(before.status.ok());
  EXPECT_FALSE(HasRow(before, "srv_young"));

  ASSERT_TRUE(session
                  ->Mutate([](engine::Database* db) {
                    return db->store()
                        .CreateObject("Person",
                                      {{"name", Value::String("srv_young")},
                                       {"age", Value::Int(5)}})
                        .status();
                  })
                  .ok());

  QueryResponse after = session->Query(kYoungQuery);
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_TRUE(HasRow(after, "srv_young"));
  // The primary itself never served the read; the epoch replica did.
  EXPECT_EQ(server->epochs().published_epoch(), 2u);
}

TEST_F(ServerTest, RequestsOnOneSessionRunInSubmissionOrder) {
  ServerConfig config = BaseConfig();
  config.workers = 4;  // FIFO must hold even with spare workers
  auto server = StartServer(config);
  auto session = server->OpenSession("fifo");

  std::mutex mu;
  std::vector<int> order;
  std::vector<ReplyRef> replies;
  for (int i = 0; i < 12; ++i) {
    replies.push_back(session->SubmitMutation([&mu, &order, i](engine::Database*) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
      return sqo::Status::Ok();
    }));
  }
  for (auto& reply : replies) EXPECT_TRUE(reply->Wait().status.ok());
  ASSERT_EQ(order.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(ServerTest, ShedsWithRetryAfterAtTheQueueBound) {
  ServerConfig config = BaseConfig();
  config.workers = 1;
  config.max_queue_depth = 1;
  config.retry_after_ms = 7;
  auto server = StartServer(config);
  auto session = server->OpenSession("shed");

  std::promise<void> gate;
  ReplyRef blocked = session->SubmitMutation(Blocker(gate.get_future().share()));

  // The blocker occupies the whole admission budget: the next request is
  // shed immediately, with the retry hint, without ever queueing.
  ReplyRef shed = session->SubmitQuery(kYoungQuery);
  ASSERT_TRUE(shed->done());
  const QueryResponse& response = shed->Wait();
  EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted)
      << response.status.ToString();
  EXPECT_EQ(response.retry_after_ms, 7u);

  gate.set_value();
  EXPECT_TRUE(blocked->Wait().status.ok());
  EXPECT_GE(server->MetricsSnapshot().CounterValue("server.shed"), 1u);
}

TEST_F(ServerTest, DegradesQueriesAboveTheOverloadThreshold) {
  ServerConfig config = BaseConfig();
  config.degrade_queue_depth = 0;  // every in-flight query counts as overload
  auto server = StartServer(config);
  auto session = server->OpenSession("degraded");

  ASSERT_TRUE(session
                  ->Mutate([](engine::Database* db) {
                    return db->store()
                        .CreateObject("Person",
                                      {{"name", Value::String("srv_young")},
                                       {"age", Value::Int(5)}})
                        .status();
                  })
                  .ok());

  QueryResponse response = session->Query(kYoungQuery);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.degraded);
  EXPECT_NE(response.degradation_reason.find("overload"), std::string::npos);
  EXPECT_EQ(response.n_alternatives, 1u);  // the original query only
  // Fail-open: degraded still means correct rows, just unoptimized.
  EXPECT_TRUE(HasRow(response, "srv_young"));
  EXPECT_GE(server->MetricsSnapshot().CounterValue("server.degraded_overload"),
            1u);
}

TEST_F(ServerTest, DeadlineExpiredWhileQueuedIsRejectedWithoutWork) {
  ServerConfig config = BaseConfig();
  config.workers = 1;
  auto server = StartServer(config);
  auto session = server->OpenSession("deadline");

  std::promise<void> gate;
  ReplyRef blocked = session->SubmitMutation(Blocker(gate.get_future().share()));
  // 1ms of deadline, >=50ms stuck in the queue: the dispatch check must
  // reject it before any optimizer/evaluator work runs.
  ReplyRef late = session->SubmitQuery(kYoungQuery, /*deadline_ms=*/1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.set_value();

  const QueryResponse& response = late->Wait();
  EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted)
      << response.status.ToString();
  EXPECT_TRUE(blocked->Wait().status.ok());
  EXPECT_GE(server->MetricsSnapshot().CounterValue("server.expired_in_queue"),
            1u);

  // The rejection is journaled as a cancelled event on the session.
  bool saw_cancelled = false;
  for (const obs::QueryEvent& event : session->JournalSnapshot()) {
    saw_cancelled |= event.cancelled;
  }
  EXPECT_TRUE(saw_cancelled);
}

TEST_F(ServerTest, CancelAllCancelsQueuedRequestsInFifoOrder) {
  ServerConfig config = BaseConfig();
  config.workers = 1;
  auto server = StartServer(config);
  auto session = server->OpenSession("cancel");

  std::promise<void> running;
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  ReplyRef blocked = session->SubmitMutation([&running, opened](engine::Database*) {
    running.set_value();
    opened.wait();
    return sqo::Status::Ok();
  });
  // Only cancel once the blocker is in flight (past its dispatch check):
  // CancelAll on a still-queued request cancels it too, by design.
  running.get_future().wait();
  ReplyRef q1 = session->SubmitQuery(kYoungQuery);
  ReplyRef q2 = session->SubmitQuery(kYoungQuery);

  session->CancelAll();
  gate.set_value();

  EXPECT_EQ(q1->Wait().status.code(), StatusCode::kCancelled)
      << q1->Wait().status.ToString();
  EXPECT_EQ(q2->Wait().status.code(), StatusCode::kCancelled);
  // The blocker ignores its cancellation flag and completes normally —
  // cancellation is cooperative, never preemptive.
  EXPECT_TRUE(blocked->Wait().status.ok());
}

TEST_F(ServerTest, EnqueueFailpointShedsAtAdmission) {
  auto server = StartServer(BaseConfig());
  auto session = server->OpenSession("fp-enqueue");

  failpoint::Activate("server.enqueue", failpoint::Action{});
  ReplyRef reply = session->SubmitQuery(kYoungQuery);
  ASSERT_TRUE(reply->done());
  EXPECT_FALSE(reply->Wait().status.ok());
  EXPECT_GT(reply->Wait().retry_after_ms, 0u);
  failpoint::Deactivate("server.enqueue");

  EXPECT_TRUE(session->Query(kYoungQuery).status.ok());
  EXPECT_GE(server->MetricsSnapshot().CounterValue("server.enqueue_faults"),
            1u);
}

TEST_F(ServerTest, DispatchFailpointFailsTheRequestOnTheWorker) {
  auto server = StartServer(BaseConfig());
  auto session = server->OpenSession("fp-dispatch");

  failpoint::Activate("server.dispatch",
                      failpoint::Action{.max_trips = 1});
  QueryResponse response = session->Query(kYoungQuery);
  EXPECT_FALSE(response.status.ok());
  EXPECT_TRUE(response.rows.empty());
  EXPECT_GE(server->MetricsSnapshot().CounterValue("server.dispatch_faults"),
            1u);
  EXPECT_TRUE(session->Query(kYoungQuery).status.ok());  // dormant after 1
}

TEST_F(ServerTest, ReplyFailpointSurfacesAsTheRequestStatus) {
  auto server = StartServer(BaseConfig());
  auto session = server->OpenSession("fp-reply");

  failpoint::Activate("server.reply", failpoint::Action{.max_trips = 1});
  QueryResponse response = session->Query(kYoungQuery);
  // The work ran, but the reply channel faulted: the client sees the
  // fault, no rows, and must treat the request as unacknowledged.
  EXPECT_FALSE(response.status.ok());
  EXPECT_TRUE(response.rows.empty());
  EXPECT_GE(server->MetricsSnapshot().CounterValue("server.reply_faults"), 1u);
  EXPECT_TRUE(session->Query(kYoungQuery).status.ok());
}

TEST_F(ServerTest, LintFlagsConfigThatDefeatsTheOverloadPosture) {
  ServerConfig config = BaseConfig();
  config.max_queue_depth = 100;
  config.degrade_queue_depth = 200;  // degradation can never engage
  config.shed_wait_ms = 10;
  config.default_deadline_ms = 100;  // sheds before the deadline it promises
  auto server = StartServer(std::move(config));

  ASSERT_GE(server->lint().diagnostics.size(), 2u)
      << server->lint().ToString();
  for (const analysis::Diagnostic& d : server->lint().diagnostics) {
    EXPECT_EQ(d.code, std::string(analysis::kCodeServerConfig));
  }
  // A sane config lints clean (covered by ServesSnapshotQueriesAfterStart).
}

TEST_F(ServerTest, StopShedsQueuedWorkAndRefusesNewRequests) {
  ServerConfig config = BaseConfig();
  config.workers = 1;
  auto server = StartServer(config);
  auto session = server->OpenSession("stop");

  std::promise<void> gate;
  ReplyRef blocked = session->SubmitMutation(Blocker(gate.get_future().share()));
  ReplyRef queued = session->SubmitQuery(kYoungQuery);

  std::thread stopper([&] { server->Stop(); });
  // Stop drains the queue immediately, then waits for the in-flight op.
  const QueryResponse& drained = queued->Wait();
  EXPECT_EQ(drained.status.code(), StatusCode::kResourceExhausted)
      << drained.status.ToString();
  gate.set_value();
  stopper.join();

  EXPECT_TRUE(blocked->Wait().status.ok());
  EXPECT_FALSE(server->started());
  ReplyRef refused = session->SubmitQuery(kYoungQuery);
  ASSERT_TRUE(refused->done());
  EXPECT_EQ(refused->Wait().status.code(), StatusCode::kInvalidArgument);
  server->Stop();  // idempotent
}

TEST_F(ServerTest, SessionsOwnTheirObservability) {
  ServerConfig config = BaseConfig();
  config.slow_threshold_ns = 1;  // every query is journal-slow
  auto server = StartServer(config);
  auto a = server->OpenSession("obs-a");
  auto b = server->OpenSession("obs-b");

  ASSERT_TRUE(a->Query(kYoungQuery).status.ok());
  ASSERT_TRUE(a->Query(kYoungQuery).status.ok());
  ASSERT_TRUE(b->Query(kYoungQuery).status.ok());

  EXPECT_EQ(a->JournalSnapshot().size(), 2u);
  EXPECT_EQ(b->JournalSnapshot().size(), 1u);
  EXPECT_EQ(a->Latency().count, 2u);
  EXPECT_EQ(server->Latency().count, 3u);
  const obs::QueryEvent last = b->JournalSnapshot().back();
  EXPECT_EQ(last.query, kYoungQuery);
  EXPECT_FALSE(last.fingerprint.empty());
  EXPECT_TRUE(last.slow);
}

TEST_F(ServerTest, ConcurrentSessionsServeWhileAWriterPublishes) {
  // Sanity end-to-end: readers on their own sessions never fail while a
  // writer session streams mutations and publishes epochs.
  auto server = StartServer(BaseConfig());
  auto writer = server->OpenSession("writer");

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      auto session = server->OpenSession("reader-" + std::to_string(r));
      while (!stop.load()) {
        QueryResponse response = session->Query(kYoungQuery);
        if (!response.status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer
                    ->Mutate([i](engine::Database* db) {
                      return db->store()
                          .CreateObject(
                              "Person",
                              {{"name",
                                Value::String("w" + std::to_string(i))},
                               {"age", Value::Int(20 + i)}})
                          .status();
                    })
                    .ok());
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server->epochs().published_epoch(), 2u);
}

}  // namespace
}  // namespace sqo::server
