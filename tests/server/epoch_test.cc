#include "server/epoch.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/value.h"
#include "engine/database.h"
#include "workload/university.h"
#include "../storage/storage_test_util.h"

/// EpochStore unit tests: bootstrap fidelity, snapshot isolation across
/// publishes, the skip-not-block posture when every replica is pinned, and
/// the `server.epoch_publish` failpoint.
namespace sqo::server {
namespace {

using storage_test::StateSignature;

class EpochTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DeactivateAll();
    primary_ = storage_test::MakePopulatedDb();
  }
  void TearDown() override {
    // The listener captures `epochs_`; drop it before the store dies.
    primary_->store().SetMutationListener(nullptr);
    failpoint::DeactivateAll();
  }

  /// An initialized EpochStore whose journal is fed by the primary's
  /// mutation listener — the same wiring Server::Start installs (minus
  /// the WAL leg; these tests run storage-free).
  std::unique_ptr<EpochStore> MakeEpochs(size_t replicas) {
    EpochStore::Options options;
    options.replicas = replicas;
    options.replica_setup = workload::SetupUniversityRuntime;
    auto epochs = std::make_unique<EpochStore>(
        &storage_test::UniversityPipeline().schema(), options);
    EXPECT_TRUE(epochs->Initialize(primary_.get()).ok());
    EpochStore* raw = epochs.get();
    primary_->store().SetMutationListener(
        [raw](const std::vector<engine::Mutation>& batch) {
          raw->Append(batch);
          return sqo::Status::Ok();
        });
    return epochs;
  }

  sqo::Status CreatePerson(const std::string& name, int age) {
    return primary_->store()
        .CreateObject("Person", {{"name", Value::String(name)},
                                 {"age", Value::Int(age)}})
        .status();
  }

  std::unique_ptr<engine::Database> primary_;
};

TEST_F(EpochTest, PinBeforeInitializeReturnsNull) {
  EpochStore::Options options;
  options.replica_setup = workload::SetupUniversityRuntime;
  EpochStore epochs(&storage_test::UniversityPipeline().schema(), options);
  EXPECT_EQ(epochs.Pin(), nullptr);
  EXPECT_EQ(epochs.published_epoch(), 0u);
}

TEST_F(EpochTest, BootstrapReproducesThePrimaryExactly) {
  auto epochs = MakeEpochs(2);
  EXPECT_EQ(epochs->published_epoch(), 1u);

  EpochStore::SnapshotRef snapshot = epochs->Pin();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->epoch(), 1u);
  // OID-exact, relations, ASR extents and the OID allocator all match:
  // the snapshot answers every query the primary would.
  EXPECT_EQ(StateSignature(snapshot->db().store()),
            StateSignature(primary_->store()));
}

TEST_F(EpochTest, PublishMakesAckedWritesVisibleWithoutDisturbingPins) {
  auto epochs = MakeEpochs(2);
  EpochStore::SnapshotRef before = epochs->Pin();
  const std::string before_sig = StateSignature(before->db().store());

  ASSERT_TRUE(CreatePerson("epoch_new", 19).ok());
  EXPECT_EQ(epochs->appended_batches(), 1u);
  // Not yet published: readers still pin the old epoch.
  EXPECT_EQ(epochs->Pin()->epoch(), 1u);

  ASSERT_TRUE(epochs->Publish().ok());
  EpochStore::SnapshotRef after = epochs->Pin();
  EXPECT_EQ(after->epoch(), 2u);
  EXPECT_EQ(StateSignature(after->db().store()),
            StateSignature(primary_->store()));

  // Snapshot isolation: the pinned pre-publish epoch is untouched.
  EXPECT_EQ(StateSignature(before->db().store()), before_sig);
  EXPECT_NE(before_sig, StateSignature(after->db().store()));
}

TEST_F(EpochTest, PublishAtTipIsANoOp) {
  auto epochs = MakeEpochs(2);
  ASSERT_TRUE(epochs->Publish().ok());
  EXPECT_EQ(epochs->published_epoch(), 1u);
  EXPECT_EQ(epochs->publish_skips(), 0u);
}

TEST_F(EpochTest, PublishSkipsWhenEveryReplicaIsPinnedThenCatchesUp) {
  auto epochs = MakeEpochs(1);
  EpochStore::SnapshotRef pin = epochs->Pin();

  ASSERT_TRUE(CreatePerson("skipped", 21).ok());
  ASSERT_TRUE(epochs->Publish().ok());  // skip, not block and not fail
  EXPECT_EQ(epochs->published_epoch(), 1u);
  EXPECT_EQ(epochs->publish_skips(), 1u);
  EXPECT_GE(epochs->retained_batches(), 1u);

  // Readers serve the bounded-stale epoch meanwhile.
  EXPECT_EQ(pin->epoch(), 1u);

  // Releasing the pin lets the next publish replay the whole suffix.
  pin.reset();
  ASSERT_TRUE(epochs->Publish().ok());
  EXPECT_EQ(epochs->published_epoch(), 2u);
  EXPECT_EQ(StateSignature(epochs->Pin()->db().store()),
            StateSignature(primary_->store()));
  EXPECT_EQ(epochs->retained_batches(), 0u);
}

TEST_F(EpochTest, FailpointTurnsPublishIntoASkip) {
  auto epochs = MakeEpochs(2);
  ASSERT_TRUE(CreatePerson("faulted", 33).ok());

  failpoint::Activate("server.epoch_publish", failpoint::Action{});
  ASSERT_TRUE(epochs->Publish().ok());
  EXPECT_EQ(epochs->published_epoch(), 1u);
  EXPECT_EQ(epochs->publish_skips(), 1u);

  failpoint::Deactivate("server.epoch_publish");
  ASSERT_TRUE(epochs->Publish().ok());
  EXPECT_EQ(epochs->published_epoch(), 2u);
  EXPECT_EQ(StateSignature(epochs->Pin()->db().store()),
            StateSignature(primary_->store()));
}

TEST_F(EpochTest, ManyPublishesConvergeAcrossTheReplicaPool) {
  // Alternating writes and publishes cycles through both replicas; each
  // published epoch must equal the primary at its publish point.
  auto epochs = MakeEpochs(2);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(CreatePerson("cycle_" + std::to_string(i), 20 + i).ok());
    ASSERT_TRUE(epochs->Publish().ok());
    EXPECT_EQ(epochs->published_epoch(), static_cast<uint64_t>(i + 2));
    EXPECT_EQ(StateSignature(epochs->Pin()->db().store()),
              StateSignature(primary_->store()));
  }
  EXPECT_EQ(epochs->appended_batches(), 6u);
}

TEST_F(EpochTest, SnapshotServesQueriesWhilePrimaryMutates) {
  auto epochs = MakeEpochs(2);
  EpochStore::SnapshotRef snapshot = epochs->Pin();
  const size_t persons_at_pin = snapshot->db().store().ExtentSize("person");

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(CreatePerson("mut_" + std::to_string(i), 40 + i).ok());
    ASSERT_TRUE(epochs->Publish().ok());
  }
  // The pinned view still reports the extent size from its epoch.
  EXPECT_EQ(snapshot->db().store().ExtentSize("person"), persons_at_pin);
  EXPECT_EQ(primary_->store().ExtentSize("person"), persons_at_pin + 3);
}

}  // namespace
}  // namespace sqo::server
