#include "workload/university.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "engine/database.h"

namespace sqo::workload {
namespace {

class UniversityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pipeline = MakeUniversityPipeline();
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    pipeline_ = std::make_unique<core::Pipeline>(std::move(pipeline).value());
    db_ = std::make_unique<engine::Database>(&pipeline_->schema());
    ASSERT_TRUE(PopulateUniversity(config_, *pipeline_, db_.get()).ok());
  }

  std::vector<std::vector<sqo::Value>> Run(const std::string& text) {
    auto q = datalog::ParseQueryText(text, &pipeline_->schema().catalog);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    auto rows = db_->Run(*q);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? *rows : std::vector<std::vector<sqo::Value>>{};
  }

  GeneratorConfig config_;
  std::unique_ptr<core::Pipeline> pipeline_;
  std::unique_ptr<engine::Database> db_;
};

TEST_F(UniversityTest, ExtentSizesMatchConfig) {
  const size_t sections = config_.n_courses * config_.sections_per_course;
  EXPECT_EQ(db_->store().ExtentSize("faculty"), config_.n_faculty);
  EXPECT_EQ(db_->store().ExtentSize("course"), config_.n_courses);
  EXPECT_EQ(db_->store().ExtentSize("section"), sections);
  EXPECT_EQ(db_->store().ExtentSize("ta"), sections);  // one TA per section
  EXPECT_EQ(db_->store().ExtentSize("student"), config_.n_students + sections);
  EXPECT_EQ(db_->store().ExtentSize("person"),
            config_.n_plain_persons + config_.n_students + sections +
                config_.n_faculty);
}

TEST_F(UniversityTest, DataHonoursIc1FacultySalaries) {
  // IC1: every faculty salary exceeds 40K — no violating row exists.
  EXPECT_TRUE(Run("q(X) :- faculty(oid: X, salary: S), S <= 40K.").empty());
}

TEST_F(UniversityTest, DataHonoursIc4FacultyAges) {
  EXPECT_TRUE(Run("q(X) :- faculty(oid: X, age: A), A < 30.").empty());
}

TEST_F(UniversityTest, DataHonoursKeyOnPersonName) {
  auto dupes = Run(
      "q(X, Y) :- person(oid: X, name: N), person(oid: Y, name: N2), "
      "N = N2, X != Y.");
  EXPECT_TRUE(dupes.empty());
}

TEST_F(UniversityTest, DataHonoursIc9EverySectionTakenHasTa) {
  auto violations = Run(
      "q(V) :- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V), "
      "not has_ta(V, _).");
  EXPECT_TRUE(violations.empty());
}

TEST_F(UniversityTest, HasTaIsOneToOne) {
  EXPECT_TRUE(Run("q(V) :- has_ta(V, W1), has_ta(V, W2), W1 != W2.").empty());
  EXPECT_TRUE(Run("q(W) :- has_ta(V1, W), has_ta(V2, W), V1 != V2.").empty());
}

TEST_F(UniversityTest, InverseRelationshipsConsistent) {
  EXPECT_TRUE(Run("q(X, Y) :- takes(X, Y), not is_taken_by(Y, X).").empty());
  EXPECT_TRUE(Run("q(X, Y) :- is_taken_by(Y, X), not takes(X, Y).").empty());
}

TEST_F(UniversityTest, PaperNamesExist) {
  EXPECT_EQ(Run("q(X) :- student(oid: X, name: \"john\").").size(), 1u);
  EXPECT_EQ(Run("q(X) :- student(oid: X, name: \"james\").").size(), 1u);
  EXPECT_EQ(Run("q(X) :- student(oid: X, name: \"johnson\").").size(), 1u);
}

TEST_F(UniversityTest, TaxesWithheldMatchesDeclaredPointSemantics) {
  // The registered method is salary * rate (consistent with the point fact
  // taxes_withheld(30K, 10%) = 3000).
  auto rows = Run(
      "q(S, V) :- faculty(oid: X, salary: S), taxes_withheld(X, 10%, V).");
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    EXPECT_NEAR(row[1].AsNumeric(), row[0].AsNumeric() * 0.1, 1e-9);
  }
}

TEST_F(UniversityTest, AsrMaterializationMatchesPathJoin) {
  auto path = Run(
      "q(X, W) :- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V), "
      "has_ta(V, W).");
  auto asr = Run("q(X, W) :- asr_student_ta(X, W).");
  EXPECT_EQ(path.size(), asr.size());
  EXPECT_FALSE(asr.empty());
}

TEST_F(UniversityTest, GenerationIsDeterministic) {
  engine::Database db2(&pipeline_->schema());
  ASSERT_TRUE(PopulateUniversity(config_, *pipeline_, &db2).ok());
  EXPECT_EQ(db_->store().object_count(), db2.store().object_count());
  EXPECT_EQ(db_->store().PairCount("takes"), db2.store().PairCount("takes"));
}

TEST_F(UniversityTest, DifferentSeedsDiffer) {
  GeneratorConfig other = config_;
  other.seed = 99;
  engine::Database db2(&pipeline_->schema());
  ASSERT_TRUE(PopulateUniversity(other, *pipeline_, &db2).ok());
  // Same counts (structure is config-driven) but different ages overall.
  auto q = datalog::ParseQueryText("q(X, A) :- person(oid: X, age: A).",
                                   &pipeline_->schema().catalog);
  ASSERT_TRUE(q.ok());
  auto a = db_->Run(*q);
  auto b = db2.Run(*q);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
}

TEST_F(UniversityTest, ScalesWithConfig) {
  GeneratorConfig big = config_;
  big.n_students = config_.n_students * 2;
  engine::Database db2(&pipeline_->schema());
  ASSERT_TRUE(PopulateUniversity(big, *pipeline_, &db2).ok());
  EXPECT_GT(db2.store().ExtentSize("student"),
            db_->store().ExtentSize("student"));
}

TEST_F(UniversityTest, RejectsZeroFaculty) {
  GeneratorConfig bad = config_;
  bad.n_faculty = 0;
  engine::Database db2(&pipeline_->schema());
  EXPECT_FALSE(PopulateUniversity(bad, *pipeline_, &db2).ok());
}

}  // namespace
}  // namespace sqo::workload
