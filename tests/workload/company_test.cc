// The company workload proves the optimizer is schema-independent: the
// same §5-style optimizations emerge from a completely different ODL
// schema (self-referential reporting, a two-hop ASR, a different method).

#include "workload/company.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/parser.h"
#include "engine/constraint_checker.h"
#include "engine/cost_model.h"

namespace sqo::workload {
namespace {

class CompanyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pipeline = MakeCompanyPipeline();
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    pipeline_ = std::make_unique<core::Pipeline>(std::move(pipeline).value());
    db_ = std::make_unique<engine::Database>(&pipeline_->schema());
    ASSERT_TRUE(PopulateCompany(CompanyConfig{}, *pipeline_, db_.get()).ok());
    cost_model_ = std::make_unique<engine::EngineCostModel>(&db_->store());
  }

  core::PipelineResult Optimize(const std::string& oql) {
    auto result = pipeline_->OptimizeText(oql, cost_model_.get());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::unique_ptr<core::Pipeline> pipeline_;
  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<engine::EngineCostModel> cost_model_;
};

TEST_F(CompanyTest, SchemaTranslates) {
  EXPECT_NE(pipeline_->schema().catalog.Find("staff"), nullptr);
  EXPECT_NE(pipeline_->schema().catalog.Find("manager"), nullptr);
  EXPECT_NE(pipeline_->schema().catalog.Find("reports_to"), nullptr);
  EXPECT_NE(pipeline_->schema().catalog.Find("asr_staff_department"), nullptr);
  // leads/head is one-to-one.
  const datalog::RelationSignature* head =
      pipeline_->schema().catalog.Find("head");
  ASSERT_NE(head, nullptr);
  EXPECT_TRUE(head->functional_src_to_dst);
  EXPECT_TRUE(head->functional_dst_to_src);
}

TEST_F(CompanyTest, GeneratedDataConsistent) {
  auto report = engine::CheckConstraints(*db_, pipeline_->compiled().all_ics,
                                         /*max_violations=*/4);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const engine::Violation& v : report->violations) {
    ADD_FAILURE() << v.ToString();
  }
}

TEST_F(CompanyTest, MethodBoundContradictionDetected) {
  // Managers are level ≥ 5 and bonus is increasing in level with
  // bonus(5, 2.0) = 10, so a manager bonus below 10 is impossible.
  core::PipelineResult result =
      Optimize("select m.name from m in Manager where m.bonus(2.0) < 10");
  EXPECT_TRUE(result.contradiction) << result.original_datalog.ToString();
}

TEST_F(CompanyTest, NoFalseContradictionForStaff) {
  // Plain staff can be level 1: bonus(2.0) = 2 < 10 is possible.
  core::PipelineResult result =
      Optimize("select s.name from s in Staff where s.bonus(2.0) < 10");
  EXPECT_FALSE(result.contradiction);
  auto rows = db_->Run(result.original_datalog);
  ASSERT_TRUE(rows.ok());
  EXPECT_FALSE(rows->empty());
}

TEST_F(CompanyTest, ScopeReductionExcludesManagers) {
  // Level < 5 implies not a manager (MIC1 via contrapositive).
  core::PipelineResult result =
      Optimize("select s.name from s in Staff where s.level < 5");
  bool not_manager = false;
  for (const core::Alternative& alt : result.alternatives) {
    for (const datalog::Literal& lit : alt.datalog.body) {
      if (!lit.positive && lit.atom.is_predicate() &&
          lit.atom.predicate() == "manager") {
        not_manager = true;
      }
    }
  }
  EXPECT_TRUE(not_manager);
}

TEST_F(CompanyTest, AsrFoldOnTwoHopPath) {
  core::PipelineResult result = Optimize(
      "select d from s in Staff, p in s.assigned, d in p.owned_by "
      "where s.badge = \"S3\"");
  bool folded = false;
  for (const core::Alternative& alt : result.alternatives) {
    bool has_asr = false, has_assigned = false;
    for (const datalog::Literal& lit : alt.datalog.body) {
      if (!lit.atom.is_predicate()) continue;
      if (lit.atom.predicate() == "asr_staff_department") has_asr = true;
      if (lit.atom.predicate() == "assigned") has_assigned = true;
    }
    if (has_asr && !has_assigned) folded = true;
  }
  EXPECT_TRUE(folded);
}

TEST_F(CompanyTest, KeyJoinEliminationOnDname) {
  core::PipelineResult result = Optimize(
      "select s.name, t.name from s in Staff, d1 in s.works_in, "
      "t in Staff, d2 in t.works_in where d1.dname = d2.dname");
  // Key on dname: some rewriting unifies the two department variables.
  bool merged = false;
  for (const core::Alternative& alt : result.alternatives) {
    std::vector<datalog::Term> targets;
    for (const datalog::Literal& lit : alt.datalog.body) {
      if (lit.atom.is_predicate() && lit.atom.predicate() == "works_in") {
        targets.push_back(lit.atom.args()[1]);
      }
    }
    if (targets.size() == 2 && targets[0] == targets[1]) merged = true;
  }
  EXPECT_TRUE(merged);
}

TEST_F(CompanyTest, SelfReferentialReporting) {
  // Managers report to managers too? No — reports_to was only populated
  // for plain staff; query equivalence across alternatives still holds.
  core::PipelineResult result = Optimize(
      "select s.name from s in Staff, m in s.reports_to "
      "where m.level >= 5");
  auto expected = db_->Run(result.original_datalog);
  ASSERT_TRUE(expected.ok());
  for (const core::Alternative& alt : result.alternatives) {
    auto rows = db_->Run(alt.datalog);
    ASSERT_TRUE(rows.ok()) << alt.datalog.ToString();
    EXPECT_EQ(rows->size(), expected->size()) << alt.datalog.ToString();
  }
  // MIC1 makes the m.level >= 5 restriction redundant: some alternative
  // drops it.
  bool dropped = false;
  for (const core::Alternative& alt : result.alternatives) {
    if (alt.datalog.Comparisons().empty()) dropped = true;
  }
  EXPECT_TRUE(dropped);
}

TEST_F(CompanyTest, EquivalenceAcrossAlternatives) {
  const char* queries[] = {
      "select s.name from s in Staff where s.level < 5",
      "select d from s in Staff, p in s.assigned, d in p.owned_by",
      "select m.name from m in Manager where m.budget > 200K",
      "select s.name from s in Staff, w in s.location where w.country = \"us\"",
  };
  for (const char* oql : queries) {
    core::PipelineResult result = Optimize(oql);
    ASSERT_FALSE(result.contradiction) << oql;
    auto canonical = [](std::vector<std::vector<Value>> rows) {
      std::vector<std::string> out;
      for (const auto& row : rows) {
        std::string s;
        for (const Value& v : row) s += v.ToString() + "|";
        out.push_back(std::move(s));
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    auto expected = db_->Run(result.original_datalog);
    ASSERT_TRUE(expected.ok());
    for (const core::Alternative& alt : result.alternatives) {
      auto rows = db_->Run(alt.datalog);
      ASSERT_TRUE(rows.ok()) << oql << "\n" << alt.datalog.ToString();
      EXPECT_EQ(canonical(*rows), canonical(*expected))
          << oql << "\n" << alt.datalog.ToString();
    }
  }
}

}  // namespace
}  // namespace sqo::workload
