// §5.2 — Access scope reduction. "select x.name from x in Person where
// x.age < 30": IC4 + IC5 derive IC6', SQO adds `x not in Faculty`, and the
// engine evaluates Person − Faculty by extent difference before fetching
// objects. The benefit grows with the faculty fraction of the person
// extent — the argument index sweeps that fraction (percent of persons
// that are faculty).
//
//   Original   — plain person scan
//   Optimized  — guarded scan with the ¬faculty membership filter

#include "bench/bench_common.h"
#include "bench/bench_main.h"

namespace sqo::bench {
namespace {

workload::GeneratorConfig ConfigForFacultyShare(int64_t percent) {
  // Keep the person extent near 2000 while varying the faculty share.
  workload::GeneratorConfig config;
  const size_t total = 2000;
  config.n_faculty = total * static_cast<size_t>(percent) / 100;
  config.n_students = (total - config.n_faculty) / 2;
  config.n_plain_persons = total - config.n_faculty - config.n_students;
  config.n_courses = 8;
  return config;
}

const core::Alternative& BestAlternative(core::PipelineResult& result) {
  return result.alternatives[result.best_index];
}

void BM_ScopeReduction_Original(benchmark::State& state) {
  World& world = CachedWorld(static_cast<int>(state.range(0)),
                             ConfigForFacultyShare(state.range(0)));
  auto result = world.pipeline->OptimizeText(workload::QueryScopeReduction(),
                                             world.cost_model.get());
  if (!result.ok()) {
    state.SkipWithError(result.status().ToString().c_str());
    return;
  }
  engine::EvalStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto rows = world.db->Run(result->original_datalog, &stats);
    benchmark::DoNotOptimize(rows);
  }
  ExportStats(state, stats);
}
BENCHMARK(BM_ScopeReduction_Original)->Arg(5)->Arg(20)->Arg(50)->Arg(80);

void BM_ScopeReduction_Optimized(benchmark::State& state) {
  World& world = CachedWorld(static_cast<int>(state.range(0)),
                             ConfigForFacultyShare(state.range(0)));
  auto result = world.pipeline->OptimizeText(workload::QueryScopeReduction(),
                                             world.cost_model.get());
  if (!result.ok()) {
    state.SkipWithError(result.status().ToString().c_str());
    return;
  }
  const core::Alternative& best = BestAlternative(*result);
  engine::EvalStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto rows = world.db->Run(best.datalog, &stats);
    benchmark::DoNotOptimize(rows);
  }
  ExportStats(state, stats);
  state.counters["scope_reduced"] =
      best.datalog.body.size() > result->original_datalog.body.size() ? 1 : 0;
}
BENCHMARK(BM_ScopeReduction_Optimized)->Arg(5)->Arg(20)->Arg(50)->Arg(80);

}  // namespace
}  // namespace sqo::bench

SQO_BENCH_MAIN("scope_reduction");
