// Set-at-a-time batch evaluator vs the tuple-at-a-time fallback
// (EvalOptions::batch). Three experiments on the university workload:
//
//  AgeJoin      equi-join students ⋈ TAs on the shared `age` attribute
//               with `auto_index` off — the batch engine builds one
//               transient hash table and probes it per binding, the tuple
//               engine re-scans the TA extent for every student (the index
//               nested loop the tentpole replaces). This is the ≥2×
//               acceptance workload.
//  PathJoin     the §5.4 four-hop student→TA path under default options —
//               relationship traversals dominate, so this bounds the batch
//               engine's overhead on traversal-heavy plans.
//  MutationMix  interleaves attribute updates + relationship churn with a
//               selection served by the lazily built persistent index.
//               Exports `full_rebuilds` / `delta_applies` measured after a
//               warmup query has built the index: delta maintenance keeps
//               `full_rebuilds` at 0 where clear-on-write invalidation
//               used to rebuild on every iteration.
//
// Every variant exports qps plus p50/p95/p99 per-query latency (µs),
// measured manually per iteration (google-benchmark aggregates alone
// cannot express tail quantiles).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_main.h"
#include "datalog/parser.h"
#include "obs/metrics.h"

namespace sqo::bench {
namespace {

workload::GeneratorConfig JoinConfig() {
  workload::GeneratorConfig config;
  config.n_students = 300;
  config.n_plain_persons = 50;
  config.n_faculty = 20;
  config.n_courses = 10;
  config.sections_per_course = 4;
  config.takes_per_student = 3;
  return config;
}

datalog::Query MustParse(World& world, const char* text) {
  auto query =
      datalog::ParseQueryText(text, &world.pipeline->schema().catalog);
  if (!query.ok()) {
    std::fprintf(stderr, "query: %s\n", query.status().ToString().c_str());
    std::abort();
  }
  return *std::move(query);
}

// Students joined to TAs on age: the second atom has a bound attribute and
// no declared key, so the tuple engine falls back to a guarded extent scan
// per student binding while the batch engine hash-builds the TA extent
// once (auto_index disabled to isolate the two join strategies).
const char* kAgeJoinQuery =
    "q(X, Y) :- student(oid: X, age: A), ta(oid: Y, age: A).";

// §5.4 path query without the selective name constant (pure traversals).
const char* kPathQuery =
    "q(X, W) :- student(oid: X), takes(X, Y), is_section_of(Y, Z), "
    "has_sections(Z, V), has_ta(V, W).";

// Selection on an unkeyed attribute over a large extent — served by the
// lazily built persistent secondary index once warm.
const char* kIndexedSelection =
    "q(X) :- student(oid: X, age: A), A = 21.";

/// Runs `query` repeatedly under `options`, exporting qps and per-query
/// latency quantiles. Aborts the benchmark on evaluation error.
void RunQueryBench(benchmark::State& state, World& world,
                   const datalog::Query& query,
                   const engine::EvalOptions& options) {
  engine::EvalStats stats;
  std::vector<int64_t> latencies_ns;
  for (auto _ : state) {
    stats.Reset();
    const auto start = std::chrono::steady_clock::now();
    auto rows = world.db->Run(query, &stats, options);
    const auto stop = std::chrono::steady_clock::now();
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rows);
    latencies_ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count());
  }
  ExportStats(state, stats);
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  if (!latencies_ns.empty()) {
    std::sort(latencies_ns.begin(), latencies_ns.end());
    auto quantile = [&](double q) {
      const size_t rank = static_cast<size_t>(
          q * static_cast<double>(latencies_ns.size() - 1));
      return static_cast<double>(latencies_ns[rank]);
    };
    state.counters["latency_p50_ns"] = benchmark::Counter(quantile(0.50));
    state.counters["latency_p95_ns"] = benchmark::Counter(quantile(0.95));
    state.counters["latency_p99_ns"] = benchmark::Counter(quantile(0.99));
  }
}

engine::EvalOptions ModeOptions(bool batch, bool auto_index) {
  engine::EvalOptions options;
  options.batch = batch;
  options.auto_index = auto_index;
  return options;
}

void BM_BatchEval_AgeJoin_Batch(benchmark::State& state) {
  World& world = CachedWorld(0, JoinConfig());
  RunQueryBench(state, world, MustParse(world, kAgeJoinQuery),
                ModeOptions(/*batch=*/true, /*auto_index=*/false));
}
BENCHMARK(BM_BatchEval_AgeJoin_Batch);

void BM_BatchEval_AgeJoin_Tuple(benchmark::State& state) {
  World& world = CachedWorld(0, JoinConfig());
  RunQueryBench(state, world, MustParse(world, kAgeJoinQuery),
                ModeOptions(/*batch=*/false, /*auto_index=*/false));
}
BENCHMARK(BM_BatchEval_AgeJoin_Tuple);

void BM_BatchEval_PathJoin_Batch(benchmark::State& state) {
  World& world = CachedWorld(0, JoinConfig());
  RunQueryBench(state, world, MustParse(world, kPathQuery),
                ModeOptions(/*batch=*/true, /*auto_index=*/true));
}
BENCHMARK(BM_BatchEval_PathJoin_Batch);

void BM_BatchEval_PathJoin_Tuple(benchmark::State& state) {
  World& world = CachedWorld(0, JoinConfig());
  RunQueryBench(state, world, MustParse(world, kPathQuery),
                ModeOptions(/*batch=*/false, /*auto_index=*/true));
}
BENCHMARK(BM_BatchEval_PathJoin_Tuple);

/// Mutation-heavy mix: each iteration updates one student's age, toggles
/// one `takes` pair, and runs the indexed selection. A warmup query before
/// the timed loop builds the lazy index; the exported counters then show
/// whether mutations delta-apply (`delta_applies` grows, `full_rebuilds`
/// stays 0) or invalidate (`full_rebuilds` grows with every iteration).
void MutationMix(benchmark::State& state, bool batch) {
  // Private world: this bench mutates the store.
  static auto* worlds = new std::map<bool, World>();
  auto it = worlds->find(batch);
  if (it == worlds->end()) {
    it = worlds->emplace(batch, World::Make(JoinConfig())).first;
  }
  World& world = it->second;
  const datalog::Query selection = MustParse(world, kIndexedSelection);
  const datalog::Query students = MustParse(world, "q(X) :- student(oid: X).");
  const engine::EvalOptions options = ModeOptions(batch, /*auto_index=*/true);

  auto oid_rows = world.db->Run(students);
  if (!oid_rows.ok() || oid_rows->empty()) {
    state.SkipWithError("no students");
    return;
  }
  std::vector<sqo::Oid> oids;
  for (const auto& row : *oid_rows) oids.push_back(row[0].AsOid());

  // Warmup: first selection lazily builds the persistent age index.
  if (auto warm = world.db->Run(selection, nullptr, options); !warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    return;
  }

  obs::MetricsRegistry metrics;
  obs::ScopedMetrics scoped(&metrics);
  engine::EvalStats stats;
  std::vector<int64_t> latencies_ns;
  size_t tick = 0;
  for (auto _ : state) {
    engine::ObjectStore& store = world.db->store();
    const sqo::Oid victim = oids[tick % oids.size()];
    (void)store.UpdateAttribute(
        victim, "age", sqo::Value::Int(18 + static_cast<int64_t>(tick % 40)));
    // Churn a relationship pair so ASR/pair maintenance runs too.
    const sqo::Oid other = oids[(tick + 1) % oids.size()];
    const auto& neighbors = store.Neighbors("takes", other);
    if (!neighbors.empty()) {
      const sqo::Oid section = neighbors[0];
      (void)store.Unrelate("takes", other, section);
      (void)store.Relate("takes", other, section);
    }
    ++tick;

    stats.Reset();
    const auto start = std::chrono::steady_clock::now();
    auto rows = world.db->Run(selection, &stats, options);
    const auto stop = std::chrono::steady_clock::now();
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rows);
    latencies_ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count());
  }
  ExportStats(state, stats);
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  if (!latencies_ns.empty()) {
    std::sort(latencies_ns.begin(), latencies_ns.end());
    auto quantile = [&](double q) {
      const size_t rank = static_cast<size_t>(
          q * static_cast<double>(latencies_ns.size() - 1));
      return static_cast<double>(latencies_ns[rank]);
    };
    state.counters["latency_p50_ns"] = benchmark::Counter(quantile(0.50));
    state.counters["latency_p95_ns"] = benchmark::Counter(quantile(0.95));
    state.counters["latency_p99_ns"] = benchmark::Counter(quantile(0.99));
  }
  state.counters["full_rebuilds"] = benchmark::Counter(static_cast<double>(
      metrics.CounterValue("index.full_rebuilds")));
  state.counters["delta_applies"] = benchmark::Counter(static_cast<double>(
      metrics.CounterValue("index.delta_applies")));
}

void BM_BatchEval_MutationMix_Batch(benchmark::State& state) {
  MutationMix(state, /*batch=*/true);
}
BENCHMARK(BM_BatchEval_MutationMix_Batch);

void BM_BatchEval_MutationMix_Tuple(benchmark::State& state) {
  MutationMix(state, /*batch=*/false);
}
BENCHMARK(BM_BatchEval_MutationMix_Tuple);

}  // namespace
}  // namespace sqo::bench

SQO_BENCH_MAIN("batch_eval");
