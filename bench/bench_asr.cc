// §5.4 — Access support relations. Two experiments from the paper:
//
//  Q  (join elimination): the 4-hop path student→…→TA folds into the
//     materialized asr(X, W); the saving grows with path fanout.
//  Q1 (join introduction): the 3-hop prefix query gains has_ta via IC9 +
//     one-to-one, enabling the ASR as an *alternate* plan.
//
// The argument sweeps enrollment (takes per student), which multiplies the
// path join's intermediate results while the ASR stays one probe wide.
// Queries use an unindexed predicate-free projection so the path cost is
// visible (the name-keyed versions are near-free either way; see
// EXPERIMENTS.md).

#include "bench/bench_common.h"
#include "bench/bench_main.h"

namespace sqo::bench {
namespace {

workload::GeneratorConfig ConfigForFanout(int64_t takes_per_student) {
  workload::GeneratorConfig config;
  config.n_students = 400;
  config.n_plain_persons = 0;
  config.n_faculty = 20;
  config.n_courses = 10;
  config.sections_per_course = 4;
  config.takes_per_student = static_cast<size_t>(takes_per_student);
  return config;
}

// The §5.4 queries without the selective name constant, so the whole path
// is exercised.
const char* kPathQuery =
    "select w from x in Student, y in x.takes, z in y.is_section_of, "
    "v in z.has_sections, w in v.has_ta";
const char* kPrefixQuery =
    "select v from x in Student, y in x.takes, z in y.is_section_of, "
    "v in z.has_sections";

void BM_Asr_PathJoin_Original(benchmark::State& state) {
  World& world = CachedWorld(static_cast<int>(state.range(0)),
                             ConfigForFanout(state.range(0)));
  auto result = world.pipeline->OptimizeText(kPathQuery, world.cost_model.get());
  if (!result.ok()) {
    state.SkipWithError(result.status().ToString().c_str());
    return;
  }
  engine::EvalStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto rows = world.db->Run(result->original_datalog, &stats);
    benchmark::DoNotOptimize(rows);
  }
  ExportStats(state, stats);
}
BENCHMARK(BM_Asr_PathJoin_Original)->Arg(2)->Arg(4)->Arg(8);

void BM_Asr_PathJoin_Folded(benchmark::State& state) {
  World& world = CachedWorld(static_cast<int>(state.range(0)),
                             ConfigForFanout(state.range(0)));
  auto result = world.pipeline->OptimizeText(kPathQuery, world.cost_model.get());
  if (!result.ok()) {
    state.SkipWithError(result.status().ToString().c_str());
    return;
  }
  // Pick the smallest rewriting that uses the ASR and drops the path.
  const core::Alternative* folded = nullptr;
  for (const core::Alternative& alt : result->alternatives) {
    bool has_asr = false, has_path = false;
    for (const datalog::Literal& lit : alt.datalog.body) {
      if (!lit.atom.is_predicate()) continue;
      if (lit.atom.predicate() == "asr_student_ta") has_asr = true;
      if (lit.atom.predicate() == "takes") has_path = true;
    }
    if (has_asr && !has_path &&
        (folded == nullptr ||
         alt.datalog.body.size() < folded->datalog.body.size())) {
      folded = &alt;
    }
  }
  if (folded == nullptr) {
    state.SkipWithError("ASR fold not produced");
    return;
  }
  engine::EvalStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto rows = world.db->Run(folded->datalog, &stats);
    benchmark::DoNotOptimize(rows);
  }
  ExportStats(state, stats);
}
BENCHMARK(BM_Asr_PathJoin_Folded)->Arg(2)->Arg(4)->Arg(8);

void BM_Asr_JoinIntroduction_Original(benchmark::State& state) {
  World& world = CachedWorld(static_cast<int>(state.range(0)),
                             ConfigForFanout(state.range(0)));
  auto result =
      world.pipeline->OptimizeText(kPrefixQuery, world.cost_model.get());
  if (!result.ok()) {
    state.SkipWithError(result.status().ToString().c_str());
    return;
  }
  engine::EvalStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto rows = world.db->Run(result->original_datalog, &stats);
    benchmark::DoNotOptimize(rows);
  }
  ExportStats(state, stats);
}
BENCHMARK(BM_Asr_JoinIntroduction_Original)->Arg(2)->Arg(4)->Arg(8);

void BM_Asr_JoinIntroduction_Q1Prime(benchmark::State& state) {
  World& world = CachedWorld(static_cast<int>(state.range(0)),
                             ConfigForFanout(state.range(0)));
  auto result =
      world.pipeline->OptimizeText(kPrefixQuery, world.cost_model.get());
  if (!result.ok()) {
    state.SkipWithError(result.status().ToString().c_str());
    return;
  }
  const core::Alternative* q1_prime = nullptr;
  for (const core::Alternative& alt : result->alternatives) {
    bool has_asr = false, has_ta = false, has_path = false;
    for (const datalog::Literal& lit : alt.datalog.body) {
      if (!lit.atom.is_predicate()) continue;
      if (lit.atom.predicate() == "asr_student_ta") has_asr = true;
      if (lit.atom.predicate() == "has_ta") has_ta = true;
      if (lit.atom.predicate() == "takes") has_path = true;
    }
    if (has_asr && has_ta && !has_path) q1_prime = &alt;
  }
  if (q1_prime == nullptr) {
    state.SkipWithError("Q1' not produced");
    return;
  }
  engine::EvalStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto rows = world.db->Run(q1_prime->datalog, &stats);
    benchmark::DoNotOptimize(rows);
  }
  ExportStats(state, stats);
}
BENCHMARK(BM_Asr_JoinIntroduction_Q1Prime)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace sqo::bench

SQO_BENCH_MAIN("asr");
