/// Sustained WAL write throughput: group commit (one fsync per batch of
/// concurrent appends) against the classic fsync-per-append discipline.
/// Both arms append identical pre-encoded record frames to a real segment
/// file on disk — this isolates the durability path from the object store,
/// so the group-commit arm can legitimately run multi-threaded (the store
/// itself is single-writer; under real traffic the batching comes from
/// concurrent sessions sharing one database).
///
/// Throughput is exposed only as `qps` rate counters: wall-clock per append
/// is dominated by device fsync latency, which varies too much across
/// machines for the ±25% time gate in check_bench_regression.py (qps
/// counters are gated one-sided and tolerate noise better).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_main.h"
#include "common/fileio.h"
#include "storage/group_commit.h"
#include "storage/wal.h"

namespace {

using sqo::storage::EncodeWalRecord;
using sqo::storage::GroupCommitter;
using sqo::storage::WalHeader;
using sqo::storage::WalWriter;

const std::string& BenchDir() {
  static const std::string dir =
      "/tmp/sqo_bench_wal_" + std::to_string(::getpid());
  return dir;
}

void WipeDir() {
  const sqo::Status ensured = sqo::fs::EnsureDir(BenchDir());
  (void)ensured;
  if (auto names = sqo::fs::ListDir(BenchDir()); names.ok()) {
    for (const std::string& name : *names) {
      const sqo::Status removed = sqo::fs::RemoveFile(BenchDir() + "/" + name);
      (void)removed;
    }
  }
}

/// ~100-byte payload, the ballpark of one encoded mutation batch.
const std::string& Payload() {
  static const std::string payload(96, 'x');
  return payload;
}

struct GroupEnv {
  std::unique_ptr<WalWriter> wal;
  std::unique_ptr<GroupCommitter> committer;
  std::mutex wal_mu;
  std::atomic<uint64_t> lsn{0};
};
GroupEnv* g_group = nullptr;

void SetupGroup(const benchmark::State&) {
  if (g_group != nullptr) return;  // once per run, not per thread
  WipeDir();
  auto wal = WalWriter::Create(BenchDir() + "/" +
                                   sqo::storage::WalSegmentFileName(1),
                               WalHeader{});
  if (!wal.ok()) std::abort();
  auto env = std::make_unique<GroupEnv>();
  env->wal = std::make_unique<WalWriter>(std::move(wal).value());
  GroupCommitter::Options options;
  options.max_batch_ops = 64;
  env->committer = std::make_unique<GroupCommitter>(
      options, [raw = env.get()](const std::vector<std::string>& frames) {
        std::lock_guard<std::mutex> lock(raw->wal_mu);
        for (const std::string& frame : frames) {
          if (auto s = raw->wal->AppendFrame(frame); !s.ok()) return s;
        }
        return raw->wal->Sync();
      });
  g_group = env.release();
}

void TeardownGroup(const benchmark::State&) {
  if (g_group == nullptr) return;
  g_group->committer->Stop();
  delete g_group;
  g_group = nullptr;
  WipeDir();
}

/// One fsync per append, single writer — the discipline group commit
/// replaces (and the baseline of the ≥5× acceptance ratio).
void BM_WalAppendFsyncEach(benchmark::State& state) {
  WipeDir();
  auto wal = WalWriter::Create(
      BenchDir() + "/" + sqo::storage::WalSegmentFileName(1), WalHeader{});
  if (!wal.ok()) {
    state.SkipWithError(wal.status().ToString().c_str());
    return;
  }
  uint64_t lsn = 0;
  for (auto _ : state) {
    if (!wal->AppendFrame(EncodeWalRecord(++lsn, Payload())).ok() ||
        !wal->Sync().ok()) {
      state.SkipWithError("append/sync failed");
      return;
    }
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  WipeDir();
}
BENCHMARK(BM_WalAppendFsyncEach)->UseRealTime();

/// Concurrent submitters sharing one committer: each append blocks until
/// its batch's single fsync retires. qps sums across threads.
void BM_WalAppendGroupCommit(benchmark::State& state) {
  for (auto _ : state) {
    const uint64_t lsn = g_group->lsn.fetch_add(1) + 1;
    if (!g_group->committer->Append(EncodeWalRecord(lsn, Payload())).ok()) {
      state.SkipWithError("group append failed");
      return;
    }
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WalAppendGroupCommit)
    ->Setup(SetupGroup)
    ->Teardown(TeardownGroup)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->Threads(32)
    ->UseRealTime();

}  // namespace

SQO_BENCH_MAIN("wal_append");
