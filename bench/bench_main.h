#ifndef SQO_BENCH_BENCH_MAIN_H_
#define SQO_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/json.h"

namespace sqo::bench {

/// Console reporter that additionally keeps every run record so the driver
/// can export a machine-readable `BENCH_<driver>.json` after the run.
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    runs_.insert(runs_.end(), runs.begin(), runs.end());
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

/// Serializes collected run records as
/// `{"bench": <driver>, "runs": [{name, iterations, real_time_ns,
///   cpu_time_ns, counters: {...}}, ...]}`.
/// Durations are normalized to nanoseconds regardless of each benchmark's
/// display unit so downstream tooling never needs unit tables.
inline std::string RunsToJson(
    const std::string& driver,
    const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  using Run = benchmark::BenchmarkReporter::Run;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String(driver);
  w.Key("runs");
  w.BeginArray();
  for (const Run& run : runs) {
    if (run.error_occurred) continue;
    const double to_ns =
        1e9 / benchmark::GetTimeUnitMultiplier(run.time_unit);
    w.BeginObject();
    w.Key("name");
    w.String(run.benchmark_name());
    if (run.run_type == Run::RT_Aggregate) {
      w.Key("aggregate");
      w.String(run.aggregate_name);
    }
    w.Key("iterations");
    w.Int(static_cast<int64_t>(run.iterations));
    w.Key("real_time_ns");
    w.Double(run.GetAdjustedRealTime() * to_ns);
    w.Key("cpu_time_ns");
    w.Double(run.GetAdjustedCPUTime() * to_ns);
    if (!run.counters.empty()) {
      w.Key("counters");
      w.BeginObject();
      for (const auto& [name, counter] : run.counters) {
        w.Key(name);
        w.Double(counter.value);
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

/// Shared driver entry point: runs the registered benchmarks with console
/// output, then writes `BENCH_<driver>.json` into `SQO_BENCH_OUT_DIR` (or
/// the working directory). Set `SQO_BENCH_NO_JSON` to suppress the export
/// (used by the example smoke tests).
inline int BenchMain(int argc, char** argv, const char* driver) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonExportReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (std::getenv("SQO_BENCH_NO_JSON") != nullptr) return 0;
  std::string path = "BENCH_" + std::string(driver) + ".json";
  if (const char* dir = std::getenv("SQO_BENCH_OUT_DIR"); dir != nullptr) {
    path = std::string(dir) + "/" + path;
  }
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return 1;
  }
  const std::string json = RunsToJson(driver, reporter.runs());
  std::fwrite(json.data(), 1, json.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
  return 0;
}

}  // namespace sqo::bench

/// Replacement for BENCHMARK_MAIN() that also emits BENCH_<driver>.json.
#define SQO_BENCH_MAIN(driver)                           \
  int main(int argc, char** argv) {                      \
    return ::sqo::bench::BenchMain(argc, argv, driver);  \
  }                                                      \
  int main(int, char**)

#endif  // SQO_BENCH_BENCH_MAIN_H_
