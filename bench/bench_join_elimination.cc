// §5.3 — Join reduction using key constraints. The student/TA pairing
// query joins two Faculty retrievals on the `name` attribute; the key IC
// on name lets SQO compare OIDs instead, skipping the second object
// retrieval entirely. The argument sweeps database scale (students).
//
//   Original   — join through two faculty objects on name
//   Optimized  — best SQO rewriting (OID comparison / merged variables)

#include "bench/bench_common.h"
#include "bench/bench_main.h"

namespace sqo::bench {
namespace {

workload::GeneratorConfig ConfigForScale(int64_t students) {
  workload::GeneratorConfig config;
  config.n_students = static_cast<size_t>(students);
  config.n_plain_persons = 20;
  config.n_faculty = static_cast<size_t>(std::max<int64_t>(4, students / 10));
  config.n_courses = static_cast<size_t>(std::max<int64_t>(2, students / 40));
  return config;
}

void BM_JoinElimination_Original(benchmark::State& state) {
  World& world = CachedWorld(static_cast<int>(state.range(0)),
                             ConfigForScale(state.range(0)));
  auto result = world.pipeline->OptimizeText(workload::QueryJoinElimination(),
                                             world.cost_model.get());
  if (!result.ok()) {
    state.SkipWithError(result.status().ToString().c_str());
    return;
  }
  engine::EvalStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto rows = world.db->Run(result->original_datalog, &stats);
    benchmark::DoNotOptimize(rows);
  }
  ExportStats(state, stats);
}
BENCHMARK(BM_JoinElimination_Original)->Arg(100)->Arg(200)->Arg(400);

void BM_JoinElimination_Optimized(benchmark::State& state) {
  World& world = CachedWorld(static_cast<int>(state.range(0)),
                             ConfigForScale(state.range(0)));
  auto result = world.pipeline->OptimizeText(workload::QueryJoinElimination(),
                                             world.cost_model.get());
  if (!result.ok()) {
    state.SkipWithError(result.status().ToString().c_str());
    return;
  }
  const core::Alternative& best = result->alternatives[result->best_index];
  engine::EvalStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto rows = world.db->Run(best.datalog, &stats);
    benchmark::DoNotOptimize(rows);
  }
  ExportStats(state, stats);
}
BENCHMARK(BM_JoinElimination_Optimized)->Arg(100)->Arg(200)->Arg(400);

// The time spent producing the rewritings (Step 3) — the "overhead" side of
// the §5.3 trade.
void BM_JoinElimination_SqoCompileTime(benchmark::State& state) {
  World& world = CachedWorld(100, ConfigForScale(100));
  const std::string oql = workload::QueryJoinElimination();
  for (auto _ : state) {
    auto result = world.pipeline->OptimizeText(oql, world.cost_model.get());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_JoinElimination_SqoCompileTime);

}  // namespace
}  // namespace sqo::bench

SQO_BENCH_MAIN("join_elimination");
