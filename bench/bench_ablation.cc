// Ablation study over the Step-3 transformation families (DESIGN.md calls
// these out as the design choices worth isolating):
//
//   arg 0: query       0=§5.2 scope, 1=§5.3 key join, 2=§5.4 path
//   arg 1: ablation    0=all-on, 1=-scope_reduction, 2=-merge,
//                      3=-join_introduction, 4=-join_elimination,
//                      5=-asr_rewriting, 6=-remove_restrictions,
//                      7=-reduce_to_fixpoint
//
// Counters: number of equivalent queries produced and the chosen plan's
// estimated cost under the engine cost model — so the contribution of each
// family to both search-space size and final quality can be read off.

#include "bench/bench_common.h"
#include "bench/bench_main.h"

namespace sqo::bench {
namespace {

const char* QueryFor(int64_t index) {
  static const std::string q0 = workload::QueryScopeReduction();
  static const std::string q1 = workload::QueryJoinElimination();
  static const std::string q2 = workload::QueryAsrDirect();
  switch (index) {
    case 0:
      return q0.c_str();
    case 1:
      return q1.c_str();
    default:
      return q2.c_str();
  }
}

core::OptimizerOptions OptionsFor(int64_t ablation) {
  core::OptimizerOptions options;
  switch (ablation) {
    case 1:
      options.scope_reduction = false;
      break;
    case 2:
      options.merge_equal_variables = false;
      break;
    case 3:
      options.join_introduction = false;
      break;
    case 4:
      options.join_elimination = false;
      break;
    case 5:
      options.asr_rewriting = false;
      break;
    case 6:
      options.remove_restrictions = false;
      break;
    case 7:
      options.reduce_to_fixpoint = false;
      break;
    default:
      break;
  }
  return options;
}

World& AblationWorld(int64_t ablation) {
  // One pipeline per ablation configuration (compiled once, reused).
  static auto* cache = new std::map<int64_t, World>();
  auto it = cache->find(ablation);
  if (it == cache->end()) {
    core::PipelineOptions options;
    options.optimizer = OptionsFor(ablation);
    workload::GeneratorConfig config;
    config.n_students = 200;
    World world = World::Make(config, options);
    it = cache->emplace(ablation, std::move(world)).first;
  }
  return it->second;
}

void BM_Ablation(benchmark::State& state) {
  World& world = AblationWorld(state.range(1));
  const char* oql = QueryFor(state.range(0));
  size_t alternatives = 0;
  double best_cost = 0;
  for (auto _ : state) {
    auto result = world.pipeline->OptimizeText(oql, world.cost_model.get());
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    alternatives = result->alternatives.size();
    best_cost = result->alternatives.empty()
                    ? 0
                    : result->alternatives[result->best_index].cost;
    benchmark::DoNotOptimize(result);
  }
  state.counters["alternatives"] =
      benchmark::Counter(static_cast<double>(alternatives));
  state.counters["best_cost"] = benchmark::Counter(best_cost);
}
BENCHMARK(BM_Ablation)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3, 4, 5, 6, 7}})
    ->ArgNames({"query", "ablation"});

}  // namespace
}  // namespace sqo::bench

SQO_BENCH_MAIN("ablation");
