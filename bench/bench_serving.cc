/// Serving-layer latency under concurrency: snapshot-read p50/p99 and
/// aggregate QPS at 1-32 client sessions, with the writer idle and with a
/// concurrent writer streaming mutations (and epoch publishes) the whole
/// time. The acceptance bar this guards: read p99 with a concurrent
/// writer stays within 2x of the idle-writer p99 at 8 clients — readers
/// pin epochs and never block behind the write path.
///
/// Latency quantiles come from the server's own meter (every session's
/// queries) and are exported as `read_p50_ns`/`read_p99_ns` counters,
/// which check_bench_regression.py gates one-sidedly; `qps` sums across
/// client threads and is informational.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_main.h"
#include "common/value.h"
#include "engine/database.h"
#include "server/server.h"
#include "sqo/pipeline.h"
#include "workload/university.h"

namespace {

constexpr char kReadQuery[] =
    "select x.name from x in Person where x.age < 30";

const sqo::core::Pipeline& Pipeline() {
  static const sqo::core::Pipeline* pipeline = [] {
    auto result = sqo::workload::MakeUniversityPipeline();
    if (!result.ok()) std::abort();
    return new sqo::core::Pipeline(std::move(result).value());
  }();
  return *pipeline;
}

/// One benchmark run's world: a populated in-memory primary, a started
/// server, one session per client thread, and (optionally) a writer
/// thread mutating through its own session at a steady trickle.
struct ServingEnv {
  explicit ServingEnv(int client_sessions, bool concurrent_writer) {
    db = std::make_unique<sqo::engine::Database>(&Pipeline().schema());
    sqo::workload::GeneratorConfig data;
    data.n_plain_persons = 16;
    data.n_students = 48;
    data.n_faculty = 8;
    data.n_courses = 6;
    data.sections_per_course = 2;
    data.takes_per_student = 3;
    if (!sqo::workload::PopulateUniversity(data, Pipeline(), db.get()).ok()) {
      std::abort();
    }
    sqo::server::ServerConfig config;
    config.workers = 4;
    config.replicas = 2;
    // Keep degradation out of the measurement: a degraded read skips
    // Step-3 and would flatter the loaded arm's latency.
    config.degrade_queue_depth = 64;
    config.max_queue_depth = 256;
    config.replica_setup = sqo::workload::SetupUniversityRuntime;
    server = std::make_unique<sqo::server::Server>(&Pipeline(), db.get(),
                                                   std::move(config));
    if (!server->Start().ok()) std::abort();
    for (int i = 0; i < client_sessions; ++i) {
      sessions.push_back(server->OpenSession("bench-" + std::to_string(i)));
    }
    if (concurrent_writer) {
      writer_session = server->OpenSession("bench-writer");
      writer = std::thread([this] {
        // ~1 mutation / 2ms: a steady publish stream, not a saturating
        // one — the subject is reader latency beside it, and the bench
        // host may be a single core.
        uint64_t n = 0;
        while (!stop_writer.load(std::memory_order_acquire)) {
          const uint64_t i = ++n;
          const sqo::Status status =
              writer_session->Mutate([i](sqo::engine::Database* db) {
                return db->store()
                    .CreateObject(
                        "Person",
                        {{"name", sqo::Value::String("bw" + std::to_string(i))},
                         {"age", sqo::Value::Int(20 + static_cast<int>(i % 40))}})
                    .status();
              });
          if (!status.ok()) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    }
  }

  ~ServingEnv() {
    stop_writer.store(true, std::memory_order_release);
    if (writer.joinable()) writer.join();
    server->Stop();
  }

  std::unique_ptr<sqo::engine::Database> db;
  std::unique_ptr<sqo::server::Server> server;
  std::vector<std::shared_ptr<sqo::server::Session>> sessions;
  std::shared_ptr<sqo::server::Session> writer_session;
  std::thread writer;
  std::atomic<bool> stop_writer{false};
};

std::unique_ptr<ServingEnv> g_env;

void RunClients(benchmark::State& state) {
  sqo::server::Session* session =
      g_env->sessions[static_cast<size_t>(state.thread_index())].get();
  for (auto _ : state) {
    const sqo::server::QueryResponse response = session->Query(kReadQuery);
    if (!response.status.ok()) {
      state.SkipWithError(response.status.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(response.rows.size());
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  if (state.thread_index() == 0) {
    const sqo::obs::QpsMeter::Snapshot seen = g_env->server->Latency();
    state.counters["read_p50_ns"] =
        benchmark::Counter(static_cast<double>(seen.p50_ns));
    state.counters["read_p99_ns"] =
        benchmark::Counter(static_cast<double>(seen.p99_ns));
  }
}

void SetupIdleWriter(const benchmark::State& state) {
  g_env = std::make_unique<ServingEnv>(state.threads(),
                                       /*concurrent_writer=*/false);
}

void SetupConcurrentWriter(const benchmark::State& state) {
  g_env = std::make_unique<ServingEnv>(state.threads(),
                                       /*concurrent_writer=*/true);
}

void Teardown(const benchmark::State&) { g_env.reset(); }

/// Baseline arm: N client sessions reading, writer idle.
void BM_SnapshotReadIdleWriter(benchmark::State& state) { RunClients(state); }
BENCHMARK(BM_SnapshotReadIdleWriter)
    ->Setup(SetupIdleWriter)
    ->Teardown(Teardown)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->Threads(32)
    ->UseRealTime();

/// Loaded arm: the same N readers beside a writer publishing epochs.
void BM_SnapshotReadConcurrentWriter(benchmark::State& state) {
  RunClients(state);
}
BENCHMARK(BM_SnapshotReadConcurrentWriter)
    ->Setup(SetupConcurrentWriter)
    ->Teardown(Teardown)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->Threads(32)
    ->UseRealTime();

/// The write path end to end: serialized op on the primary, epoch catch-up
/// and publish. Single client; the cost of making a write visible.
void BM_MutatePublish(benchmark::State& state) {
  uint64_t n = 0;
  sqo::server::Session* session = g_env->sessions[0].get();
  for (auto _ : state) {
    const uint64_t i = ++n;
    const sqo::Status status = session->Mutate([i](sqo::engine::Database* db) {
      return db->store()
          .CreateObject("Person",
                        {{"name", sqo::Value::String("wp" + std::to_string(i))},
                         {"age", sqo::Value::Int(30)}})
          .status();
    });
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MutatePublish)
    ->Setup(SetupIdleWriter)
    ->Teardown(Teardown)
    ->UseRealTime();

}  // namespace

SQO_BENCH_MAIN("serving");
