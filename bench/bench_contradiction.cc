// §5.1 — Contradiction detection. The paper's Example-2 query asks for
// faculty whose withheld taxes at 10% are below 1000; the derived IC3
// (faculty taxes at 10% exceed 3000) makes it unsatisfiable. Without SQO
// the engine evaluates the whole join and method pipeline to produce zero
// rows; with SQO the query is rejected at compile time in microseconds,
// independent of database size.
//
// Series: database scale (number of students) on the x-axis.
//   SqoDetect      — Step 3 detects the contradiction (no evaluation)
//   EvaluateNoSqo  — full evaluation of the unoptimized query

#include "bench/bench_common.h"
#include "bench/bench_main.h"

namespace sqo::bench {
namespace {

workload::GeneratorConfig ConfigForScale(int64_t students) {
  workload::GeneratorConfig config;
  config.n_students = static_cast<size_t>(students);
  config.n_plain_persons = static_cast<size_t>(students / 4);
  config.n_faculty = static_cast<size_t>(std::max<int64_t>(4, students / 10));
  config.n_courses = static_cast<size_t>(std::max<int64_t>(2, students / 40));
  return config;
}

// The bulk variant of the Example-2 query: no selective name constant, so
// without SQO the engine joins every student's sections to their professor
// and invokes the method — work that grows with scale. SQO rejects it in
// near-constant time.
const char* kBulkQuery =
    "select z.name from x in Student, y in x.takes, z in y.is_taught_by "
    "where z.taxes_withheld(10%) < 1000";

void BM_Contradiction_SqoDetect(benchmark::State& state) {
  World& world = CachedWorld(static_cast<int>(state.range(0)),
                             ConfigForScale(state.range(0)));
  const std::string oql = kBulkQuery;
  bool detected = false;
  for (auto _ : state) {
    auto result = world.pipeline->OptimizeText(oql);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    detected = result->contradiction;
    benchmark::DoNotOptimize(result);
  }
  state.counters["contradiction"] = detected ? 1 : 0;
}
BENCHMARK(BM_Contradiction_SqoDetect)->Arg(100)->Arg(400)->Arg(1600);

void BM_Contradiction_EvaluateNoSqo(benchmark::State& state) {
  World& world = CachedWorld(static_cast<int>(state.range(0)),
                             ConfigForScale(state.range(0)));
  auto result = world.pipeline->OptimizeText(kBulkQuery);
  if (!result.ok()) {
    state.SkipWithError(result.status().ToString().c_str());
    return;
  }
  engine::EvalStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto rows = world.db->Run(result->original_datalog, &stats);
    if (!rows.ok()) state.SkipWithError(rows.status().ToString().c_str());
    benchmark::DoNotOptimize(rows);
  }
  ExportStats(state, stats);
}
BENCHMARK(BM_Contradiction_EvaluateNoSqo)->Arg(100)->Arg(400)->Arg(1600);

}  // namespace
}  // namespace sqo::bench

SQO_BENCH_MAIN("contradiction");
