#ifndef SQO_BENCH_BENCH_COMMON_H_
#define SQO_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "engine/cost_model.h"
#include "engine/database.h"
#include "workload/university.h"

namespace sqo::bench {

/// A compiled university pipeline plus a populated database at one
/// generator configuration. Construction is expensive, so instances are
/// cached per configuration key across benchmark iterations.
struct World {
  std::unique_ptr<core::Pipeline> pipeline;
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<engine::EngineCostModel> cost_model;

  static World Make(const workload::GeneratorConfig& config,
                    core::PipelineOptions options = {}) {
    World world;
    auto pipeline = workload::MakeUniversityPipeline(options);
    if (!pipeline.ok()) {
      std::fprintf(stderr, "pipeline: %s\n", pipeline.status().ToString().c_str());
      std::abort();
    }
    world.pipeline = std::make_unique<core::Pipeline>(std::move(pipeline).value());
    world.db = std::make_unique<engine::Database>(&world.pipeline->schema());
    sqo::Status status =
        workload::PopulateUniversity(config, *world.pipeline, world.db.get());
    if (!status.ok()) {
      std::fprintf(stderr, "populate: %s\n", status.ToString().c_str());
      std::abort();
    }
    world.cost_model =
        std::make_unique<engine::EngineCostModel>(&world.db->store());
    return world;
  }
};

/// Cache of worlds keyed by an integer (typically the benchmark argument).
inline World& CachedWorld(int key, const workload::GeneratorConfig& config) {
  static auto* cache = new std::map<int, World>();
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, World::Make(config)).first;
  }
  return it->second;
}

/// Copies evaluator counters into benchmark user counters.
inline void ExportStats(benchmark::State& state, const engine::EvalStats& stats) {
  state.counters["fetched"] =
      benchmark::Counter(static_cast<double>(stats.objects_fetched));
  state.counters["traversals"] =
      benchmark::Counter(static_cast<double>(stats.relationship_traversals));
  state.counters["methods"] =
      benchmark::Counter(static_cast<double>(stats.method_invocations));
  state.counters["comparisons"] =
      benchmark::Counter(static_cast<double>(stats.comparisons));
  state.counters["results"] =
      benchmark::Counter(static_cast<double>(stats.results));
}

}  // namespace sqo::bench

#endif  // SQO_BENCH_BENCH_COMMON_H_
