// §4.1 — Complexity of the optimization steps (Figure 2):
//   Step 1 (schema translation)  : linear in schema size
//   Step 2 (query translation)   : linear in query size
//   Step 3 (semantic optimization): grows with the number of applicable ICs
//   Step 4 (change mapping)      : linear in query size
//
// Each benchmark sweeps the relevant size knob so the scaling shape can be
// read off the time column.

#include <benchmark/benchmark.h>
#include "bench/bench_main.h"

#include <chrono>
#include <optional>

#include "common/context.h"
#include "datalog/parser.h"
#include "engine/database.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "odl/parser.h"
#include "oql/parser.h"
#include "sqo/optimizer.h"
#include "sqo/pipeline.h"
#include "sqo/semantic_compiler.h"
#include "translate/change_mapper.h"
#include "translate/query_translator.h"
#include "translate/schema_translator.h"
#include "workload/university.h"

namespace sqo::bench {
namespace {

// ---- Step 1: schema translation, sweeping the number of classes. ----
std::string SyntheticOdl(int64_t n_classes) {
  std::string odl;
  for (int64_t i = 0; i < n_classes; ++i) {
    odl += "interface C" + std::to_string(i) +
           " { attribute long a; attribute string b; attribute double c; };\n";
  }
  return odl;
}

void BM_Step1_SchemaTranslation(benchmark::State& state) {
  auto ast = odl::ParseOdl(SyntheticOdl(state.range(0)));
  auto schema = odl::Schema::Resolve(*ast);
  for (auto _ : state) {
    auto translated = translate::TranslateSchema(*schema);
    benchmark::DoNotOptimize(translated);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Step1_SchemaTranslation)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity(benchmark::oN);

// ---- Step 2: query translation, sweeping the length of the from chain. --
translate::TranslatedSchema& UniversitySchema() {
  static auto* schema = [] {
    auto ast = odl::ParseOdl(workload::UniversityOdl());
    auto resolved = odl::Schema::Resolve(*ast);
    return new translate::TranslatedSchema(
        std::move(translate::TranslateSchema(*resolved)).value());
  }();
  return *schema;
}

std::string ChainQuery(int64_t hops) {
  // Alternate takes / is_taken_by to build arbitrarily long chains.
  std::string from = "x0 in Student";
  for (int64_t i = 0; i < hops; ++i) {
    const bool fwd = i % 2 == 0;
    from += ", x" + std::to_string(i + 1) + " in x" + std::to_string(i) +
            (fwd ? ".takes" : ".is_taken_by");
  }
  return "select x0.name from " + from;
}

void BM_Step2_QueryTranslation(benchmark::State& state) {
  auto parsed = oql::ParseOql(ChainQuery(state.range(0)));
  for (auto _ : state) {
    auto translated = translate::TranslateQuery(UniversitySchema(), *parsed);
    benchmark::DoNotOptimize(translated);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Step2_QueryTranslation)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity(benchmark::oN);

// ---- Step 3: optimization, sweeping the number of user ICs applicable to
// the query's relations. ----
std::string ManyIcs(int64_t n) {
  std::string ics{workload::UniversityIcs()};
  for (int64_t i = 0; i < n; ++i) {
    ics += "ICX" + std::to_string(i) + ": Salary > " + std::to_string(100 + i) +
           " <- faculty(oid: X, salary: Salary).\n";
  }
  return ics;
}

void BM_Step3_Optimization(benchmark::State& state) {
  auto pipeline = core::Pipeline::Create(workload::UniversityOdl(),
                                         ManyIcs(state.range(0)),
                                         {workload::UniversityAsr()});
  if (!pipeline.ok()) {
    state.SkipWithError(pipeline.status().ToString().c_str());
    return;
  }
  auto parsed = oql::ParseOql(
      "select x.name from x in Faculty where x.salary > 60K");
  for (auto _ : state) {
    auto result = pipeline->OptimizeParsed(*parsed);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Step3_Optimization)
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->Complexity();

// ---- Semantic compilation (the amortized, per-schema part of Step 3). ----
void BM_Step3_SemanticCompilation(benchmark::State& state) {
  std::string ics = ManyIcs(state.range(0));
  auto parsed = datalog::ParseProgram(ics, &UniversitySchema().catalog);
  for (auto _ : state) {
    auto compiled =
        core::CompileSemantics(&UniversitySchema(), *parsed, {}, {});
    benchmark::DoNotOptimize(compiled);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Step3_SemanticCompilation)
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->Complexity(benchmark::oN);

// ---- Step 4: change mapping, sweeping query size. ----
void BM_Step4_ChangeMapping(benchmark::State& state) {
  auto parsed = oql::ParseOql(ChainQuery(state.range(0)));
  auto translated = translate::TranslateQuery(UniversitySchema(), *parsed);
  // Optimized = original plus one added restriction on the head attribute.
  datalog::Query optimized = translated->query;
  optimized.body.push_back(datalog::Literal::Pos(datalog::Atom::Comparison(
      datalog::CmpOp::kGt, translated->query.head_args[0],
      datalog::Term::String("a"))));
  translate::ChangeMapper mapper(&UniversitySchema(), &translated->map);
  for (auto _ : state) {
    auto mapped = mapper.Apply(*parsed, translated->query, optimized);
    benchmark::DoNotOptimize(mapped);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Step4_ChangeMapping)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity(benchmark::oN);

// ---- Governance overhead: the full Step 2–4 pipeline with and without an
// installed ExecutionContext (generous deadline + budgets, so every check
// and charge runs but nothing ever trips). Arg(0) = baseline, Arg(1) =
// governed; the delta is the cost of resource governance on the happy path.
void BM_GovernanceOverhead(benchmark::State& state) {
  auto pipeline = workload::MakeUniversityPipeline();
  if (!pipeline.ok()) {
    state.SkipWithError(pipeline.status().ToString().c_str());
    return;
  }
  auto parsed = oql::ParseOql(workload::QueryScopeReduction());
  const bool governed = state.range(0) != 0;
  for (auto _ : state) {
    ExecutionContext context;
    std::optional<ScopedContext> install;
    if (governed) {
      context.SetDeadlineAfter(std::chrono::minutes(10));
      context.budgets().residue_applications = 1'000'000'000;
      context.budgets().alternatives = 1'000'000'000;
      install.emplace(&context);
    }
    auto result = pipeline->OptimizeParsed(*parsed);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(governed ? "governed" : "baseline");
}
BENCHMARK(BM_GovernanceOverhead)->Arg(0)->Arg(1);

// ---- The boundary check itself, in isolation (deadline armed). ----
void BM_GovernanceCheck(benchmark::State& state) {
  ExecutionContext context;
  context.SetDeadlineAfter(std::chrono::minutes(10));
  ScopedContext install(&context);
  for (auto _ : state) {
    Status s = CheckGovernance("bench.site");
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_GovernanceCheck);

// ---- A single work-budget charge (the per-item hot path). ----
void BM_GovernanceCharge(benchmark::State& state) {
  ExecutionContext context;
  context.SetDeadlineAfter(std::chrono::minutes(10));
  for (auto _ : state) {
    Status s = context.ChargeResidueApplications();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_GovernanceCharge);

// ---- Rewrite-verifier overhead (per-step equivalence proofs). ----

// Certifying one full alternative set: replay every recorded derivation
// chain and discharge each step's obligation with the bounded chase.
// Arg selects the seed query (0 = scope reduction, 1 = ASR direct — the
// widest alternative set of the corpus).
void BM_VerifyAlternatives(benchmark::State& state) {
  auto pipeline = workload::MakeUniversityPipeline();
  if (!pipeline.ok()) {
    state.SkipWithError(pipeline.status().ToString().c_str());
    return;
  }
  const std::string oql = state.range(0) == 0
                              ? workload::QueryScopeReduction()
                              : workload::QueryAsrDirect();
  auto result = pipeline->OptimizeText(oql);
  if (!result.ok()) {
    state.SkipWithError(result.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto verification = pipeline->Verify(*result);
    benchmark::DoNotOptimize(verification);
  }
  state.SetLabel(state.range(0) == 0 ? "scope_reduction" : "asr_direct");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(result->alternatives.size()));
}
BENCHMARK(BM_VerifyAlternatives)->Arg(0)->Arg(1);

// Optimize-only vs optimize-then-verify on the same query: the delta is
// what post-hoc certification adds to the serving path (the cost a plan
// cache would pay once per compiled entry, not per execution).
void BM_VerifierPipelineDelta(benchmark::State& state) {
  auto pipeline = workload::MakeUniversityPipeline();
  if (!pipeline.ok()) {
    state.SkipWithError(pipeline.status().ToString().c_str());
    return;
  }
  auto parsed = oql::ParseOql(workload::QueryScopeReduction());
  const bool verified = state.range(0) != 0;
  for (auto _ : state) {
    auto result = pipeline->OptimizeParsed(*parsed);
    if (verified && result.ok()) {
      auto verification = pipeline->Verify(*result);
      benchmark::DoNotOptimize(verification);
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(verified ? "optimize+verify" : "optimize");
}
BENCHMARK(BM_VerifierPipelineDelta)->Arg(0)->Arg(1);

// ---- Observability overhead (journal, profiler, exporter). ----

// Shared compiled pipeline: the database holds a pointer into its schema,
// so it must outlive every bench iteration.
core::Pipeline& UniversityBenchPipeline() {
  static auto* pipeline = new core::Pipeline(
      std::move(workload::MakeUniversityPipeline()).value());
  return *pipeline;
}

engine::Database& UniversityDb() {
  static auto* db = [] {
    auto* database = new engine::Database(&UniversityBenchPipeline().schema());
    workload::GeneratorConfig config;
    (void)workload::PopulateUniversity(config, UniversityBenchPipeline(),
                                       database);
    return database;
  }();
  return *db;
}

datalog::Query UniversityEvalQuery() {
  auto result = UniversityBenchPipeline().OptimizeText(
      "select f.name from f in Faculty where f.salary > 50000");
  return result->alternatives[result->best_index].datalog;
}

// Evaluation with the operator profiler off (Arg 0) vs on (Arg 1): the
// delta is the cost of two clock reads + row accounting per join step.
void BM_ProfiledEvaluation(benchmark::State& state) {
  engine::Database& db = UniversityDb();
  const datalog::Query query = UniversityEvalQuery();
  const bool profiled = state.range(0) != 0;
  for (auto _ : state) {
    if (profiled) {
      auto run = db.ProfileQuery(query);
      benchmark::DoNotOptimize(run);
    } else {
      auto rows = db.Run(query);
      benchmark::DoNotOptimize(rows);
    }
  }
  state.SetLabel(profiled ? "profiled" : "baseline");
}
BENCHMARK(BM_ProfiledEvaluation)->Arg(0)->Arg(1);

// One journal record (the per-query serving-path cost; no I/O).
void BM_JournalRecord(benchmark::State& state) {
  obs::QueryJournal journal({.capacity = 1024, .slow_threshold_ns = 0});
  obs::QueryEvent event;
  event.fingerprint = "deadbeefdeadbeefdeadbeefdeadbeef";
  event.query = "select f.name from f in Faculty where f.salary > 50000";
  event.duration_ns = 1'000'000;
  for (auto _ : state) {
    obs::QueryEvent copy = event;
    benchmark::DoNotOptimize(journal.Record(std::move(copy)));
  }
}
BENCHMARK(BM_JournalRecord);

// Incremental JSONL flush, batched: record 64 events then flush them.
void BM_JournalFlush(benchmark::State& state) {
  const std::string path = "/tmp/sqo_bench_journal.jsonl";
  obs::QueryJournal journal({.capacity = 128, .slow_threshold_ns = 0});
  obs::QueryEvent event;
  event.query = "select f.name from f in Faculty";
  event.duration_ns = 1'000'000;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      obs::QueryEvent copy = event;
      journal.Record(std::move(copy));
    }
    Status s = journal.Flush(path);
    benchmark::DoNotOptimize(s);
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_JournalFlush);

// Rendering a realistic registry in the Prometheus text format.
void BM_PrometheusExport(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (int i = 0; i < 32; ++i) {
    registry.Add("optimizer.counter." + std::to_string(i), 1000 + i);
  }
  for (int h = 0; h < 8; ++h) {
    for (int i = 0; i < 256; ++i) {
      registry.Record("phase." + std::to_string(h), 1000 * (i + 1));
    }
  }
  for (auto _ : state) {
    std::string text = obs::ToPrometheusText(registry);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_PrometheusExport);

// End-to-end latency distribution of the optimize+evaluate path, exported
// as latency quantile counters (latency_p50_ns / latency_p99_ns) that the
// bench regression gate checks one-sidedly.
void BM_QueryLatencyDistribution(benchmark::State& state) {
  core::Pipeline& pipeline = UniversityBenchPipeline();
  engine::Database& db = UniversityDb();
  auto parsed = oql::ParseOql(
      "select f.name from f in Faculty where f.salary > 50000");
  obs::QpsMeter meter;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto result = pipeline.OptimizeParsed(*parsed);
    if (result.ok() && !result->contradiction) {
      auto rows = db.Run(result->alternatives[result->best_index].datalog);
      benchmark::DoNotOptimize(rows);
    }
    meter.Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count());
  }
  const obs::QpsMeter::Snapshot snap = meter.Summarize();
  state.counters["latency_p50_ns"] = static_cast<double>(snap.p50_ns);
  state.counters["latency_p90_ns"] = static_cast<double>(snap.p90_ns);
  state.counters["latency_p99_ns"] = static_cast<double>(snap.p99_ns);
  state.counters["qps"] = snap.qps;
}
BENCHMARK(BM_QueryLatencyDistribution);

}  // namespace
}  // namespace sqo::bench

SQO_BENCH_MAIN("pipeline_overhead");
